//! Fuzz-shaped property tests: the parsers must never panic — malformed
//! input yields `Err`, not a crash. Random strings are biased toward
//! XQuery-looking fragments so the deeper parser paths get exercised.

use proptest::prelude::*;
use xqdb_xquery::{parse_pattern, parse_query};

/// Fragments that compose into almost-queries.
const FRAGMENTS: &[&str] = &[
    "for", "$x", "in", "return", "let", ":=", "where", "//", "/", "@", "*", "(", ")", "[", "]",
    "{", "}", "<", ">", "order", "lineitem", "price", "100", "'str'", "\"str\"", "=", "eq", "and",
    "or", "xs:double", "(.)", ".", "..", "db2-fn:xmlcolumn", "text()", "node()", "declare",
    "namespace", "element", "attribute", "self::", "child::", "descendant-or-self::", ",", ";",
    "if", "then", "else", "some", "satisfies", "to", "div", "|", "cast as", "<a>", "</a>",
    "instance of", "castable", "treat", "1e3", "99.5", "-", "+", "(:", ":)", "&lt;", "c:",
];

fn fragment_soup() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(FRAGMENTS), 0..24)
        .prop_map(|parts| parts.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parse_query_never_panics_on_soup(input in fragment_soup()) {
        let _ = parse_query(&input); // Ok or Err, never a panic
    }

    #[test]
    fn parse_query_never_panics_on_noise(input in "[ -~]{0,60}") {
        let _ = parse_query(&input);
    }

    #[test]
    fn parse_pattern_never_panics(input in "[ -~]{0,40}") {
        let _ = parse_pattern(&input);
    }

    #[test]
    fn parse_pattern_never_panics_on_soup(input in fragment_soup()) {
        let _ = parse_pattern(&input);
    }
}
