//! Fuzz-shaped property tests: the parsers must never panic — malformed
//! input yields `Err`, not a crash. Random strings are biased toward
//! XQuery-looking fragments so the deeper parser paths get exercised.
//! Randomness is seeded and deterministic, so any failure reproduces.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xqdb_xquery::{parse_pattern, parse_query};

/// Fragments that compose into almost-queries.
const FRAGMENTS: &[&str] = &[
    "for", "$x", "in", "return", "let", ":=", "where", "//", "/", "@", "*", "(", ")", "[", "]",
    "{", "}", "<", ">", "order", "lineitem", "price", "100", "'str'", "\"str\"", "=", "eq", "and",
    "or", "xs:double", "(.)", ".", "..", "db2-fn:xmlcolumn", "text()", "node()", "declare",
    "namespace", "element", "attribute", "self::", "child::", "descendant-or-self::", ",", ";",
    "if", "then", "else", "some", "satisfies", "to", "div", "|", "cast as", "<a>", "</a>",
    "instance of", "castable", "treat", "1e3", "99.5", "-", "+", "(:", ":)", "&lt;", "c:",
];

fn fragment_soup(rng: &mut StdRng) -> String {
    (0..rng.random_range(0..24usize))
        .map(|_| FRAGMENTS[rng.random_range(0..FRAGMENTS.len())])
        .collect::<Vec<_>>()
        .join(" ")
}

fn printable_noise(rng: &mut StdRng, max_len: usize) -> String {
    (0..rng.random_range(0..=max_len)).map(|_| (b' ' + rng.random_range(0..95u8)) as char).collect()
}

#[test]
fn parse_query_never_panics_on_soup() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = fragment_soup(&mut rng);
        let _ = parse_query(&input); // Ok or Err, never a panic
    }
}

#[test]
fn parse_query_never_panics_on_noise() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF_0000 + seed);
        let input = printable_noise(&mut rng, 60);
        let _ = parse_query(&input);
    }
}

#[test]
fn parse_pattern_never_panics() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xCAFE_0000 + seed);
        let input = printable_noise(&mut rng, 40);
        let _ = parse_pattern(&input);
    }
}

#[test]
fn parse_pattern_never_panics_on_soup() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xD00D_0000 + seed);
        let input = fragment_soup(&mut rng);
        let _ = parse_pattern(&input);
    }
}
