//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the criterion 0.8 API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology is intentionally simple — per benchmark: one untimed warm-up
//! iteration, then `sample_size` timed samples (each sample is as many
//! iterations as fit in `measurement_time / sample_size`, at least one), and
//! the median per-iteration time is printed. No statistics machinery, no
//! plots, no disk output; the numbers are for *relative* comparisons (index
//! probe vs. collection scan), which is all the paper's claims need.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("insert", 500)` renders as `insert/500`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// A bare parameter id, `BenchmarkId::from_parameter(500)` → `500`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the benchmark closure; `iter` runs the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl<'a> Bencher<'a> {
    /// Time `routine`, collecting the per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let per_sample = (self.measurement_time / self.sample_size.max(1) as u32)
            .max(Duration::from_micros(1));
        for _ in 0..self.sample_size {
            let mut iters = 0u32;
            let start = Instant::now();
            loop {
                black_box(routine());
                iters += 1;
                let elapsed = start.elapsed();
                if elapsed >= per_sample || iters >= 1_000_000 {
                    self.samples.push(elapsed / iters);
                    break;
                }
            }
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{name:<60} median {:>12?}   [{:?} .. {:?}] ({} samples)",
        median,
        lo,
        hi,
        samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget per benchmark, split across the samples.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut samples);
        self
    }

    /// Benchmark a routine that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &mut samples);
        self
    }

    /// End the group (printing happens eagerly; this is a no-op for API
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh driver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            _parent: self,
        }
    }

    /// Benchmark a routine outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: 3,
            measurement_time: Duration::from_millis(3),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(samples.len(), 3);
        assert!(count > 3, "warm-up plus timed iterations ran");
    }

    #[test]
    fn benchmark_id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("insert", 500).to_string(), "insert/500");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).measurement_time(Duration::from_millis(2));
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
