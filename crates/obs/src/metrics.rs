//! The metrics registry: fixed, enum-indexed arrays of atomics.
//!
//! Metric names are a closed enum, not runtime strings: recording is an
//! array index plus one relaxed `fetch_add`, the exporter can never see a
//! misspelled series, and the full catalogue is visible in one place below.
//! Counters only go up; gauges are last-write-wins; histograms use fixed
//! power-of-four nanosecond buckets (1µs … ~4.4min) so recording stays a
//! single atomic per observation.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters. The `name()` is the Prometheus series name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// XQuery statements executed (successfully or not).
    QueriesExecuted,
    /// SQL statements executed through the SQL/XML front end.
    SqlStatements,
    /// Index probes attempted (one per probe condition per source).
    IndexProbes,
    /// Index entries scanned by range probes.
    IndexEntriesScanned,
    /// Index probes that hit an injected/real storage fault.
    IndexProbeFaults,
    /// Probe faults that degraded the source to a full collection scan.
    DegradationsToScan,
    /// Queries aborted on budget exhaustion (steps or deadline).
    BudgetExhaustions,
    /// Queries aborted by cancellation.
    QueriesCancelled,
    /// Documents fully evaluated (post-filter survivors plus full scans).
    DocsEvaluated,
    /// Evaluation steps charged to query budgets.
    EvalSteps,
    /// B+Tree nodes touched by index range scans (descent + leaf chain).
    BtreeNodeTouches,
    /// Queries that ran any phase on more than one worker.
    ParallelQueries,
    /// Shard tasks executed by parallel scans.
    ParallelShardsExecuted,
    /// Query-doctor diagnoses issued (index-ineligible predicates explained).
    DoctorDiagnoses,
    /// Index entries inserted by CREATE INDEX back-fills and row inserts.
    IndexEntriesBuilt,
    /// Records appended to the write-ahead log.
    WalRecordsAppended,
    /// Bytes appended to the write-ahead log (frames, including headers).
    WalBytes,
    /// Records replayed during recovery (snapshot records + log suffix).
    WalRecordsReplayed,
    /// Torn WAL tails truncated during recovery.
    TornTailTruncations,
    /// Nanoseconds spent in recovery (replay + index rebuild), cumulative.
    RecoveryNanos,
    /// Documents skipped by the structural path-signature pre-filter.
    PrefilterDocsSkipped,
    /// Query texts answered from the plan cache (parse and plan skipped).
    PlanCacheHits,
    /// Query texts parsed and planned because the cache had no entry.
    PlanCacheMisses,
    /// Server requests admitted past admission control (a lease was granted).
    SessionsAdmitted,
    /// Server requests shed by admission control (queue full or the queue
    /// deadline expired before a lease freed up).
    SessionsShed,
    /// Admitted server requests aborted by their per-request deadline.
    RequestsTimedOut,
    /// Page fetches answered from the buffer pool (no backing read).
    BufferPoolHits,
    /// Page fetches that had to read from the backing store.
    BufferPoolMisses,
    /// Pages evicted from the buffer pool to make room.
    PagesEvicted,
    /// Holistic twig joins executed over structural labels.
    TwigJoinsExecuted,
    /// Candidate documents admitted by twig-join row-set intersections.
    TwigCandidates,
    /// Documents skipped by the twig-join phase.
    TwigDocsSkipped,
    /// Rows removed by SQL DELETE statements.
    RowsDeleted,
    /// Rows whose contents were replaced by SQL UPDATE statements.
    DocsReplaced,
    /// Tombstoned heap records compacted away at checkpoint.
    TombstonesReclaimed,
    /// (candidate, eligible index) pairs scored by the cost model.
    IndexCandidatesCosted,
    /// Query plans built with the synopsis-backed cost model.
    PlansCosted,
    /// Docid-set intersections performed when AND-combining index probes.
    MultiIndexIntersections,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 38] = [
        Counter::QueriesExecuted,
        Counter::SqlStatements,
        Counter::IndexProbes,
        Counter::IndexEntriesScanned,
        Counter::IndexProbeFaults,
        Counter::DegradationsToScan,
        Counter::BudgetExhaustions,
        Counter::QueriesCancelled,
        Counter::DocsEvaluated,
        Counter::EvalSteps,
        Counter::BtreeNodeTouches,
        Counter::ParallelQueries,
        Counter::ParallelShardsExecuted,
        Counter::DoctorDiagnoses,
        Counter::IndexEntriesBuilt,
        Counter::WalRecordsAppended,
        Counter::WalBytes,
        Counter::WalRecordsReplayed,
        Counter::TornTailTruncations,
        Counter::RecoveryNanos,
        Counter::PrefilterDocsSkipped,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::SessionsAdmitted,
        Counter::SessionsShed,
        Counter::RequestsTimedOut,
        Counter::BufferPoolHits,
        Counter::BufferPoolMisses,
        Counter::PagesEvicted,
        Counter::TwigJoinsExecuted,
        Counter::TwigCandidates,
        Counter::TwigDocsSkipped,
        Counter::RowsDeleted,
        Counter::DocsReplaced,
        Counter::TombstonesReclaimed,
        Counter::IndexCandidatesCosted,
        Counter::PlansCosted,
        Counter::MultiIndexIntersections,
    ];

    /// Prometheus series name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::QueriesExecuted => "xqdb_queries_executed_total",
            Counter::SqlStatements => "xqdb_sql_statements_total",
            Counter::IndexProbes => "xqdb_index_probes_total",
            Counter::IndexEntriesScanned => "xqdb_index_entries_scanned_total",
            Counter::IndexProbeFaults => "xqdb_index_probe_faults_total",
            Counter::DegradationsToScan => "xqdb_degradations_to_scan_total",
            Counter::BudgetExhaustions => "xqdb_budget_exhaustions_total",
            Counter::QueriesCancelled => "xqdb_queries_cancelled_total",
            Counter::DocsEvaluated => "xqdb_docs_evaluated_total",
            Counter::EvalSteps => "xqdb_eval_steps_total",
            Counter::BtreeNodeTouches => "xqdb_btree_node_touches_total",
            Counter::ParallelQueries => "xqdb_parallel_queries_total",
            Counter::ParallelShardsExecuted => "xqdb_parallel_shards_executed_total",
            Counter::DoctorDiagnoses => "xqdb_doctor_diagnoses_total",
            Counter::IndexEntriesBuilt => "xqdb_index_entries_built_total",
            Counter::WalRecordsAppended => "xqdb_wal_records_appended_total",
            Counter::WalBytes => "xqdb_wal_bytes_total",
            Counter::WalRecordsReplayed => "xqdb_wal_records_replayed_total",
            Counter::TornTailTruncations => "xqdb_torn_tail_truncations_total",
            Counter::RecoveryNanos => "xqdb_recovery_ns_total",
            Counter::PrefilterDocsSkipped => "xqdb_prefilter_docs_skipped_total",
            Counter::PlanCacheHits => "xqdb_plan_cache_hits_total",
            Counter::PlanCacheMisses => "xqdb_plan_cache_misses_total",
            Counter::SessionsAdmitted => "xqdb_sessions_admitted_total",
            Counter::SessionsShed => "xqdb_sessions_shed_total",
            Counter::RequestsTimedOut => "xqdb_requests_timed_out_total",
            Counter::BufferPoolHits => "xqdb_buffer_pool_hits_total",
            Counter::BufferPoolMisses => "xqdb_buffer_pool_misses_total",
            Counter::PagesEvicted => "xqdb_pages_evicted_total",
            Counter::TwigJoinsExecuted => "xqdb_twig_joins_executed_total",
            Counter::TwigCandidates => "xqdb_twig_candidates_total",
            Counter::TwigDocsSkipped => "xqdb_twig_docs_skipped_total",
            Counter::RowsDeleted => "xqdb_rows_deleted_total",
            Counter::DocsReplaced => "xqdb_docs_replaced_total",
            Counter::TombstonesReclaimed => "xqdb_tombstones_reclaimed_total",
            Counter::IndexCandidatesCosted => "xqdb_index_candidates_costed_total",
            Counter::PlansCosted => "xqdb_plans_costed_total",
            Counter::MultiIndexIntersections => "xqdb_multi_index_intersections_total",
        }
    }

    /// Prometheus HELP text.
    pub fn help(self) -> &'static str {
        match self {
            Counter::QueriesExecuted => "XQuery statements executed",
            Counter::SqlStatements => "SQL statements executed",
            Counter::IndexProbes => "index probes attempted",
            Counter::IndexEntriesScanned => "index entries scanned by range probes",
            Counter::IndexProbeFaults => "index probes that hit a storage fault",
            Counter::DegradationsToScan => "probe faults degraded to full collection scans",
            Counter::BudgetExhaustions => "queries aborted on budget exhaustion",
            Counter::QueriesCancelled => "queries aborted by cancellation",
            Counter::DocsEvaluated => "documents fully evaluated",
            Counter::EvalSteps => "evaluation steps charged to budgets",
            Counter::BtreeNodeTouches => "B+Tree nodes touched by index range scans",
            Counter::ParallelQueries => "queries that used more than one worker",
            Counter::ParallelShardsExecuted => "shard tasks executed by parallel scans",
            Counter::DoctorDiagnoses => "query-doctor diagnoses issued",
            Counter::IndexEntriesBuilt => "index entries inserted by back-fills and inserts",
            Counter::WalRecordsAppended => "records appended to the write-ahead log",
            Counter::WalBytes => "bytes appended to the write-ahead log",
            Counter::WalRecordsReplayed => "records replayed during recovery",
            Counter::TornTailTruncations => "torn WAL tails truncated during recovery",
            Counter::RecoveryNanos => "nanoseconds spent in recovery, cumulative",
            Counter::PrefilterDocsSkipped => {
                "documents skipped by the structural path-signature pre-filter"
            }
            Counter::PlanCacheHits => "query texts answered from the plan cache",
            Counter::PlanCacheMisses => "query texts parsed and planned on a cache miss",
            Counter::SessionsAdmitted => "server requests admitted past admission control",
            Counter::SessionsShed => "server requests shed by admission control",
            Counter::RequestsTimedOut => "admitted requests aborted by their deadline",
            Counter::BufferPoolHits => "page fetches answered from the buffer pool",
            Counter::BufferPoolMisses => "page fetches read from the backing store",
            Counter::PagesEvicted => "pages evicted from the buffer pool",
            Counter::TwigJoinsExecuted => "holistic twig joins executed over structural labels",
            Counter::TwigCandidates => {
                "candidate documents admitted by twig-join row-set intersections"
            }
            Counter::TwigDocsSkipped => "documents skipped by the twig-join phase",
            Counter::RowsDeleted => "rows removed by SQL DELETE statements",
            Counter::DocsReplaced => "rows replaced by SQL UPDATE statements",
            Counter::TombstonesReclaimed => "tombstoned heap records compacted at checkpoint",
            Counter::IndexCandidatesCosted => {
                "(candidate, eligible index) pairs scored by the cost model"
            }
            Counter::PlansCosted => "query plans built with the synopsis-backed cost model",
            Counter::MultiIndexIntersections => {
                "docid-set intersections performed when AND-combining index probes"
            }
        }
    }
}

/// Gauges. `ParallelWorkers`/`ParallelShards` are last-write-wins (set);
/// `ActiveConnections` is a live up/down count maintained with
/// [`MetricsRegistry::inc_gauge`]/[`MetricsRegistry::dec_gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Workers used by the most recent parallel phase.
    ParallelWorkers,
    /// Shards executed by the most recent parallel phase.
    ParallelShards,
    /// Server connections currently open (accepted and not yet closed).
    ActiveConnections,
    /// Configured buffer-pool capacity of the shared page file, in pages.
    BufferPoolPages,
}

impl Gauge {
    /// Every gauge, in export order.
    pub const ALL: [Gauge; 4] = [
        Gauge::ParallelWorkers,
        Gauge::ParallelShards,
        Gauge::ActiveConnections,
        Gauge::BufferPoolPages,
    ];

    /// Prometheus series name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ParallelWorkers => "xqdb_parallel_workers",
            Gauge::ParallelShards => "xqdb_parallel_shards",
            Gauge::ActiveConnections => "xqdb_active_connections",
            Gauge::BufferPoolPages => "xqdb_buffer_pool_pages",
        }
    }

    /// Prometheus HELP text.
    pub fn help(self) -> &'static str {
        match self {
            Gauge::ParallelWorkers => "workers used by the most recent parallel phase",
            Gauge::ParallelShards => "shards executed by the most recent parallel phase",
            Gauge::ActiveConnections => "server connections currently open",
            Gauge::BufferPoolPages => "configured buffer-pool capacity in pages",
        }
    }
}

/// Duration histograms (all record nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Histogram {
    /// End-to-end query wall clock.
    QueryNanos,
    /// Per-source index probe wall clock.
    ProbeNanos,
}

impl Histogram {
    /// Every histogram, in export order.
    pub const ALL: [Histogram; 2] = [Histogram::QueryNanos, Histogram::ProbeNanos];

    /// Prometheus series name (base; exporters add `_bucket`/`_sum`/`_count`).
    pub fn name(self) -> &'static str {
        match self {
            Histogram::QueryNanos => "xqdb_query_duration_ns",
            Histogram::ProbeNanos => "xqdb_index_probe_duration_ns",
        }
    }

    /// Prometheus HELP text.
    pub fn help(self) -> &'static str {
        match self {
            Histogram::QueryNanos => "end-to-end query wall clock in nanoseconds",
            Histogram::ProbeNanos => "per-source index probe wall clock in nanoseconds",
        }
    }
}

/// Upper bounds (inclusive, nanoseconds) of the fixed histogram buckets:
/// 1µs · 4^k for k = 0..12, i.e. 1µs, 4µs, 16µs, … ~4.4min, plus +Inf.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

const NUM_BUCKETS: usize = BUCKET_BOUNDS_NS.len() + 1; // +Inf overflow bucket

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, nanos: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(NUM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// The registry: one cell per metric, shared by reference.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    hists: [HistogramCells; Histogram::ALL.len()],
}

impl MetricsRegistry {
    /// A registry with every metric at zero.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| HistogramCells::new()),
        }
    }

    /// Add `n` to a counter (relaxed; totals are read via [`snapshot`]).
    ///
    /// [`snapshot`]: MetricsRegistry::snapshot
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Set a gauge.
    #[inline]
    pub fn set_gauge(&self, gauge: Gauge, v: u64) {
        self.gauges[gauge as usize].store(v, Ordering::Relaxed);
    }

    /// Increment an up/down gauge by one.
    #[inline]
    pub fn inc_gauge(&self, gauge: Gauge) {
        self.gauges[gauge as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement an up/down gauge by one, saturating at zero: a stray
    /// double-decrement must not wrap to `u64::MAX` in an exporter.
    #[inline]
    pub fn dec_gauge(&self, gauge: Gauge) {
        let _ = self.gauges[gauge as usize].fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |v| Some(v.saturating_sub(1)),
        );
    }

    /// Record one duration observation.
    #[inline]
    pub fn observe_ns(&self, hist: Histogram, nanos: u64) {
        self.hists[hist as usize].observe(nanos);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            gauges: std::array::from_fn(|i| self.gauges[i].load(Ordering::Relaxed)),
            hists: std::array::from_fn(|i| {
                let h = &self.hists[i];
                HistogramSnapshot {
                    buckets: std::array::from_fn(|b| h.buckets[b].load(Ordering::Relaxed)),
                    sum: h.sum.load(Ordering::Relaxed),
                    count: h.count.load(Ordering::Relaxed),
                }
            }),
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Cumulative-from-zero per-bucket counts (last bucket is +Inf).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all observed nanoseconds.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// A point-in-time copy of the whole registry, with exporters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::ALL.len()],
    gauges: [u64; Gauge::ALL.len()],
    hists: [HistogramSnapshot; Histogram::ALL.len()],
}

impl MetricsSnapshot {
    /// The value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The value of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// One histogram's snapshot.
    pub fn histogram(&self, h: Histogram) -> &HistogramSnapshot {
        &self.hists[h as usize]
    }

    /// Render in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for c in Counter::ALL {
            let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
            let _ = writeln!(out, "# TYPE {} counter", c.name());
            let _ = writeln!(out, "{} {}", c.name(), self.counter(c));
        }
        for g in Gauge::ALL {
            let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
            let _ = writeln!(out, "# TYPE {} gauge", g.name());
            let _ = writeln!(out, "{} {}", g.name(), self.gauge(g));
        }
        for h in Histogram::ALL {
            let snap = self.histogram(h);
            let _ = writeln!(out, "# HELP {} {}", h.name(), h.help());
            let _ = writeln!(out, "# TYPE {} histogram", h.name());
            let mut cumulative = 0u64;
            for (i, bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
                cumulative += snap.buckets[i];
                let _ = writeln!(out, "{}_bucket{{le=\"{bound}\"}} {cumulative}", h.name());
            }
            let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name(), snap.count);
            let _ = writeln!(out, "{}_sum {}", h.name(), snap.sum);
            let _ = writeln!(out, "{}_count {}", h.name(), snap.count);
        }
        out
    }

    /// Render as a JSON object (hand-written: all names are static
    /// identifiers and all values are unsigned integers, so no escaping is
    /// needed).
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", c.name(), self.counter(*c));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, g) in Gauge::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {}", g.name(), self.gauge(*g));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in Histogram::ALL.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let snap = self.histogram(*h);
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{ \"count\": {}, \"sum_ns\": {}, \"buckets\": [",
                h.name(),
                snap.count,
                snap.sum
            );
            for (b, v) in snap.buckets.iter().enumerate() {
                let sep = if b == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{v}");
            }
            out.push_str("] }");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::IndexProbes, 2);
        reg.add(Counter::IndexProbes, 3);
        reg.set_gauge(Gauge::ParallelWorkers, 4);
        reg.set_gauge(Gauge::ParallelWorkers, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::IndexProbes), 5);
        assert_eq!(snap.counter(Counter::QueriesExecuted), 0);
        assert_eq!(snap.gauge(Gauge::ParallelWorkers), 2, "gauges are last-write-wins");
    }

    #[test]
    fn up_down_gauge_saturates_at_zero() {
        let reg = MetricsRegistry::new();
        reg.inc_gauge(Gauge::ActiveConnections);
        reg.inc_gauge(Gauge::ActiveConnections);
        reg.dec_gauge(Gauge::ActiveConnections);
        assert_eq!(reg.snapshot().gauge(Gauge::ActiveConnections), 1);
        reg.dec_gauge(Gauge::ActiveConnections);
        reg.dec_gauge(Gauge::ActiveConnections); // stray: must not wrap
        assert_eq!(reg.snapshot().gauge(Gauge::ActiveConnections), 0);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let reg = MetricsRegistry::new();
        reg.observe_ns(Histogram::QueryNanos, 500); // <= 1µs bucket
        reg.observe_ns(Histogram::QueryNanos, 5_000); // <= 16µs bucket
        reg.observe_ns(Histogram::QueryNanos, u64::MAX / 2); // +Inf bucket
        let snap = reg.snapshot();
        let h = snap.histogram(Histogram::QueryNanos);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 500 + 5_000 + u64::MAX / 2);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS_NS.len()], 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        reg.add(Counter::EvalSteps, 1);
                        reg.observe_ns(Histogram::ProbeNanos, 100);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::EvalSteps), 8000);
        assert_eq!(snap.histogram(Histogram::ProbeNanos).count, 8000);
    }

    #[test]
    fn prometheus_export_shape() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::QueriesExecuted, 7);
        reg.observe_ns(Histogram::QueryNanos, 2_000);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE xqdb_queries_executed_total counter"));
        assert!(text.contains("xqdb_queries_executed_total 7"));
        assert!(text.contains("xqdb_query_duration_ns_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("xqdb_query_duration_ns_count 1"));
        // Buckets are cumulative: the 4µs bucket already includes the 2µs obs.
        assert!(text.contains("xqdb_query_duration_ns_bucket{le=\"4000\"} 1"));
    }

    #[test]
    fn json_export_is_structurally_balanced() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::DoctorDiagnoses, 1);
        let json = reg.snapshot().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"xqdb_doctor_diagnoses_total\": 1"));
    }
}
