//! `xqdb-obs`: observability for the query engine — span-based tracing and
//! an atomic metrics registry, std-only and **zero-allocation when disabled**.
//!
//! The two design rules, in order:
//!
//! 1. **Disabled means free.** Every handle ([`Obs`], [`Trace`], [`Span`])
//!    is an `Option<Arc<…>>` that is `None` when observability is off. Every
//!    recording call starts with that null check and returns; no atomics are
//!    touched, no strings are built, nothing is allocated. The engine can
//!    therefore thread `Obs` through unconditionally.
//! 2. **Recording is lock-cheap.** Metrics are fixed, enum-indexed arrays of
//!    `AtomicU64` — one relaxed `fetch_add` per event, no map lookups, no
//!    locks. Only traces (per-query, bounded by plan size) take a mutex, and
//!    only when tracing is on.
//!
//! The registry exports point-in-time [`MetricsSnapshot`]s as Prometheus
//! text or JSON; traces render as an indented tree with wall-clock timings.
//! Both are pure data — the engine never prints, callers (the CLI, tests,
//! the bench harness) decide where output goes.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use trace::{Span, SpanId, SpanRecord, Trace};

use std::sync::Arc;

/// Which observability features are on. `Default` is everything off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObsConfig {
    /// Record counters/gauges/histograms into the registry.
    pub metrics: bool,
    /// Record per-query span traces.
    pub tracing: bool,
}

impl ObsConfig {
    /// Everything off — the zero-cost configuration.
    pub fn disabled() -> Self {
        ObsConfig::default()
    }

    /// Metrics and tracing both on.
    pub fn enabled() -> Self {
        ObsConfig { metrics: true, tracing: true }
    }

    /// Metrics only (the long-running-server shape: counters always on,
    /// traces only for queries that ask).
    pub fn metrics_only() -> Self {
        ObsConfig { metrics: true, tracing: false }
    }
}

#[derive(Debug)]
struct ObsInner {
    config: ObsConfig,
    metrics: MetricsRegistry,
}

/// The engine-wide observability handle: a metrics registry plus the
/// configuration saying what to record. Cheap to clone (an `Arc`), trivially
/// cheap when disabled (a `None`).
#[derive(Debug, Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl Obs {
    /// The disabled handle: no allocation, every recording call is a null
    /// check.
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// A handle with the given configuration. `ObsConfig::disabled()`
    /// collapses to the allocation-free disabled handle.
    pub fn new(config: ObsConfig) -> Obs {
        if config == ObsConfig::disabled() {
            return Obs::disabled();
        }
        Obs {
            inner: Some(Arc::new(ObsInner {
                config,
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    /// Is anything being recorded at all?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Is metrics recording on?
    pub fn metrics_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.config.metrics)
    }

    /// Is tracing on?
    pub fn tracing_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.config.tracing)
    }

    /// Add `n` to a counter. No-op when metrics are off.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            if inner.config.metrics {
                inner.metrics.add(counter, n);
            }
        }
    }

    /// Bump a counter by one. No-op when metrics are off.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Set a gauge to `v`. No-op when metrics are off.
    #[inline]
    pub fn set_gauge(&self, gauge: Gauge, v: u64) {
        if let Some(inner) = &self.inner {
            if inner.config.metrics {
                inner.metrics.set_gauge(gauge, v);
            }
        }
    }

    /// Increment an up/down gauge by one. No-op when metrics are off.
    #[inline]
    pub fn inc_gauge(&self, gauge: Gauge) {
        if let Some(inner) = &self.inner {
            if inner.config.metrics {
                inner.metrics.inc_gauge(gauge);
            }
        }
    }

    /// Decrement an up/down gauge by one (saturating at zero). No-op when
    /// metrics are off.
    #[inline]
    pub fn dec_gauge(&self, gauge: Gauge) {
        if let Some(inner) = &self.inner {
            if inner.config.metrics {
                inner.metrics.dec_gauge(gauge);
            }
        }
    }

    /// Record one observation (in nanoseconds) into a histogram. No-op when
    /// metrics are off.
    #[inline]
    pub fn observe_ns(&self, hist: Histogram, nanos: u64) {
        if let Some(inner) = &self.inner {
            if inner.config.metrics {
                inner.metrics.observe_ns(hist, nanos);
            }
        }
    }

    /// A point-in-time snapshot of the registry, or `None` when metrics are
    /// off (there is nothing to report).
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let inner = self.inner.as_ref()?;
        if !inner.config.metrics {
            return None;
        }
        Some(inner.metrics.snapshot())
    }

    /// A new per-query trace: recording when tracing is on, the free
    /// disabled trace otherwise.
    pub fn trace(&self) -> Trace {
        if self.tracing_enabled() {
            Trace::recording()
        } else {
            Trace::disabled()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_allocates_nothing_and_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.enabled());
        obs.incr(Counter::QueriesExecuted);
        obs.set_gauge(Gauge::ParallelWorkers, 9);
        obs.observe_ns(Histogram::QueryNanos, 1_000_000);
        assert!(obs.metrics_snapshot().is_none());
        let trace = obs.trace();
        assert!(!trace.enabled());
        let span = trace.span("query");
        drop(span);
        assert!(trace.finished_spans().is_empty());
        // The disabled config collapses to the same free handle.
        assert!(!Obs::new(ObsConfig::disabled()).enabled());
    }

    #[test]
    fn metrics_only_config_yields_no_trace() {
        let obs = Obs::new(ObsConfig::metrics_only());
        assert!(obs.metrics_enabled());
        assert!(!obs.tracing_enabled());
        assert!(!obs.trace().enabled());
        obs.add(Counter::IndexProbes, 3);
        let snap = obs.metrics_snapshot().expect("metrics are on");
        assert_eq!(snap.counter(Counter::IndexProbes), 3);
    }

    #[test]
    fn enabled_handle_records_counters_and_traces() {
        let obs = Obs::new(ObsConfig::enabled());
        obs.incr(Counter::QueriesExecuted);
        obs.add(Counter::IndexEntriesScanned, 41);
        obs.set_gauge(Gauge::ParallelShards, 8);
        obs.observe_ns(Histogram::QueryNanos, 5_000);
        let snap = obs.metrics_snapshot().expect("metrics are on");
        assert_eq!(snap.counter(Counter::QueriesExecuted), 1);
        assert_eq!(snap.counter(Counter::IndexEntriesScanned), 41);
        assert_eq!(snap.gauge(Gauge::ParallelShards), 8);
        let trace = obs.trace();
        {
            let mut span = trace.span("query");
            span.tag_str("source", "orders.orddoc");
        }
        let spans = trace.finished_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "query");
    }

    #[test]
    fn clones_share_the_registry() {
        let obs = Obs::new(ObsConfig::metrics_only());
        let clone = obs.clone();
        clone.incr(Counter::DegradationsToScan);
        assert_eq!(
            obs.metrics_snapshot().map(|s| s.counter(Counter::DegradationsToScan)),
            Some(1)
        );
    }
}
