//! Per-query span traces.
//!
//! A [`Trace`] is created per statement and records a tree of [`SpanRecord`]s
//! — parse, plan, probe, scan, serialize, plus per-worker child spans from
//! parallel phases. Spans are RAII guards: created via [`Trace::span`] or
//! [`Span::child`], they buffer their tags locally and write one record into
//! the trace when dropped, so the shared mutex is taken twice per span (once
//! to reserve the id, once to finish) and never while the span's work runs.
//!
//! The trace is `Sync`: worker threads record child spans through the same
//! handle, keyed by an explicit parent [`SpanId`] (`Copy`, so it crosses the
//! closure boundary without borrowing the parent guard).

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Index of a span within its trace.
pub type SpanId = usize;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`"parse"`, `"index probe"`, …).
    pub name: &'static str,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Start offset from the trace's start, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// A stage-defined item count (documents, entries, rows…).
    pub count: u64,
    /// Key/value annotations.
    pub tags: Vec<(&'static str, String)>,
}

#[derive(Debug)]
struct TraceInner {
    start: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

/// A per-query trace handle. Disabled traces are free: no allocation, spans
/// become no-op guards.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// The free disabled trace.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// A recording trace whose clock starts now.
    pub fn recording() -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                start: Instant::now(),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Is this trace recording?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Start a root span.
    pub fn span(&self, name: &'static str) -> Span {
        self.span_with_parent(None, name)
    }

    /// Start a span under an explicit parent (used by worker threads, which
    /// hold a `SpanId` rather than a borrow of the parent guard).
    pub fn span_with_parent(&self, parent: Option<SpanId>, name: &'static str) -> Span {
        let Some(inner) = &self.inner else {
            return Span { live: None, count: 0, tags: Vec::new() };
        };
        let start = Instant::now();
        let start_ns = duration_ns(inner.start, start);
        let id = {
            let Ok(mut spans) = inner.spans.lock() else {
                return Span { live: None, count: 0, tags: Vec::new() };
            };
            spans.push(SpanRecord {
                name,
                parent,
                start_ns,
                dur_ns: 0,
                count: 0,
                tags: Vec::new(),
            });
            spans.len() - 1
        };
        Span {
            live: Some(LiveSpan { trace: Arc::clone(inner), id, start }),
            count: 0,
            tags: Vec::new(),
        }
    }

    /// Record a span that was measured externally (e.g. a worker task timed
    /// by the pool after the fact). `started` anchors the span on this
    /// trace's clock; `dur_ns` is the already-measured wall time.
    pub fn record_finished(
        &self,
        parent: Option<SpanId>,
        name: &'static str,
        started: Instant,
        dur_ns: u64,
        count: u64,
        tags: Vec<(&'static str, String)>,
    ) {
        let Some(inner) = &self.inner else { return };
        let start_ns = duration_ns(inner.start, started);
        if let Ok(mut spans) = inner.spans.lock() {
            spans.push(SpanRecord { name, parent, start_ns, dur_ns, count, tags });
        }
    }

    /// Snapshot of every span recorded so far (finished or not), in start
    /// order.
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        let Some(inner) = &self.inner else { return Vec::new() };
        match inner.spans.lock() {
            Ok(spans) => spans.clone(),
            Err(_) => Vec::new(),
        }
    }

    /// Render the span tree, indented, with stage timings, counts and tags:
    ///
    /// ```text
    /// query                         1.234ms
    ///   parse                       0.040ms
    ///   index probe                 0.101ms  count=41 [source=orders.orddoc]
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let spans = self.finished_spans();
        let mut out = String::new();
        // Depth by chasing parents; spans are in start order so parents
        // always precede children.
        let mut depth = vec![0usize; spans.len()];
        for (i, s) in spans.iter().enumerate() {
            if let Some(p) = s.parent {
                if p < i {
                    depth[i] = depth[p] + 1;
                }
            }
        }
        for (i, s) in spans.iter().enumerate() {
            let indent = "  ".repeat(depth[i]);
            let label = format!("{indent}{}", s.name);
            let _ = write!(out, "{label:<28} {:>9.3}ms", s.dur_ns as f64 / 1_000_000.0);
            if s.count > 0 {
                let _ = write!(out, "  count={}", s.count);
            }
            if !s.tags.is_empty() {
                let rendered: Vec<String> =
                    s.tags.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = write!(out, "  [{}]", rendered.join(" "));
            }
            out.push('\n');
        }
        out
    }
}

fn duration_ns(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.duration_since(from).as_nanos()).unwrap_or(u64::MAX)
}

#[derive(Debug)]
struct LiveSpan {
    trace: Arc<TraceInner>,
    id: SpanId,
    start: Instant,
}

/// An in-flight span. Dropping it (or calling [`Span::finish`]) writes the
/// final record. Disabled spans are free.
#[derive(Debug)]
pub struct Span {
    live: Option<LiveSpan>,
    count: u64,
    tags: Vec<(&'static str, String)>,
}

impl Span {
    /// This span's id, for worker closures that need to attach children
    /// without borrowing the guard. `None` when tracing is off.
    pub fn id(&self) -> Option<SpanId> {
        self.live.as_ref().map(|l| l.id)
    }

    /// Is this span actually recording?
    pub fn enabled(&self) -> bool {
        self.live.is_some()
    }

    /// Start a child span.
    pub fn child(&self, name: &'static str) -> Span {
        match &self.live {
            Some(l) => {
                Trace { inner: Some(Arc::clone(&l.trace)) }.span_with_parent(Some(l.id), name)
            }
            None => Span { live: None, count: 0, tags: Vec::new() },
        }
    }

    /// Attach a tag. The value is only materialized when recording.
    pub fn tag_str(&mut self, key: &'static str, value: &str) {
        if self.live.is_some() {
            self.tags.push((key, value.to_string()));
        }
    }

    /// Attach a tag whose value is built lazily (free when disabled).
    pub fn tag_with(&mut self, key: &'static str, value: impl FnOnce() -> String) {
        if self.live.is_some() {
            self.tags.push((key, value()));
        }
    }

    /// Add to the span's item count.
    pub fn add_count(&mut self, n: u64) {
        if self.live.is_some() {
            self.count += n;
        }
    }

    /// Finish now (equivalent to dropping).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur_ns = duration_ns(live.start, Instant::now());
        let guard = live.trace.spans.lock();
        if let Ok(mut spans) = guard {
            if let Some(rec) = spans.get_mut(live.id) {
                rec.dur_ns = dur_ns;
                rec.count = self.count;
                rec.tags = std::mem::take(&mut self.tags);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nesting_tags_and_counts() {
        let trace = Trace::recording();
        {
            let mut root = trace.span("query");
            root.tag_str("text", "//lineitem");
            {
                let mut probe = root.child("index probe");
                probe.add_count(41);
                probe.tag_with("index", || "li_price".to_string());
            }
            let _scan = root.child("scan");
        }
        let spans = trace.finished_spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "query");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].name, "index probe");
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[1].count, 41);
        assert_eq!(spans[1].tags, vec![("index", "li_price".to_string())]);
        assert_eq!(spans[2].parent, Some(0));
        let rendered = trace.render();
        assert!(rendered.contains("query"));
        assert!(rendered.contains("  index probe"));
        assert!(rendered.contains("count=41"));
        assert!(rendered.contains("index=li_price"));
    }

    #[test]
    fn disabled_trace_spans_are_free() {
        let trace = Trace::disabled();
        let mut span = trace.span("query");
        assert!(!span.enabled());
        assert!(span.id().is_none());
        // The lazy tag closure must never run when disabled.
        span.tag_with("k", || unreachable!("disabled span materialized a tag"));
        span.add_count(5);
        let child = span.child("probe");
        drop(child);
        drop(span);
        assert!(trace.finished_spans().is_empty());
        assert!(trace.render().is_empty());
    }

    #[test]
    fn worker_threads_can_attach_child_spans_by_id() {
        let trace = Trace::recording();
        let root = trace.span("scan");
        let parent = root.id();
        std::thread::scope(|s| {
            for w in 0..4 {
                let trace = &trace;
                s.spawn(move || {
                    let mut span = trace.span_with_parent(parent, "worker");
                    span.add_count(w + 1);
                });
            }
        });
        drop(root);
        let spans = trace.finished_spans();
        assert_eq!(spans.len(), 5);
        let workers: Vec<_> = spans.iter().filter(|s| s.name == "worker").collect();
        assert_eq!(workers.len(), 4);
        assert!(workers.iter().all(|s| s.parent == Some(0)));
        let total: u64 = workers.iter().map(|s| s.count).sum();
        assert_eq!(total, 1 + 2 + 3 + 4);
    }
}
