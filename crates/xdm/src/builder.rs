//! Construction of immutable document trees.
//!
//! Used by the XML parser (for stored documents) and by the XQuery evaluator
//! (for element constructors). Every `finish()` allocates a **fresh**
//! [`DocId`], so constructed trees never share identity with their sources —
//! the Section 3.6 property of the paper.

use std::sync::Arc;

use crate::atomic::AtomicType;
use crate::node::{DocId, Document, NodeData, NodeHandle, NodeId, NodeKind, TypeAnnotation};
use crate::qname::ExpandedName;

/// Incremental builder producing a [`Document`] with ids in document order.
#[derive(Debug)]
pub struct DocumentBuilder {
    nodes: Vec<NodeData>,
    /// Stack of open element/document node ids.
    stack: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Start a tree rooted by a document node (parsed documents).
    pub fn new_document() -> Self {
        let mut b = DocumentBuilder { nodes: Vec::new(), stack: Vec::new() };
        b.push_node(NodeData {
            kind: NodeKind::Document,
            parent: None,
            name: None,
            value: None,
            children: Vec::new(),
            attributes: Vec::new(),
            subtree_end: NodeId(0),
            annotation: TypeAnnotation::Untyped,
        });
        b.stack.push(NodeId(0));
        b
    }

    /// Start a tree rooted by an element node (constructed elements —
    /// Section 3.5: such trees have *no* document node, so absolute paths
    /// over them raise type errors).
    pub fn new_element_root(name: ExpandedName) -> Self {
        let mut b = DocumentBuilder { nodes: Vec::new(), stack: Vec::new() };
        b.push_node(NodeData {
            kind: NodeKind::Element,
            parent: None,
            name: Some(name),
            value: None,
            children: Vec::new(),
            attributes: Vec::new(),
            subtree_end: NodeId(0),
            annotation: TypeAnnotation::Untyped,
        });
        b.stack.push(NodeId(0));
        b
    }

    fn push_node(&mut self, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(data);
        id
    }

    fn current(&self) -> NodeId {
        // The stack starts holding the root and only finish() drains it; if
        // a caller misuses the API the root is the safe degradation target.
        self.stack.last().copied().unwrap_or(NodeId(0))
    }

    /// Open a child element of the current node.
    pub fn start_element(&mut self, name: ExpandedName) -> NodeId {
        let parent = self.current();
        let id = self.push_node(NodeData {
            kind: NodeKind::Element,
            parent: Some(parent),
            name: Some(name),
            value: None,
            children: Vec::new(),
            attributes: Vec::new(),
            subtree_end: NodeId(0),
            annotation: TypeAnnotation::Untyped,
        });
        self.nodes[parent.0 as usize].children.push(id);
        self.stack.push(id);
        id
    }

    /// Close the most recently opened element.
    pub fn end_element(&mut self) {
        // An unmatched end_element is a caller bug; ignore it rather than
        // abort — the tree stays well-formed without the extra close.
        let Some(id) = self.stack.pop() else { return };
        debug_assert!(
            self.nodes[id.0 as usize].kind == NodeKind::Element,
            "end_element on a non-element"
        );
        // subtree_end is fixed up in finish(); record provisionally here so
        // partially-built trees are still well-formed for debugging.
        self.nodes[id.0 as usize].subtree_end = NodeId(self.nodes.len() as u32 - 1);
    }

    /// Add an attribute to the currently open element. Must be called before
    /// any child content is added (XML well-formedness).
    pub fn attribute(&mut self, name: ExpandedName, value: impl Into<String>) -> NodeId {
        let parent = self.current();
        debug_assert!(
            self.nodes[parent.0 as usize].children.is_empty(),
            "attributes must precede children"
        );
        let id = self.push_node(NodeData {
            kind: NodeKind::Attribute,
            parent: Some(parent),
            name: Some(name),
            value: Some(value.into()),
            children: Vec::new(),
            attributes: Vec::new(),
            subtree_end: NodeId(0),
            annotation: TypeAnnotation::UntypedAtomic,
        });
        self.nodes[parent.0 as usize].attributes.push(id);
        id
    }

    /// Add a text node. Adjacent text nodes are merged, as XDM requires.
    pub fn text(&mut self, content: impl AsRef<str>) -> NodeId {
        let content = content.as_ref();
        let parent = self.current();
        if let Some(&last) = self.nodes[parent.0 as usize].children.last() {
            if self.nodes[last.0 as usize].kind == NodeKind::Text {
                self.nodes[last.0 as usize]
                    .value
                    .get_or_insert_with(String::new)
                    .push_str(content);
                return last;
            }
        }
        self.leaf(NodeKind::Text, None, content.to_string())
    }

    /// Add a comment node.
    pub fn comment(&mut self, content: impl Into<String>) -> NodeId {
        self.leaf(NodeKind::Comment, None, content.into())
    }

    /// Add a processing-instruction node.
    pub fn processing_instruction(
        &mut self,
        target: impl AsRef<str>,
        content: impl Into<String>,
    ) -> NodeId {
        self.leaf(
            NodeKind::ProcessingInstruction,
            Some(ExpandedName::local(target.as_ref())),
            content.into(),
        )
    }

    fn leaf(&mut self, kind: NodeKind, name: Option<ExpandedName>, value: String) -> NodeId {
        let parent = self.current();
        let id = self.push_node(NodeData {
            kind,
            parent: Some(parent),
            name,
            value: Some(value),
            children: Vec::new(),
            attributes: Vec::new(),
            subtree_end: NodeId(0),
            annotation: TypeAnnotation::UntypedAtomic,
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Annotate a node with a validated simple type (mini-validation hook).
    pub fn annotate(&mut self, node: NodeId, ty: AtomicType) {
        self.nodes[node.0 as usize].annotation = TypeAnnotation::Atomic(ty);
    }

    /// Deep-copy `source` (from any document) as a child of the current
    /// node. Used by element constructors: the copy receives new node ids
    /// (hence new identity) and, per the XQuery construction rules the paper
    /// describes, element/attribute annotations are **erased to untyped**
    /// ("construction mode strip").
    pub fn copy_node(&mut self, source: &NodeHandle) {
        match source.kind() {
            NodeKind::Document => {
                // Copying a document node copies its children.
                for child in source.children() {
                    self.copy_node(&child);
                }
            }
            NodeKind::Element => {
                // Elements/attributes carry names by construction; a missing
                // one is a builder bug and the node is skipped, not fatal.
                let Some(name) = source.name() else { return };
                self.start_element(name.clone());
                for attr in source.attributes() {
                    let Some(aname) = attr.name() else { continue };
                    self.attribute(aname.clone(), attr.string_value());
                }
                for child in source.children() {
                    self.copy_node(&child);
                }
                self.end_element();
            }
            NodeKind::Attribute => {
                let Some(name) = source.name() else { return };
                self.attribute(name.clone(), source.string_value());
            }
            NodeKind::Text => {
                self.text(source.string_value());
            }
            NodeKind::Comment => {
                self.comment(source.string_value());
            }
            NodeKind::ProcessingInstruction => {
                self.processing_instruction(
                    source.name().map(|n| n.local.to_string()).unwrap_or_default(),
                    source.string_value(),
                );
            }
        }
    }

    /// Finish the tree: closes the root, computes subtree ranges, allocates
    /// a fresh [`DocId`].
    pub fn finish(mut self) -> Arc<Document> {
        self.stack.clear();
        // Recompute subtree_end bottom-up: a node's subtree ends at the max
        // of its own id and its children's/attributes' ends. Because ids are
        // assigned in document order, iterating in reverse visits children
        // before parents.
        for i in (0..self.nodes.len()).rev() {
            let mut end = NodeId(i as u32);
            for &c in self.nodes[i].children.iter().chain(self.nodes[i].attributes.iter()) {
                end = end.max(self.nodes[c.0 as usize].subtree_end);
            }
            self.nodes[i].subtree_end = end;
        }
        Arc::new(Document { id: DocId::fresh(), nodes: self.nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn adjacent_text_nodes_merge() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("e"));
        b.text("foo");
        b.text("bar");
        b.end_element();
        let doc = b.finish();
        let e = doc.root().children().next().unwrap();
        let texts: Vec<_> = e.children().collect();
        assert_eq!(texts.len(), 1);
        assert_eq!(e.string_value(), "foobar");
    }

    #[test]
    fn element_root_has_no_document_node() {
        let mut b = DocumentBuilder::new_element_root(ExpandedName::local("order"));
        b.text("hi");
        let doc = b.finish();
        assert_eq!(doc.root().kind(), NodeKind::Element);
        assert_eq!(doc.root().tree_root().kind(), NodeKind::Element);
    }

    #[test]
    fn copy_gets_fresh_identity_and_untyped_annotation() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("price"));
        let t = b.text("99.50");
        b.annotate(t, AtomicType::Double);
        b.end_element();
        let src = b.finish();
        let price = src.root().children().next().unwrap();

        let mut c = DocumentBuilder::new_element_root(ExpandedName::local("copy"));
        c.copy_node(&price);
        let copied = c.finish();
        let price2 = copied.root().children().next().unwrap();
        assert_ne!(price, price2); // distinct identity
        assert_eq!(price2.string_value(), "99.50");
        assert_eq!(price2.annotation(), TypeAnnotation::Untyped); // erased
    }

    #[test]
    fn subtree_ranges_cover_whole_subtree() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("a"));
        b.start_element(ExpandedName::local("b"));
        b.attribute(ExpandedName::local("x"), "1");
        b.text("t");
        b.end_element();
        b.start_element(ExpandedName::local("c"));
        b.end_element();
        b.end_element();
        let doc = b.finish();
        let root = doc.root();
        assert_eq!(doc.node(NodeId(0)).subtree_end, NodeId(doc.len() as u32 - 1));
        let a = root.children().next().unwrap();
        // a's subtree covers everything after the document node
        assert_eq!(doc.node(a.id).subtree_end, NodeId(doc.len() as u32 - 1));
        let descendants: Vec<_> = a.descendants().collect();
        assert_eq!(descendants.len(), 3); // b, t, c (attribute excluded)
    }

    #[test]
    fn copy_document_node_copies_children() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("a"));
        b.end_element();
        let src = b.finish();

        let mut c = DocumentBuilder::new_element_root(ExpandedName::local("wrap"));
        c.copy_node(&src.root());
        let out = c.finish();
        let wrap = out.root();
        let a = wrap.children().next().unwrap();
        assert_eq!(a.name().unwrap().local.as_ref(), "a");
    }
}
