//! Qualified names and expanded names.
//!
//! Namespace handling is one of the paper's ten pitfalls (Section 3.7): an
//! index defined without namespace declarations only contains elements in
//! *no* namespace, while a query with a `default element namespace` asks for
//! namespaced elements — so the index is silently ineligible. Getting name
//! matching right therefore matters for both the evaluator and the index
//! pattern matcher.
//!
//! Two distinct types keep lexical and semantic concerns apart:
//!
//! * [`QName`] is the *lexical* form (`prefix:local`) as written in a
//!   document or query, before namespace resolution;
//! * [`ExpandedName`] is the *resolved* form `(namespace-uri?, local)` that
//!   participates in equality — this is what XPath name tests compare.

use std::fmt;
use std::sync::Arc;

/// The `xml` namespace, bound implicitly to the `xml` prefix.
pub const XML_NS: &str = "http://www.w3.org/XML/1998/namespace";
/// The `xmlns` attribute namespace.
pub const XMLNS_NS: &str = "http://www.w3.org/2000/xmlns/";
/// XML Schema namespace (`xs` prefix in queries).
pub const XS_NS: &str = "http://www.w3.org/2001/XMLSchema";
/// XPath data types namespace (`xdt` prefix; hosts `untypedAtomic` in the
/// 2005 drafts the paper cites).
pub const XDT_NS: &str = "http://www.w3.org/2005/xpath-datatypes";
/// Namespace of the built-in function library (`fn` prefix).
pub const FN_NS: &str = "http://www.w3.org/2005/xpath-functions";
/// Namespace of the DB2-style collection access functions (`db2-fn` prefix;
/// the paper's `db2-fn:xmlcolumn`).
pub const DB2_FN_NS: &str = "http://xqdb.example.org/db2-functions";

/// A lexical qualified name: optional prefix plus local part.
///
/// Equality on `QName` is lexical; resolve to an [`ExpandedName`] before
/// comparing names semantically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    /// Prefix as written, or `None` for an unprefixed name.
    pub prefix: Option<Arc<str>>,
    /// Local part.
    pub local: Arc<str>,
}

impl QName {
    /// An unprefixed name.
    pub fn local(local: impl AsRef<str>) -> Self {
        QName { prefix: None, local: Arc::from(local.as_ref()) }
    }

    /// A prefixed name.
    pub fn prefixed(prefix: impl AsRef<str>, local: impl AsRef<str>) -> Self {
        QName { prefix: Some(Arc::from(prefix.as_ref())), local: Arc::from(local.as_ref()) }
    }

    /// Parse a lexical QName (`local` or `prefix:local`). Returns `None` for
    /// malformed input (empty parts, more than one colon).
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split(':');
        let first = parts.next()?;
        match (parts.next(), parts.next()) {
            (None, _) if is_ncname(first) => Some(QName::local(first)),
            (Some(second), None) if is_ncname(first) && is_ncname(second) => {
                Some(QName::prefixed(first, second))
            }
            _ => None,
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{}:{}", p, self.local),
            None => f.write_str(&self.local),
        }
    }
}

/// A namespace-resolved name: `(namespace-uri?, local-part)`.
///
/// `ns == None` means the name is in *no namespace* — which, per the paper's
/// Section 3.7, is exactly what an index pattern without namespace
/// declarations matches.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExpandedName {
    /// Namespace URI, or `None` for no namespace.
    pub ns: Option<Arc<str>>,
    /// Local part.
    pub local: Arc<str>,
}

impl ExpandedName {
    /// A name in no namespace.
    pub fn local(local: impl AsRef<str>) -> Self {
        ExpandedName { ns: None, local: Arc::from(local.as_ref()) }
    }

    /// A name in the given namespace.
    pub fn ns(ns: impl AsRef<str>, local: impl AsRef<str>) -> Self {
        ExpandedName { ns: Some(Arc::from(ns.as_ref())), local: Arc::from(local.as_ref()) }
    }

    /// Clark notation (`{uri}local`) used in diagnostics and EXPLAIN output.
    pub fn clark(&self) -> String {
        match &self.ns {
            Some(ns) => format!("{{{}}}{}", ns, self.local),
            None => self.local.to_string(),
        }
    }
}

impl fmt::Display for ExpandedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.clark())
    }
}

/// True if `s` is a valid NCName (no colon, starts with a letter or `_`).
///
/// This intentionally accepts the full `char::is_alphabetic` range rather
/// than the exact XML 1.0 production tables; the difference does not affect
/// any behaviour the paper discusses.
pub fn is_ncname(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '\u{B7}'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_unprefixed() {
        let q = QName::parse("lineitem").unwrap();
        assert_eq!(q.prefix, None);
        assert_eq!(&*q.local, "lineitem");
        assert_eq!(q.to_string(), "lineitem");
    }

    #[test]
    fn parse_prefixed() {
        let q = QName::parse("c:customer").unwrap();
        assert_eq!(q.prefix.as_deref(), Some("c"));
        assert_eq!(&*q.local, "customer");
        assert_eq!(q.to_string(), "c:customer");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(QName::parse("").is_none());
        assert!(QName::parse(":x").is_none());
        assert!(QName::parse("x:").is_none());
        assert!(QName::parse("a:b:c").is_none());
        assert!(QName::parse("1abc").is_none());
        assert!(QName::parse("a b").is_none());
    }

    #[test]
    fn expanded_name_equality_uses_uri_not_prefix() {
        // Two different prefixes bound to the same URI resolve equal.
        let a = ExpandedName::ns("http://ournamespaces.com/order", "lineitem");
        let b = ExpandedName::ns("http://ournamespaces.com/order", "lineitem");
        assert_eq!(a, b);
        // Same local name, no namespace vs. namespace: NOT equal — this is
        // the Section 3.7 pitfall in miniature.
        let c = ExpandedName::local("lineitem");
        assert_ne!(a, c);
    }

    #[test]
    fn clark_notation() {
        assert_eq!(ExpandedName::local("nation").clark(), "nation");
        assert_eq!(
            ExpandedName::ns("http://x", "nation").clark(),
            "{http://x}nation"
        );
    }

    #[test]
    fn ncname_validation() {
        assert!(is_ncname("order"));
        assert!(is_ncname("_private"));
        assert!(is_ncname("a-b.c"));
        assert!(!is_ncname("9lives"));
        assert!(!is_ncname("a:b"));
        assert!(!is_ncname(""));
    }
}
