//! Atomic values and atomic types.
//!
//! The engine distinguishes the small set of atomic types the paper's
//! pitfalls hinge on:
//!
//! * `xdt:untypedAtomic` — the typed value of unvalidated data; general
//!   comparisons promote it to the *other* operand's type, value comparisons
//!   cast it to `xs:string` (Sections 3.1, 3.6);
//! * `xs:integer` vs `xs:double` — Section 3.6 case 2: comparing long
//!   integers as integers vs. converting both to doubles gives different
//!   answers for large values because of floating-point rounding;
//! * `xs:string`, `xs:date`, `xs:dateTime` — the index key types of
//!   Section 2.1 (`varchar`, `date`, `timestamp`), plus `xs:boolean` for
//!   effective boolean values.

use std::cmp::Ordering;
use std::fmt;

use crate::datetime::{Date, DateTime};
use crate::error::{XdmError, XdmResult};

/// The atomic types known to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomicType {
    /// `xs:string`
    String,
    /// `xdt:untypedAtomic` — data without schema validation.
    UntypedAtomic,
    /// `xs:double`
    Double,
    /// `xs:integer` (modelled as `i64`, wide enough for the paper's
    /// "long integer" discussion).
    Integer,
    /// `xs:decimal` (modelled as a scaled `i128`, 6 fractional digits).
    Decimal,
    /// `xs:boolean`
    Boolean,
    /// `xs:date`
    Date,
    /// `xs:dateTime`
    DateTime,
    /// `xs:anyURI`
    AnyUri,
}

impl AtomicType {
    /// True for the three numeric types that participate in numeric
    /// promotion.
    pub fn is_numeric(self) -> bool {
        matches!(self, AtomicType::Double | AtomicType::Integer | AtomicType::Decimal)
    }

    /// The lexical QName used in diagnostics (`xs:double`, ...).
    pub fn name(self) -> &'static str {
        match self {
            AtomicType::String => "xs:string",
            AtomicType::UntypedAtomic => "xdt:untypedAtomic",
            AtomicType::Double => "xs:double",
            AtomicType::Integer => "xs:integer",
            AtomicType::Decimal => "xs:decimal",
            AtomicType::Boolean => "xs:boolean",
            AtomicType::Date => "xs:date",
            AtomicType::DateTime => "xs:dateTime",
            AtomicType::AnyUri => "xs:anyURI",
        }
    }
}

impl fmt::Display for AtomicType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Number of fractional digits carried by [`AtomicValue::Decimal`].
pub const DECIMAL_SCALE: u32 = 6;
/// `10^DECIMAL_SCALE`, the fixed decimal denominator.
pub const DECIMAL_DENOM: i128 = 1_000_000;

/// An atomic value. Equality is *typed* equality (`5` the integer differs
/// from `"5"` the string); use [`crate::compare`] for XQuery comparison
/// semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum AtomicValue {
    /// `xs:string`
    String(String),
    /// `xdt:untypedAtomic` — carries its lexical form.
    UntypedAtomic(String),
    /// `xs:double`
    Double(f64),
    /// `xs:integer`
    Integer(i64),
    /// `xs:decimal`, stored as `value * 10^6` in an `i128`.
    Decimal(i128),
    /// `xs:boolean`
    Boolean(bool),
    /// `xs:date`
    Date(Date),
    /// `xs:dateTime`
    DateTime(DateTime),
    /// `xs:anyURI`
    AnyUri(String),
}

impl AtomicValue {
    /// The dynamic type of this value.
    pub fn atomic_type(&self) -> AtomicType {
        match self {
            AtomicValue::String(_) => AtomicType::String,
            AtomicValue::UntypedAtomic(_) => AtomicType::UntypedAtomic,
            AtomicValue::Double(_) => AtomicType::Double,
            AtomicValue::Integer(_) => AtomicType::Integer,
            AtomicValue::Decimal(_) => AtomicType::Decimal,
            AtomicValue::Boolean(_) => AtomicType::Boolean,
            AtomicValue::Date(_) => AtomicType::Date,
            AtomicValue::DateTime(_) => AtomicType::DateTime,
            AtomicValue::AnyUri(_) => AtomicType::AnyUri,
        }
    }

    /// Build an `xs:decimal` from a lexical decimal string.
    pub fn decimal_from_str(s: &str) -> XdmResult<AtomicValue> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => match s.strip_prefix('+') {
                Some(rest) => (false, rest),
                None => (false, s),
            },
        };
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if (int_part.is_empty() && frac_part.is_empty())
            || !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(XdmError::invalid_cast(format!("invalid xs:decimal literal {s:?}")));
        }
        let mut value: i128 = 0;
        for b in int_part.bytes() {
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(i128::from(b - b'0')))
                .ok_or_else(|| XdmError::invalid_cast("xs:decimal overflow"))?;
        }
        value = value
            .checked_mul(DECIMAL_DENOM)
            .ok_or_else(|| XdmError::invalid_cast("xs:decimal overflow"))?;
        let mut scale = DECIMAL_DENOM / 10;
        for b in frac_part.bytes().take(DECIMAL_SCALE as usize) {
            value += i128::from(b - b'0') * scale;
            scale /= 10;
        }
        Ok(AtomicValue::Decimal(if neg { -value } else { value }))
    }

    /// Build an `xs:decimal` from an integer.
    pub fn decimal_from_i64(i: i64) -> AtomicValue {
        AtomicValue::Decimal(i128::from(i) * DECIMAL_DENOM)
    }

    /// Numeric value as `f64` (for Double/Integer/Decimal), else `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AtomicValue::Double(d) => Some(*d),
            AtomicValue::Integer(i) => Some(*i as f64),
            AtomicValue::Decimal(d) => Some(*d as f64 / DECIMAL_DENOM as f64),
            _ => None,
        }
    }

    /// The lexical (string) form per the XDM `fn:string` rules — also the
    /// representation stored in `varchar` indexes.
    pub fn lexical(&self) -> String {
        match self {
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) | AtomicValue::AnyUri(s) => {
                s.clone()
            }
            AtomicValue::Double(d) => format_double(*d),
            AtomicValue::Integer(i) => i.to_string(),
            AtomicValue::Decimal(d) => format_decimal(*d),
            AtomicValue::Boolean(b) => b.to_string(),
            AtomicValue::Date(d) => d.to_string(),
            AtomicValue::DateTime(dt) => dt.to_string(),
        }
    }
}

impl fmt::Display for AtomicValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.lexical())
    }
}

/// Format an `xs:double` per the XPath canonical-ish rules: integral values
/// without a trailing `.0`, specials as `NaN` / `INF`.
pub fn format_double(d: f64) -> String {
    if d.is_nan() {
        return "NaN".to_string();
    }
    if d.is_infinite() {
        return if d > 0.0 { "INF".into() } else { "-INF".into() };
    }
    if d == d.trunc() && d.abs() < 1e18 {
        return format!("{}", d as i64);
    }
    let s = format!("{d}");
    s
}

/// Format a scaled decimal, trimming trailing fractional zeroes.
pub fn format_decimal(scaled: i128) -> String {
    let neg = scaled < 0;
    let abs = scaled.unsigned_abs();
    let int = abs / DECIMAL_DENOM as u128;
    let frac = abs % DECIMAL_DENOM as u128;
    let mut s = if neg { format!("-{int}") } else { int.to_string() };
    if frac != 0 {
        let mut f = format!("{frac:06}");
        while f.ends_with('0') {
            f.pop();
        }
        s.push('.');
        s.push_str(&f);
    }
    s
}

/// Compare two decimals (already same scale).
pub fn cmp_decimal(a: i128, b: i128) -> Ordering {
    a.cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_parse_and_format() {
        let v = AtomicValue::decimal_from_str("99.50").unwrap();
        assert_eq!(v.lexical(), "99.5");
        assert_eq!(AtomicValue::decimal_from_str("-3.140000").unwrap().lexical(), "-3.14");
        assert_eq!(AtomicValue::decimal_from_str("100").unwrap().lexical(), "100");
        assert_eq!(AtomicValue::decimal_from_str(".5").unwrap().lexical(), "0.5");
        assert_eq!(AtomicValue::decimal_from_str("+2.").unwrap().lexical(), "2");
    }

    #[test]
    fn decimal_rejects_garbage() {
        assert!(AtomicValue::decimal_from_str("20 USD").is_err());
        assert!(AtomicValue::decimal_from_str("").is_err());
        assert!(AtomicValue::decimal_from_str(".").is_err());
        assert!(AtomicValue::decimal_from_str("1e3").is_err());
    }

    #[test]
    fn decimal_truncates_excess_fraction() {
        let v = AtomicValue::decimal_from_str("1.23456789").unwrap();
        assert_eq!(v.lexical(), "1.234567");
    }

    #[test]
    fn double_formatting() {
        assert_eq!(format_double(100.0), "100");
        assert_eq!(format_double(99.5), "99.5");
        assert_eq!(format_double(-0.5), "-0.5");
        assert_eq!(format_double(f64::NAN), "NaN");
        assert_eq!(format_double(f64::INFINITY), "INF");
        assert_eq!(format_double(f64::NEG_INFINITY), "-INF");
    }

    #[test]
    fn typed_equality_is_typed() {
        assert_ne!(AtomicValue::Integer(5), AtomicValue::Double(5.0));
        assert_ne!(
            AtomicValue::String("5".into()),
            AtomicValue::UntypedAtomic("5".into())
        );
    }

    #[test]
    fn numeric_detection() {
        assert!(AtomicType::Double.is_numeric());
        assert!(AtomicType::Integer.is_numeric());
        assert!(AtomicType::Decimal.is_numeric());
        assert!(!AtomicType::String.is_numeric());
        assert!(!AtomicType::UntypedAtomic.is_numeric());
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(AtomicValue::Integer(7).as_f64(), Some(7.0));
        assert_eq!(AtomicValue::decimal_from_str("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(AtomicValue::String("x".into()).as_f64(), None);
    }

    #[test]
    fn large_integer_double_rounding_divergence() {
        // Section 3.6 case 2 of the paper: large longs collide as doubles.
        let a: i64 = 9_007_199_254_740_993; // 2^53 + 1
        let b: i64 = 9_007_199_254_740_992; // 2^53
        assert_ne!(a, b);
        assert_eq!(a as f64, b as f64); // rounding collision
    }
}
