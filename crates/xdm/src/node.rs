//! Nodes, documents, node identity and document order.
//!
//! Documents are immutable arena-allocated trees: a [`Document`] owns a
//! `Vec<NodeData>` and node references are indices ([`NodeId`]) into that
//! arena, assigned in **document order** (pre-order, attributes directly
//! after their owning element and before its children, per XDM). This makes
//! document-order comparison and descendant iteration O(1)/O(k) range
//! operations.
//!
//! **Node identity** is the pair `(DocId, NodeId)`. `DocId`s come from a
//! process-wide atomic counter, so every *constructed* tree — including
//! copies of existing nodes made by element constructors — gets identities
//! distinct from every other tree. This is exactly the property Section 3.6
//! of the paper builds on: `<e>5</e> is <e>5</e>` is `false`, and a naive
//! rewrite that eliminates construction changes the meaning of identity-
//! sensitive operators like `except`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::atomic::{AtomicType, AtomicValue};
use crate::cast;
use crate::error::{XdmError, XdmResult};
use crate::qname::ExpandedName;

/// Process-unique document identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DocId(pub u64);

static NEXT_DOC_ID: AtomicU64 = AtomicU64::new(1);

impl DocId {
    /// Allocate a fresh, never-before-used document id.
    pub fn fresh() -> DocId {
        DocId(NEXT_DOC_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// Index of a node within its document's arena. Assigned in document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// The seven XDM node kinds (namespace nodes are not modelled; in-scope
/// namespaces are resolved at parse time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// Document node — the root of a parsed document.
    Document,
    /// Element node.
    Element,
    /// Attribute node.
    Attribute,
    /// Text node.
    Text,
    /// Comment node.
    Comment,
    /// Processing-instruction node.
    ProcessingInstruction,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Document => "document-node()",
            NodeKind::Element => "element()",
            NodeKind::Attribute => "attribute()",
            NodeKind::Text => "text()",
            NodeKind::Comment => "comment()",
            NodeKind::ProcessingInstruction => "processing-instruction()",
        };
        f.write_str(s)
    }
}

/// Type annotation of a node, set by (optional) schema validation.
///
/// Unvalidated elements are `xdt:untyped` and unvalidated attributes are
/// `xdt:untypedAtomic`; a mini-validator (in the workload crate) can stamp
/// `Atomic` annotations to model the paper's per-document validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeAnnotation {
    /// `xdt:untyped` — unvalidated element.
    Untyped,
    /// `xdt:untypedAtomic` — unvalidated attribute (or text content).
    UntypedAtomic,
    /// A concrete simple type from validation, e.g. `xs:double`.
    Atomic(AtomicType),
}

/// Node payload stored in the document arena.
#[derive(Debug, Clone)]
pub struct NodeData {
    /// Node kind.
    pub kind: NodeKind,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Element/attribute name; PI target is stored as a no-namespace name.
    pub name: Option<ExpandedName>,
    /// Text/comment/PI content or attribute value.
    pub value: Option<String>,
    /// Child nodes in document order (document and element nodes).
    pub children: Vec<NodeId>,
    /// Attribute nodes (element nodes only).
    pub attributes: Vec<NodeId>,
    /// Last NodeId (inclusive) belonging to this node's subtree; equals the
    /// node's own id for leaves. Enables range-based descendant iteration.
    pub subtree_end: NodeId,
    /// Validation annotation.
    pub annotation: TypeAnnotation,
}

/// An immutable XML tree. Roots are usually document nodes, but constructed
/// trees are rooted by element nodes (Section 3.5 of the paper relies on the
/// difference).
#[derive(Debug)]
pub struct Document {
    /// Process-unique identity of this tree.
    pub id: DocId,
    /// Arena of nodes in document order; index 0 is the root.
    pub nodes: Vec<NodeData>,
}

impl Document {
    /// The root node of this tree.
    pub fn root(self: &Arc<Self>) -> NodeHandle {
        NodeHandle { doc: Arc::clone(self), id: NodeId(0) }
    }

    /// Borrow a node's payload.
    pub fn node(&self, id: NodeId) -> &NodeData {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tree is empty (never the case for built documents).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A reference-counted handle to one node of one document.
///
/// Equality and hashing follow **node identity** (`(DocId, NodeId)`);
/// ordering follows **document order** with an arbitrary-but-stable order
/// across documents (by `DocId`), as XDM permits.
#[derive(Clone)]
pub struct NodeHandle {
    /// The owning tree.
    pub doc: Arc<Document>,
    /// Position within the tree.
    pub id: NodeId,
}

impl PartialEq for NodeHandle {
    fn eq(&self, other: &Self) -> bool {
        self.doc.id == other.doc.id && self.id == other.id
    }
}
impl Eq for NodeHandle {}

impl PartialOrd for NodeHandle {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NodeHandle {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.doc.id, self.id).cmp(&(other.doc.id, other.id))
    }
}

impl std::hash::Hash for NodeHandle {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.doc.id.hash(state);
        self.id.hash(state);
    }
}

impl fmt::Debug for NodeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeHandle(doc={}, node={}", self.doc.id.0, self.id.0)?;
        if let Some(name) = self.name() {
            write!(f, ", {} {}", self.kind(), name)?;
        } else {
            write!(f, ", {}", self.kind())?;
        }
        f.write_str(")")
    }
}

impl NodeHandle {
    fn data(&self) -> &NodeData {
        self.doc.node(self.id)
    }

    /// Handle to another node of the same document.
    pub fn sibling_handle(&self, id: NodeId) -> NodeHandle {
        NodeHandle { doc: Arc::clone(&self.doc), id }
    }

    /// This node's kind.
    pub fn kind(&self) -> NodeKind {
        self.data().kind
    }

    /// This node's expanded name, if it has one.
    pub fn name(&self) -> Option<&ExpandedName> {
        self.data().name.as_ref()
    }

    /// Validation annotation.
    pub fn annotation(&self) -> TypeAnnotation {
        self.data().annotation
    }

    /// Parent node, if any.
    pub fn parent(&self) -> Option<NodeHandle> {
        self.data().parent.map(|p| self.sibling_handle(p))
    }

    /// Child nodes (attributes excluded), in document order.
    pub fn children(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        self.data().children.iter().map(move |&c| self.sibling_handle(c))
    }

    /// Attribute nodes.
    pub fn attributes(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        self.data().attributes.iter().map(move |&a| self.sibling_handle(a))
    }

    /// All descendants in document order, attributes excluded (the XPath
    /// `descendant` axis).
    pub fn descendants(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        let start = self.id.0 + 1;
        let end = self.data().subtree_end.0;
        (start..=end)
            .filter(move |&i| self.doc.node(NodeId(i)).kind != NodeKind::Attribute)
            .map(move |i| self.sibling_handle(NodeId(i)))
    }

    /// All descendant *or self* nodes in document order, attributes excluded.
    pub fn descendants_or_self(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        std::iter::once(self.clone()).chain(self.descendants())
    }

    /// True if `self` is an ancestor of `other` (proper ancestor).
    pub fn is_ancestor_of(&self, other: &NodeHandle) -> bool {
        self.doc.id == other.doc.id
            && self.id < other.id
            && other.id <= self.data().subtree_end
    }

    /// The root of this node's tree (`fn:root`): a document node for parsed
    /// documents, an element node for constructed trees.
    pub fn tree_root(&self) -> NodeHandle {
        self.sibling_handle(NodeId(0))
    }

    /// The **string value** per XDM: for elements and documents, the
    /// concatenation of all descendant text nodes; for attributes and text,
    /// the content itself.
    pub fn string_value(&self) -> String {
        match self.kind() {
            NodeKind::Document | NodeKind::Element => {
                let mut out = String::new();
                let start = self.id.0;
                let end = self.data().subtree_end.0;
                for i in start..=end {
                    let d = self.doc.node(NodeId(i));
                    if d.kind == NodeKind::Text {
                        if let Some(v) = &d.value {
                            out.push_str(v);
                        }
                    }
                }
                out
            }
            NodeKind::Attribute
            | NodeKind::Text
            | NodeKind::Comment
            | NodeKind::ProcessingInstruction => self.data().value.clone().unwrap_or_default(),
        }
    }

    /// The **typed value** per XDM (`fn:data` on a single node):
    ///
    /// * untyped elements / attributes yield `xdt:untypedAtomic` carrying the
    ///   string value — the behaviour that drives the paper's Section 3.1
    ///   (untyped data compared under string or double rules depending on
    ///   the other operand) and Section 3.6 case 1;
    /// * validated nodes yield their annotation type (the cast can fail,
    ///   surfacing `FORG0001`);
    /// * comments and PIs yield `xs:string`.
    pub fn typed_value(&self) -> XdmResult<AtomicValue> {
        match self.kind() {
            NodeKind::Document | NodeKind::Text => {
                Ok(AtomicValue::UntypedAtomic(self.string_value()))
            }
            NodeKind::Comment | NodeKind::ProcessingInstruction => {
                Ok(AtomicValue::String(self.string_value()))
            }
            NodeKind::Element | NodeKind::Attribute => match self.annotation() {
                TypeAnnotation::Untyped | TypeAnnotation::UntypedAtomic => {
                    Ok(AtomicValue::UntypedAtomic(self.string_value()))
                }
                TypeAnnotation::Atomic(t) => {
                    cast::cast_str(&self.string_value(), t).map_err(|e| {
                        XdmError::new(
                            e.code,
                            format!("typed value of {:?} invalid for {}: {}", self, t, e.message),
                        )
                    })
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocumentBuilder;
    use crate::qname::ExpandedName;

    fn sample() -> Arc<Document> {
        // <order date="2001-01-01"><lineitem price="99.50">x</lineitem><lineitem/></order>
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("order"));
        b.attribute(ExpandedName::local("date"), "2001-01-01");
        b.start_element(ExpandedName::local("lineitem"));
        b.attribute(ExpandedName::local("price"), "99.50");
        b.text("x");
        b.end_element();
        b.start_element(ExpandedName::local("lineitem"));
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn document_order_is_preorder_with_attributes_first() {
        let doc = sample();
        let root = doc.root();
        assert_eq!(root.kind(), NodeKind::Document);
        let order = root.children().next().unwrap();
        assert_eq!(order.name().unwrap().local.as_ref(), "order");
        let date_attr = order.attributes().next().unwrap();
        let li = order.children().next().unwrap();
        // attribute precedes first child in document order
        assert!(order < date_attr);
        assert!(date_attr < li);
    }

    #[test]
    fn descendants_exclude_attributes() {
        let doc = sample();
        let root = doc.root();
        let kinds: Vec<NodeKind> = root.descendants().map(|n| n.kind()).collect();
        assert!(!kinds.contains(&NodeKind::Attribute));
        // order, lineitem, text, lineitem
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let doc = sample();
        let order = doc.root().children().next().unwrap();
        assert_eq!(order.string_value(), "x");
        let date = order.attributes().next().unwrap();
        assert_eq!(date.string_value(), "2001-01-01");
    }

    #[test]
    fn typed_value_of_untyped_is_untyped_atomic() {
        let doc = sample();
        let order = doc.root().children().next().unwrap();
        let li = order.children().next().unwrap();
        let price = li.attributes().next().unwrap();
        assert_eq!(
            price.typed_value().unwrap(),
            AtomicValue::UntypedAtomic("99.50".into())
        );
    }

    #[test]
    fn node_identity_distinguishes_trees() {
        let a = sample();
        let b = sample();
        // Same shape, distinct identity — the Section 3.6 property.
        assert_ne!(a.root(), b.root());
        assert_eq!(a.root(), a.root());
    }

    #[test]
    fn ancestor_check_via_subtree_ranges() {
        let doc = sample();
        let root = doc.root();
        let order = root.children().next().unwrap();
        let li = order.children().next().unwrap();
        assert!(root.is_ancestor_of(&li));
        assert!(order.is_ancestor_of(&li));
        assert!(!li.is_ancestor_of(&order));
        assert!(!li.is_ancestor_of(&li));
    }

    #[test]
    fn tree_root_returns_node_zero() {
        let doc = sample();
        let order = doc.root().children().next().unwrap();
        let li = order.children().next().unwrap();
        assert_eq!(li.tree_root(), doc.root());
        assert_eq!(li.tree_root().kind(), NodeKind::Document);
    }
}
