//! Minimal `xs:date` / `xs:dateTime` values.
//!
//! The paper's index DDL admits `date` and `timestamp` index types
//! (Section 2.1), so the engine needs real date values with a total order
//! and lexical parsing — but nothing more (no timezone arithmetic, no
//! durations). Implemented from scratch to keep the dependency set to the
//! allowed list.

use std::fmt;

use crate::error::{XdmError, XdmResult};

/// An `xs:date`: proleptic Gregorian calendar date, no timezone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Astronomical year (year 0 allowed, negative = BCE).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31, validated against the month.
    pub day: u8,
}

/// An `xs:dateTime`: a [`Date`] plus time-of-day with millisecond precision,
/// no timezone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DateTime {
    /// Calendar date component.
    pub date: Date,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59 (leap seconds not modelled).
    pub second: u8,
    /// Milliseconds 0–999.
    pub millis: u16,
}

/// Days in `month` of `year`.
fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

impl Date {
    /// Construct a validated date.
    pub fn new(year: i32, month: u8, day: u8) -> XdmResult<Self> {
        if !(1..=12).contains(&month) {
            return Err(XdmError::invalid_cast(format!("month {month} out of range")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(XdmError::invalid_cast(format!(
                "day {day} out of range for {year:04}-{month:02}"
            )));
        }
        Ok(Date { year, month, day })
    }

    /// Parse the `xs:date` lexical form `YYYY-MM-DD` (optional leading `-`).
    pub fn parse(s: &str) -> XdmResult<Self> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let parts: Vec<&str> = body.split('-').collect();
        if parts.len() != 3 || parts[0].len() < 4 || parts[1].len() != 2 || parts[2].len() != 2 {
            return Err(XdmError::invalid_cast(format!("invalid xs:date literal {s:?}")));
        }
        let year: i32 = parts[0]
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("invalid year in {s:?}")))?;
        let month: u8 = parts[1]
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("invalid month in {s:?}")))?;
        let day: u8 = parts[2]
            .parse()
            .map_err(|_| XdmError::invalid_cast(format!("invalid day in {s:?}")))?;
        Date::new(if neg { -year } else { year }, month, day)
    }

    /// Days since 1970-01-01 (can be negative). Used for ordered index keys.
    pub fn days_since_epoch(&self) -> i64 {
        // Rata Die style computation via the civil-from-days inverse
        // (Howard Hinnant's algorithm, public domain).
        let y = i64::from(self.year) - i64::from(self.month <= 2);
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let mp = (i64::from(self.month) + 9) % 12; // [0, 11]
        let doy = (153 * mp + 2) / 5 + i64::from(self.day) - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.year < 0 {
            write!(f, "-{:04}-{:02}-{:02}", -self.year, self.month, self.day)
        } else {
            write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
        }
    }
}

impl DateTime {
    /// Construct a validated dateTime.
    pub fn new(date: Date, hour: u8, minute: u8, second: u8, millis: u16) -> XdmResult<Self> {
        if hour > 23 || minute > 59 || second > 59 || millis > 999 {
            return Err(XdmError::invalid_cast(format!(
                "time component out of range: {hour:02}:{minute:02}:{second:02}.{millis:03}"
            )));
        }
        Ok(DateTime { date, hour, minute, second, millis })
    }

    /// Parse the `xs:dateTime` lexical form `YYYY-MM-DDThh:mm:ss(.fff)?`.
    /// A trailing `Z` is accepted and ignored (all values are naive).
    pub fn parse(s: &str) -> XdmResult<Self> {
        let s = s.trim().strip_suffix('Z').unwrap_or_else(|| s.trim());
        let (date_part, time_part) = s
            .split_once('T')
            .ok_or_else(|| XdmError::invalid_cast(format!("invalid xs:dateTime literal {s:?}")))?;
        let date = Date::parse(date_part)?;
        let (hms, frac) = match time_part.split_once('.') {
            Some((h, f)) => (h, Some(f)),
            None => (time_part, None),
        };
        let fields: Vec<&str> = hms.split(':').collect();
        if fields.len() != 3 {
            return Err(XdmError::invalid_cast(format!("invalid time in {s:?}")));
        }
        let parse_u8 = |t: &str| -> XdmResult<u8> {
            if t.len() != 2 {
                return Err(XdmError::invalid_cast(format!("invalid time field {t:?}")));
            }
            t.parse().map_err(|_| XdmError::invalid_cast(format!("invalid time field {t:?}")))
        };
        let millis = match frac {
            None => 0u16,
            Some(f) => {
                if f.is_empty() || f.len() > 9 || !f.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(XdmError::invalid_cast(format!("invalid fraction in {s:?}")));
                }
                let padded = format!("{f:0<3}");
                padded[..3].parse().map_err(|_| {
                    XdmError::invalid_cast(format!("invalid fraction in {s:?}"))
                })?
            }
        };
        DateTime::new(date, parse_u8(fields[0])?, parse_u8(fields[1])?, parse_u8(fields[2])?, millis)
    }

    /// Milliseconds since 1970-01-01T00:00:00. Used for ordered index keys.
    pub fn millis_since_epoch(&self) -> i64 {
        self.date.days_since_epoch() * 86_400_000
            + i64::from(self.hour) * 3_600_000
            + i64::from(self.minute) * 60_000
            + i64::from(self.second) * 1_000
            + i64::from(self.millis)
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}T{:02}:{:02}:{:02}", self.date, self.hour, self.minute, self.second)?;
        if self.millis != 0 {
            write!(f, ".{:03}", self.millis)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["2001-01-01", "2026-07-06", "0001-12-31", "2000-02-29"] {
            assert_eq!(Date::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_bad_dates() {
        assert!(Date::parse("2001-13-01").is_err());
        assert!(Date::parse("2001-02-29").is_err()); // not a leap year
        assert!(Date::parse("2001-2-9").is_err()); // unpadded
        assert!(Date::parse("garbage").is_err());
        assert!(Date::parse("2001-00-10").is_err());
        assert!(Date::parse("2001-01-00").is_err());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2004));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2001));
    }

    #[test]
    fn ordering_matches_chronology() {
        let a = Date::parse("2001-01-01").unwrap();
        let b = Date::parse("2001-01-02").unwrap();
        let c = Date::parse("2002-01-01").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn epoch_days_known_values() {
        assert_eq!(Date::parse("1970-01-01").unwrap().days_since_epoch(), 0);
        assert_eq!(Date::parse("1970-01-02").unwrap().days_since_epoch(), 1);
        assert_eq!(Date::parse("1969-12-31").unwrap().days_since_epoch(), -1);
        assert_eq!(Date::parse("2000-03-01").unwrap().days_since_epoch(), 11_017);
    }

    #[test]
    fn datetime_parse_fraction_and_z() {
        let dt = DateTime::parse("2001-01-01T12:30:45.5Z").unwrap();
        assert_eq!(dt.millis, 500);
        assert_eq!(dt.to_string(), "2001-01-01T12:30:45.500");
        let dt2 = DateTime::parse("2001-01-01T12:30:45").unwrap();
        assert_eq!(dt2.millis, 0);
        assert!(dt2 < dt);
    }

    #[test]
    fn datetime_rejects_bad_time() {
        assert!(DateTime::parse("2001-01-01T24:00:00").is_err());
        assert!(DateTime::parse("2001-01-01T12:60:00").is_err());
        assert!(DateTime::parse("2001-01-01").is_err());
        assert!(DateTime::parse("2001-01-01T1:2:3").is_err());
    }

    #[test]
    fn epoch_millis_monotone_with_ordering() {
        let xs = [
            DateTime::parse("1969-12-31T23:59:59.999").unwrap(),
            DateTime::parse("1970-01-01T00:00:00").unwrap(),
            DateTime::parse("1970-01-01T00:00:00.001").unwrap(),
            DateTime::parse("2006-09-12T09:00:00").unwrap(),
        ];
        for w in xs.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].millis_since_epoch() < w[1].millis_since_epoch());
        }
        assert_eq!(xs[1].millis_since_epoch(), 0);
        assert_eq!(xs[0].millis_since_epoch(), -1);
    }
}
