//! Error codes shared across the engine.
//!
//! The codes mirror the W3C XQuery error namespaces (`err:XPTY0004` and
//! friends) because the paper's pitfalls are largely about *which* queries
//! raise type errors and which silently return unexpected results. Tests in
//! the integration suite assert on specific codes (e.g. the leading-`/` type
//! error of Query 25, or the XMLCast singleton error of Query 14).

use std::fmt;

/// W3C-style error codes raised by the data model and evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCode {
    /// `err:XPTY0004` — type error: a value does not match a required type
    /// (non-singleton in a value comparison, comparing incomparable atomics,
    /// `fn:root` treat-as-document-node failure, ...).
    XPTY0004,
    /// `err:FORG0001` — invalid value for cast/constructor.
    FORG0001,
    /// `err:FOAR0001` — division by zero.
    FOAR0001,
    /// `err:XPDY0002` — dynamic context component (context item) is absent.
    XPDY0002,
    /// `err:XQDY0025` — duplicate attribute name in a constructed element
    /// (Section 3.6, divergence case 4).
    XQDY0025,
    /// `err:XPST0003` — static error: grammar violation.
    XPST0003,
    /// `err:XPST0008` — undefined variable or name.
    XPST0008,
    /// `err:XPST0081` — unbound namespace prefix.
    XPST0081,
    /// `err:FOCA0002` — invalid lexical value (e.g. QName content cast).
    FOCA0002,
    /// `err:FODT0001` — overflow in date/time arithmetic.
    FODT0001,
    /// SQL-side error: cast target length exceeded (e.g. `VARCHAR(13)` in
    /// Query 14 of the paper).
    SqlLength,
    /// SQL-side error: XMLCast applied to a non-singleton sequence.
    SqlCardinality,
    /// SQL-side type error (incomparable SQL types).
    SqlType,
    /// A resource budget (deadline, step count, index entries, result
    /// cardinality, document size) was exceeded during evaluation.
    ResourceExhausted,
    /// Evaluation was cancelled via the shared cancellation token.
    Cancelled,
    /// The storage layer failed to produce a document (injected or real
    /// fault). Unlike an index fault this is not recoverable by rescanning:
    /// the data itself is unavailable.
    StorageFault,
    /// A parser limit was exceeded (nesting depth, document size,
    /// attribute size) — input is rejected rather than risking a stack
    /// overflow or unbounded allocation.
    ParseLimit,
    /// The write-ahead log is corrupt beyond the self-healing torn-tail
    /// case: a mid-log CRC mismatch, an undecodable record, or a sequence
    /// gap. The message names the offending segment file; the segment is
    /// quarantined rather than silently skipped.
    WalCorrupt,
    /// A storage page is corrupt beyond the self-healing torn-write case:
    /// a CRC or self-identification mismatch on a page the durability
    /// protocol froze at a checkpoint (pages written after the newest
    /// checkpoint are covered by the WAL suffix and may be discarded
    /// instead). The message names the page.
    PageCorrupt,
    /// Internal invariant violation — a bug in the engine, never expected.
    Internal,
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::XPTY0004 => "err:XPTY0004",
            ErrorCode::FORG0001 => "err:FORG0001",
            ErrorCode::FOAR0001 => "err:FOAR0001",
            ErrorCode::XPDY0002 => "err:XPDY0002",
            ErrorCode::XQDY0025 => "err:XQDY0025",
            ErrorCode::XPST0003 => "err:XPST0003",
            ErrorCode::XPST0008 => "err:XPST0008",
            ErrorCode::XPST0081 => "err:XPST0081",
            ErrorCode::FOCA0002 => "err:FOCA0002",
            ErrorCode::FODT0001 => "err:FODT0001",
            ErrorCode::ResourceExhausted => "xqdb:RESOURCE",
            ErrorCode::Cancelled => "xqdb:CANCELLED",
            ErrorCode::StorageFault => "xqdb:STORAGE",
            ErrorCode::ParseLimit => "xqdb:PARSELIMIT",
            ErrorCode::WalCorrupt => "xqdb:WALCORRUPT",
            ErrorCode::PageCorrupt => "xqdb:PAGECORRUPT",
            ErrorCode::SqlLength => "sql:LENGTH",
            ErrorCode::SqlCardinality => "sql:CARDINALITY",
            ErrorCode::SqlType => "sql:TYPE",
            ErrorCode::Internal => "xqdb:INTERNAL",
        };
        f.write_str(s)
    }
}

/// An error raised while building or operating on XDM values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XdmError {
    /// Stable machine-checkable code.
    pub code: ErrorCode,
    /// Human-readable context.
    pub message: String,
}

impl XdmError {
    /// Create an error with the given code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        XdmError { code, message: message.into() }
    }

    /// Shorthand for the ubiquitous `XPTY0004` type error.
    pub fn type_error(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::XPTY0004, message)
    }

    /// Shorthand for the `FORG0001` invalid-cast error.
    pub fn invalid_cast(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::FORG0001, message)
    }

    /// Shorthand for a budget-exceeded error.
    pub fn resource_exhausted(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::ResourceExhausted, message)
    }

    /// Shorthand for a cancellation error.
    pub fn cancelled() -> Self {
        Self::new(ErrorCode::Cancelled, "evaluation cancelled")
    }

    /// Shorthand for a storage-layer fault.
    pub fn storage_fault(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::StorageFault, message)
    }

    /// Shorthand for a parser-limit rejection.
    pub fn parse_limit(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::ParseLimit, message)
    }

    /// Shorthand for a write-ahead-log corruption error. The message should
    /// name the segment file so operators know what was quarantined.
    pub fn wal_corrupt(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::WalCorrupt, message)
    }

    /// Shorthand for a corrupt-page error. The message should name the
    /// page id and what failed (CRC, magic, self-identification).
    pub fn page_corrupt(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::PageCorrupt, message)
    }

    /// Shorthand for an internal invariant violation (replaces `panic!` /
    /// `unreachable!` in non-test code: a bug report, not a crash).
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, message)
    }
}

impl fmt::Display for XdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for XdmError {}

/// Convenient result alias used across the XDM crate.
pub type XdmResult<T> = Result<T, XdmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_message() {
        let e = XdmError::type_error("value comparison on a sequence of 2 items");
        assert_eq!(e.to_string(), "err:XPTY0004: value comparison on a sequence of 2 items");
    }

    #[test]
    fn codes_are_distinguishable() {
        assert_ne!(ErrorCode::XPTY0004, ErrorCode::FORG0001);
        assert_eq!(ErrorCode::SqlLength.to_string(), "sql:LENGTH");
    }
}
