//! The casting table.
//!
//! Two consumers share these rules:
//!
//! * the query evaluator (`xs:double(.)`-style constructor functions and the
//!   implicit casts in comparisons), and
//! * the **tolerant index key extraction** of Section 2.1: "an index entry
//!   is created for each node that matches the path expression *and is
//!   convertible to the index data type*; if it is not, the node is simply
//!   not added to the index". The index crate calls [`cast`] and maps `Err`
//!   to "skip this node", never to "reject the document".

use crate::atomic::{AtomicType, AtomicValue, DECIMAL_DENOM};
use crate::datetime::{Date, DateTime};
use crate::error::{XdmError, XdmResult};

/// Cast an atomic value to `target` per the XQuery casting rules (subset).
pub fn cast(value: &AtomicValue, target: AtomicType) -> XdmResult<AtomicValue> {
    if value.atomic_type() == target {
        return Ok(value.clone());
    }
    match target {
        AtomicType::String => Ok(AtomicValue::String(value.lexical())),
        AtomicType::UntypedAtomic => Ok(AtomicValue::UntypedAtomic(value.lexical())),
        AtomicType::AnyUri => match value {
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => {
                Ok(AtomicValue::AnyUri(s.trim().to_string()))
            }
            _ => Err(cast_err(value, target)),
        },
        AtomicType::Double => match value {
            AtomicValue::Integer(i) => Ok(AtomicValue::Double(*i as f64)),
            AtomicValue::Decimal(_) => value
                .as_f64()
                .map(AtomicValue::Double)
                .ok_or_else(|| cast_err(value, target)),
            AtomicValue::Boolean(b) => Ok(AtomicValue::Double(if *b { 1.0 } else { 0.0 })),
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => parse_double(s),
            _ => Err(cast_err(value, target)),
        },
        AtomicType::Integer => match value {
            AtomicValue::Double(d) => {
                if d.is_finite() && d.trunc() >= i64::MIN as f64 && d.trunc() <= i64::MAX as f64 {
                    Ok(AtomicValue::Integer(d.trunc() as i64))
                } else {
                    Err(cast_err(value, target))
                }
            }
            AtomicValue::Decimal(d) => {
                let q = d / DECIMAL_DENOM;
                i64::try_from(q)
                    .map(AtomicValue::Integer)
                    .map_err(|_| cast_err(value, target))
            }
            AtomicValue::Boolean(b) => Ok(AtomicValue::Integer(i64::from(*b))),
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => s
                .trim()
                .parse::<i64>()
                .map(AtomicValue::Integer)
                .map_err(|_| XdmError::invalid_cast(format!("cannot cast {s:?} to xs:integer"))),
            _ => Err(cast_err(value, target)),
        },
        AtomicType::Decimal => match value {
            AtomicValue::Double(d) => {
                if !d.is_finite() {
                    return Err(cast_err(value, target));
                }
                let scaled = d * DECIMAL_DENOM as f64;
                if scaled.abs() > i128::MAX as f64 {
                    return Err(cast_err(value, target));
                }
                Ok(AtomicValue::Decimal(scaled.round() as i128))
            }
            AtomicValue::Integer(i) => Ok(AtomicValue::decimal_from_i64(*i)),
            AtomicValue::Boolean(b) => Ok(AtomicValue::decimal_from_i64(i64::from(*b))),
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => {
                AtomicValue::decimal_from_str(s)
            }
            _ => Err(cast_err(value, target)),
        },
        AtomicType::Boolean => match value {
            AtomicValue::Double(d) => Ok(AtomicValue::Boolean(*d != 0.0 && !d.is_nan())),
            AtomicValue::Integer(i) => Ok(AtomicValue::Boolean(*i != 0)),
            AtomicValue::Decimal(d) => Ok(AtomicValue::Boolean(*d != 0)),
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => match s.trim() {
                "true" | "1" => Ok(AtomicValue::Boolean(true)),
                "false" | "0" => Ok(AtomicValue::Boolean(false)),
                _ => Err(XdmError::invalid_cast(format!("cannot cast {s:?} to xs:boolean"))),
            },
            _ => Err(cast_err(value, target)),
        },
        AtomicType::Date => match value {
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => {
                Date::parse(s).map(AtomicValue::Date)
            }
            AtomicValue::DateTime(dt) => Ok(AtomicValue::Date(dt.date)),
            _ => Err(cast_err(value, target)),
        },
        AtomicType::DateTime => match value {
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) => {
                DateTime::parse(s).map(AtomicValue::DateTime)
            }
            AtomicValue::Date(d) => Ok(AtomicValue::DateTime(DateTime {
                date: *d,
                hour: 0,
                minute: 0,
                second: 0,
                millis: 0,
            })),
            _ => Err(cast_err(value, target)),
        },
    }
}

/// Cast from a lexical string (used for node typed values and index keys).
pub fn cast_str(s: &str, target: AtomicType) -> XdmResult<AtomicValue> {
    cast(&AtomicValue::UntypedAtomic(s.to_string()), target)
}

/// True if a cast of `value` to `target` would succeed, without allocating
/// the result. Index maintenance uses this for its tolerant filter.
pub fn castable(value: &AtomicValue, target: AtomicType) -> bool {
    cast(value, target).is_ok()
}

fn cast_err(value: &AtomicValue, target: AtomicType) -> XdmError {
    XdmError::invalid_cast(format!(
        "cannot cast {} value {:?} to {}",
        value.atomic_type(),
        value.lexical(),
        target
    ))
}

/// Parse the `xs:double` lexical space (decimal and scientific notation,
/// `INF`, `-INF`, `NaN`).
fn parse_double(s: &str) -> XdmResult<AtomicValue> {
    let t = s.trim();
    let d = match t {
        "INF" | "+INF" => f64::INFINITY,
        "-INF" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        _ => {
            // Rust's f64 parser accepts "inf"/"infinity"/"nan" spellings that
            // are NOT in the XML Schema lexical space; reject those.
            if t.is_empty()
                || !t
                    .bytes()
                    .all(|b| b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E'))
            {
                return Err(XdmError::invalid_cast(format!("cannot cast {s:?} to xs:double")));
            }
            t.parse::<f64>()
                .map_err(|_| XdmError::invalid_cast(format!("cannot cast {s:?} to xs:double")))?
        }
    };
    Ok(AtomicValue::Double(d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anything_casts_to_string() {
        for v in [
            AtomicValue::Double(99.5),
            AtomicValue::Integer(100),
            AtomicValue::Boolean(true),
            AtomicValue::Date(Date::parse("2001-01-01").unwrap()),
            AtomicValue::UntypedAtomic("20 USD".into()),
        ] {
            assert!(cast(&v, AtomicType::String).is_ok(), "{v:?}");
        }
    }

    #[test]
    fn usd_string_is_not_a_double() {
        // The paper's Section 3.1 example: "20 USD" satisfies a string
        // predicate but can never appear in a double index.
        assert!(cast_str("20 USD", AtomicType::Double).is_err());
        assert!(cast_str("99.50USD", AtomicType::Double).is_err());
        assert!(castable(&AtomicValue::UntypedAtomic("100".into()), AtomicType::Double));
    }

    #[test]
    fn scientific_notation_equals_plain() {
        // 1E3 = 1000 under numeric rules (the paper writes "10E3 = 1000",
        // an obvious slip) — the Section 3.1 argument for why a varchar
        // index cannot answer a numeric join.
        let a = cast_str("1E3", AtomicType::Double).unwrap();
        let b = cast_str("1000", AtomicType::Double).unwrap();
        assert_eq!(a, b);
        assert_ne!("1E3", "1000"); // ...but their strings differ
    }

    #[test]
    fn double_rejects_rust_only_spellings() {
        assert!(cast_str("inf", AtomicType::Double).is_err());
        assert!(cast_str("nan", AtomicType::Double).is_err());
        assert!(cast_str("Infinity", AtomicType::Double).is_err());
        assert!(cast_str("INF", AtomicType::Double).is_ok());
        assert!(cast_str("NaN", AtomicType::Double).is_ok());
    }

    #[test]
    fn date_casts() {
        let d = cast_str("2001-01-01", AtomicType::Date).unwrap();
        assert_eq!(d.lexical(), "2001-01-01");
        assert!(cast_str("January 1, 2001", AtomicType::Date).is_err());
        let dt = cast(&d, AtomicType::DateTime).unwrap();
        assert_eq!(dt.lexical(), "2001-01-01T00:00:00");
        let back = cast(&dt, AtomicType::Date).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn boolean_lexical_space() {
        assert_eq!(cast_str("true", AtomicType::Boolean).unwrap(), AtomicValue::Boolean(true));
        assert_eq!(cast_str("0", AtomicType::Boolean).unwrap(), AtomicValue::Boolean(false));
        assert!(cast_str("TRUE", AtomicType::Boolean).is_err());
    }

    #[test]
    fn integer_casts_truncate_doubles() {
        assert_eq!(
            cast(&AtomicValue::Double(3.9), AtomicType::Integer).unwrap(),
            AtomicValue::Integer(3)
        );
        assert_eq!(
            cast(&AtomicValue::Double(-3.9), AtomicType::Integer).unwrap(),
            AtomicValue::Integer(-3)
        );
        assert!(cast(&AtomicValue::Double(f64::NAN), AtomicType::Integer).is_err());
        assert!(cast(&AtomicValue::Double(1e30), AtomicType::Integer).is_err());
    }

    #[test]
    fn decimal_round_trips() {
        let d = cast_str("99.50", AtomicType::Decimal).unwrap();
        assert_eq!(d.lexical(), "99.5");
        let i = cast(&d, AtomicType::Integer).unwrap();
        assert_eq!(i, AtomicValue::Integer(99));
    }

    #[test]
    fn identity_cast_is_noop() {
        let v = AtomicValue::Double(1.5);
        assert_eq!(cast(&v, AtomicType::Double).unwrap(), v);
    }

    #[test]
    fn date_to_double_fails() {
        let d = cast_str("2001-01-01", AtomicType::Date).unwrap();
        assert!(cast(&d, AtomicType::Double).is_err());
        assert!(cast(&d, AtomicType::Integer).is_err());
    }
}
