//! XQuery comparison semantics.
//!
//! The paper leans on the split between **general comparisons** (`=`, `<`,
//! `>`, ...) and **value comparisons** (`eq`, `lt`, `gt`, ...):
//!
//! * general comparisons are *existential* — `lineitem/price > 100` is true
//!   if *any* price exceeds 100, which is why a pair of general range
//!   predicates is **not** a "between" (Section 3.10);
//! * value comparisons require singleton operands (else `err:XPTY0004`) and
//!   cast `xdt:untypedAtomic` operands to `xs:string`, while general
//!   comparisons cast untyped operands to the *other operand's* type
//!   (numeric → `xs:double`) — the root of the Section 3.1/3.6 divergences.

use std::cmp::Ordering;

use crate::atomic::{AtomicType, AtomicValue};
use crate::cast;
use crate::error::{XdmError, XdmResult};
use crate::sequence::Item;

/// The six comparison operators, shared by general and value forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=` / `eq`
    Eq,
    /// `!=` / `ne`
    Ne,
    /// `<` / `lt`
    Lt,
    /// `<=` / `le`
    Le,
    /// `>` / `gt`
    Gt,
    /// `>=` / `ge`
    Ge,
}

impl CompareOp {
    /// Evaluate the operator against an ordering. `None` (unordered, i.e.
    /// NaN involved) makes every operator false except `Ne`.
    pub fn test(self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (CompareOp::Ne, None) => true,
            (_, None) => false,
            (CompareOp::Eq, Some(o)) => o == Ordering::Equal,
            (CompareOp::Ne, Some(o)) => o != Ordering::Equal,
            (CompareOp::Lt, Some(o)) => o == Ordering::Less,
            (CompareOp::Le, Some(o)) => o != Ordering::Greater,
            (CompareOp::Gt, Some(o)) => o == Ordering::Greater,
            (CompareOp::Ge, Some(o)) => o != Ordering::Less,
        }
    }

    /// The mirrored operator (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// Lexical form of the general-comparison spelling.
    pub fn general_symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }

    /// Lexical form of the value-comparison spelling.
    pub fn value_keyword(self) -> &'static str {
        match self {
            CompareOp::Eq => "eq",
            CompareOp::Ne => "ne",
            CompareOp::Lt => "lt",
            CompareOp::Le => "le",
            CompareOp::Gt => "gt",
            CompareOp::Ge => "ge",
        }
    }
}

/// Compare two atomic values of *compatible* dynamic types.
///
/// Returns `Ok(None)` for unordered pairs (NaN) and `Err(XPTY0004)` for
/// incomparable types (e.g. `xs:string` vs `xs:double` — the reason the
/// paper's Query 3 with a quoted `"100"` cannot use a double index).
pub fn compare_typed(a: &AtomicValue, b: &AtomicValue) -> XdmResult<Option<Ordering>> {
    use AtomicValue::*;
    let err = || {
        Err(XdmError::type_error(format!(
            "cannot compare {} to {}",
            a.atomic_type(),
            b.atomic_type()
        )))
    };
    // Numeric promotion: double dominates, then decimal, then integer.
    if a.atomic_type().is_numeric() && b.atomic_type().is_numeric() {
        return Ok(match (a, b) {
            (Integer(x), Integer(y)) => Some(x.cmp(y)),
            (Decimal(x), Decimal(y)) => Some(x.cmp(y)),
            (Integer(_), Decimal(y)) => {
                let x = promote_decimal(a)?;
                Some(x.cmp(y))
            }
            (Decimal(x), Integer(_)) => {
                let y = promote_decimal(b)?;
                Some(x.cmp(&y))
            }
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                // Non-numeric operands reaching the numeric fallthrough
                // would be a dispatch bug: report "incomparable".
                _ => None,
            },
        });
    }
    match (a, b) {
        (String(x) | AnyUri(x), String(y) | AnyUri(y)) => Ok(Some(x.as_str().cmp(y))),
        (UntypedAtomic(x), UntypedAtomic(y)) => Ok(Some(x.as_str().cmp(y))),
        (Boolean(x), Boolean(y)) => Ok(Some(x.cmp(y))),
        (Date(x), Date(y)) => Ok(Some(x.cmp(y))),
        (DateTime(x), DateTime(y)) => Ok(Some(x.cmp(y))),
        _ => err(),
    }
}

fn promote_decimal(v: &AtomicValue) -> XdmResult<i128> {
    match cast::cast(v, AtomicType::Decimal)? {
        AtomicValue::Decimal(d) => Ok(d),
        other => Err(XdmError::new(
            crate::error::ErrorCode::Internal,
            format!("decimal cast produced {other:?}"),
        )),
    }
}

/// Resolve untypedAtomic operands for a **general** comparison pair, per
/// XQuery 3.5.2: untyped vs numeric → cast untyped to `xs:double`; untyped
/// vs untyped or string → treat untyped as `xs:string`; untyped vs anything
/// else → cast untyped to the other type.
fn resolve_general_pair(
    a: &AtomicValue,
    b: &AtomicValue,
) -> XdmResult<(AtomicValue, AtomicValue)> {
    let resolve_one = |u: &str, other: &AtomicValue| -> XdmResult<AtomicValue> {
        match other.atomic_type() {
            t if t.is_numeric() => cast::cast_str(u, AtomicType::Double),
            AtomicType::String | AtomicType::AnyUri | AtomicType::UntypedAtomic => {
                Ok(AtomicValue::String(u.to_string()))
            }
            t => cast::cast_str(u, t),
        }
    };
    match (a, b) {
        (AtomicValue::UntypedAtomic(x), AtomicValue::UntypedAtomic(y)) => Ok((
            AtomicValue::String(x.clone()),
            AtomicValue::String(y.clone()),
        )),
        (AtomicValue::UntypedAtomic(x), _) => Ok((resolve_one(x, b)?, b.clone())),
        (_, AtomicValue::UntypedAtomic(y)) => Ok((a.clone(), resolve_one(y, a)?)),
        _ => Ok((a.clone(), b.clone())),
    }
}

/// A single **atomic pair** under general-comparison rules.
pub fn general_compare_pair(a: &AtomicValue, b: &AtomicValue, op: CompareOp) -> XdmResult<bool> {
    let (ra, rb) = resolve_general_pair(a, b)?;
    Ok(op.test(compare_typed(&ra, &rb)?))
}

/// A full **general comparison** over two sequences: existentially
/// quantified over the cross product of the atomized operands.
pub fn general_compare(lhs: &[Item], rhs: &[Item], op: CompareOp) -> XdmResult<bool> {
    let la = crate::sequence::atomize(lhs)?;
    let ra = crate::sequence::atomize(rhs)?;
    for a in &la {
        for b in &ra {
            if general_compare_pair(a, b, op)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// A **value comparison**: operands must atomize to at most one item; empty
/// operand → empty result (`Ok(None)`); untypedAtomic casts to `xs:string`.
pub fn value_compare(lhs: &[Item], rhs: &[Item], op: CompareOp) -> XdmResult<Option<bool>> {
    let la = crate::sequence::atomize(lhs)?;
    let ra = crate::sequence::atomize(rhs)?;
    let a = match la.as_slice() {
        [] => return Ok(None),
        [a] => a,
        _ => {
            return Err(XdmError::type_error(format!(
                "value comparison '{}' requires a singleton left operand, got {} items",
                op.value_keyword(),
                la.len()
            )))
        }
    };
    let b = match ra.as_slice() {
        [] => return Ok(None),
        [b] => b,
        _ => {
            return Err(XdmError::type_error(format!(
                "value comparison '{}' requires a singleton right operand, got {} items",
                op.value_keyword(),
                ra.len()
            )))
        }
    };
    let a = untyped_to_string(a);
    let b = untyped_to_string(b);
    Ok(Some(op.test(compare_typed(&a, &b)?)))
}

fn untyped_to_string(v: &AtomicValue) -> AtomicValue {
    match v {
        AtomicValue::UntypedAtomic(s) => AtomicValue::String(s.clone()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::singleton_atomic;

    fn ua(s: &str) -> AtomicValue {
        AtomicValue::UntypedAtomic(s.into())
    }

    #[test]
    fn untyped_vs_number_compares_numerically() {
        // <price>99.50</price> > 100 → numeric comparison.
        assert!(!general_compare_pair(&ua("99.50"), &AtomicValue::Double(100.0), CompareOp::Gt)
            .unwrap());
        assert!(general_compare_pair(&ua("150"), &AtomicValue::Double(100.0), CompareOp::Gt)
            .unwrap());
    }

    #[test]
    fn untyped_vs_string_compares_stringly() {
        // Query 3 of the paper: @price > "100" is a *string* comparison,
        // so "20 USD" satisfies it even though it is not a number.
        assert!(general_compare_pair(
            &ua("20 USD"),
            &AtomicValue::String("100".into()),
            CompareOp::Gt
        )
        .unwrap());
        // ...and "99.50" > "100" is true stringly but false numerically.
        assert!(general_compare_pair(&ua("99.50"), &AtomicValue::String("100".into()), CompareOp::Gt)
            .unwrap());
    }

    #[test]
    fn untyped_vs_nonnumeric_string_raises_on_numeric_context() {
        // untyped "20 USD" against a double must fail the cast.
        assert!(general_compare_pair(&ua("20 USD"), &AtomicValue::Double(100.0), CompareOp::Gt)
            .is_err());
    }

    #[test]
    fn string_vs_double_is_a_type_error() {
        let r = general_compare_pair(
            &AtomicValue::String("100".into()),
            &AtomicValue::Double(100.0),
            CompareOp::Eq,
        );
        assert!(r.is_err());
    }

    #[test]
    fn general_comparison_is_existential() {
        // Section 3.10: prices {250, 50} satisfy (>100 and <200) jointly
        // though no single price is in the range.
        let prices = vec![
            Item::Atomic(ua("250")),
            Item::Atomic(ua("50")),
        ];
        let hi = singleton_atomic(AtomicValue::Double(100.0));
        let lo = singleton_atomic(AtomicValue::Double(200.0));
        assert!(general_compare(&prices, &hi, CompareOp::Gt).unwrap());
        assert!(general_compare(&prices, &lo, CompareOp::Lt).unwrap());
    }

    #[test]
    fn empty_sequence_general_comparison_is_false() {
        let empty: Vec<Item> = vec![];
        let hundred = singleton_atomic(AtomicValue::Double(100.0));
        assert!(!general_compare(&empty, &hundred, CompareOp::Gt).unwrap());
        assert!(!general_compare(&hundred, &empty, CompareOp::Eq).unwrap());
    }

    #[test]
    fn value_comparison_requires_singletons() {
        let two = vec![Item::Atomic(ua("1")), Item::Atomic(ua("2"))];
        let one = singleton_atomic(AtomicValue::Double(1.0));
        let err = value_compare(&two, &one, CompareOp::Eq).unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::XPTY0004);
        let err = value_compare(&one, &two, CompareOp::Eq).unwrap_err();
        assert_eq!(err.code, crate::error::ErrorCode::XPTY0004);
    }

    #[test]
    fn value_comparison_empty_operand_is_empty() {
        let empty: Vec<Item> = vec![];
        let one = singleton_atomic(AtomicValue::Double(1.0));
        assert_eq!(value_compare(&empty, &one, CompareOp::Eq).unwrap(), None);
    }

    #[test]
    fn value_comparison_casts_untyped_to_string() {
        // 'eq' between untyped "100" and the *number* 100 is a type error —
        // untyped goes to string in value comparisons (Section 3.6 case 1).
        let u = singleton_atomic(ua("100"));
        let n = singleton_atomic(AtomicValue::Double(100.0));
        assert!(value_compare(&u, &n, CompareOp::Eq).is_err());
        // ...but against the *string* "100" it is true.
        let s = singleton_atomic(AtomicValue::String("100".into()));
        assert_eq!(value_compare(&u, &s, CompareOp::Eq).unwrap(), Some(true));
    }

    #[test]
    fn nan_is_unordered() {
        let nan = AtomicValue::Double(f64::NAN);
        assert!(!general_compare_pair(&nan, &nan, CompareOp::Eq).unwrap());
        assert!(general_compare_pair(&nan, &nan, CompareOp::Ne).unwrap());
        assert!(!general_compare_pair(&nan, &AtomicValue::Double(1.0), CompareOp::Lt).unwrap());
    }

    #[test]
    fn numeric_promotion_integer_decimal_double() {
        let i = AtomicValue::Integer(99);
        let d = AtomicValue::decimal_from_str("99.0").unwrap();
        let f = AtomicValue::Double(99.0);
        assert!(general_compare_pair(&i, &d, CompareOp::Eq).unwrap());
        assert!(general_compare_pair(&i, &f, CompareOp::Eq).unwrap());
        assert!(general_compare_pair(&d, &f, CompareOp::Eq).unwrap());
    }

    #[test]
    fn large_integer_comparison_exact_vs_double() {
        // Section 3.6 case 2: as integers these differ; as doubles they
        // collide. The typed comparison must stay exact.
        let a = AtomicValue::Integer(9_007_199_254_740_993);
        let b = AtomicValue::Integer(9_007_199_254_740_992);
        assert!(!general_compare_pair(&a, &b, CompareOp::Eq).unwrap());
        let fa = AtomicValue::Double(9_007_199_254_740_993i64 as f64);
        let fb = AtomicValue::Double(9_007_199_254_740_992i64 as f64);
        assert!(general_compare_pair(&fa, &fb, CompareOp::Eq).unwrap());
    }

    #[test]
    fn trailing_blanks_matter_in_xquery() {
        // Section 3.3: "trailing blank characters are ignored in SQL, they
        // are significant in XQuery".
        let a = AtomicValue::String("abc".into());
        let b = AtomicValue::String("abc   ".into());
        assert!(!general_compare_pair(&a, &b, CompareOp::Eq).unwrap());
    }

    #[test]
    fn op_flip_roundtrip() {
        for op in [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt, CompareOp::Le, CompareOp::Gt, CompareOp::Ge]
        {
            assert_eq!(op.flip().flip(), op);
        }
        assert_eq!(CompareOp::Lt.flip(), CompareOp::Gt);
    }

    #[test]
    fn date_comparisons() {
        let a = cast::cast_str("2001-01-01", AtomicType::Date).unwrap();
        let b = cast::cast_str("2002-01-01", AtomicType::Date).unwrap();
        assert!(general_compare_pair(&a, &b, CompareOp::Lt).unwrap());
        // untyped vs date → cast untyped to date
        assert!(general_compare_pair(&ua("2001-06-01"), &b, CompareOp::Lt).unwrap());
        assert!(general_compare_pair(&ua("January 1, 2001"), &b, CompareOp::Lt).is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, RngExt, SeedableRng};

    /// Random atomic value spanning the four comparison families.
    fn atom(rng: &mut StdRng) -> AtomicValue {
        match rng.random_range(0..4u8) {
            0 => AtomicValue::Integer(rng.next_u64() as i64),
            1 => {
                let mantissa = rng.random_range(1.0f64..2.0);
                let exp = rng.random_range(-100i32..100);
                let sign = if rng.random_bool(0.5) { -1.0 } else { 1.0 };
                AtomicValue::Double(sign * mantissa * 2f64.powi(exp))
            }
            2 => AtomicValue::String(
                (0..rng.random_range(0..=8usize))
                    .map(|_| match rng.random_range(0..37u8) {
                        36 => ' ',
                        n @ 0..=25 => (b'a' + n) as char,
                        n => (b'0' + (n - 26)) as char,
                    })
                    .collect(),
            ),
            _ => {
                // Numeric-looking untyped atomic, e.g. "123.45".
                let int_part = rng.random_range(0..1_000_000u64).to_string();
                let s = if rng.random_bool(0.5) {
                    format!("{int_part}.{}", rng.random_range(0..100u64))
                } else {
                    int_part
                };
                AtomicValue::UntypedAtomic(s)
            }
        }
    }

    #[test]
    fn general_comparison_flip_symmetry() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..256 {
            let (a, b) = (atom(&mut rng), atom(&mut rng));
            for op in [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt,
                       CompareOp::Le, CompareOp::Gt, CompareOp::Ge] {
                let fwd = general_compare_pair(&a, &b, op);
                let rev = general_compare_pair(&b, &a, op.flip());
                match (fwd, rev) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "{a:?} {b:?}"),
                    (Err(_), Err(_)) => {}
                    other => panic!("asymmetric comparability: {other:?} for {a:?} / {b:?}"),
                }
            }
        }
    }

    #[test]
    fn typed_comparison_is_total_order_per_type() {
        let mut rng = StdRng::seed_from_u64(29);
        for _ in 0..256 {
            // Sorting integers via compare_typed matches i64 ordering.
            let mut xs: Vec<i64> =
                (0..rng.random_range(2..8usize)).map(|_| rng.next_u64() as i64).collect();
            let mut vals: Vec<AtomicValue> =
                xs.iter().map(|&i| AtomicValue::Integer(i)).collect();
            vals.sort_by(|a, b| compare_typed(a, b).unwrap().unwrap());
            xs.sort();
            let resorted: Vec<i64> = vals
                .iter()
                .map(|v| match v {
                    AtomicValue::Integer(i) => *i,
                    other => panic!("unexpected {other:?}"),
                })
                .collect();
            assert_eq!(resorted, xs);
        }
    }

    #[test]
    fn eq_and_ne_partition() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..256 {
            let (a, b) = (atom(&mut rng), atom(&mut rng));
            if let (Ok(eq), Ok(ne)) = (
                general_compare_pair(&a, &b, CompareOp::Eq),
                general_compare_pair(&a, &b, CompareOp::Ne),
            ) {
                assert_ne!(eq, ne, "{a:?} vs {b:?}");
            }
        }
    }
}
