//! # xqdb-xdm — the XQuery Data Model substrate
//!
//! This crate implements the subset of the [XQuery 1.0 and XPath 2.0 Data
//! Model (XDM)] that *On the Path to Efficient XML Queries* (Balmin, Beyer,
//! Özcan, Nicola; VLDB 2006) relies on:
//!
//! * the seven node kinds with **node identity** and **document order**
//!   (Section 3.6 of the paper: "construction is nondeterministic because it
//!   generates distinct node identifiers on each evaluation");
//! * **typed values vs. string values** of nodes, including the
//!   `xdt:untypedAtomic` annotation of unvalidated data (Sections 3.1, 3.6);
//! * the **casting table** used both by query comparisons and by the
//!   *tolerant* index key extraction of Section 2.1;
//! * **general (existential) vs. value comparison** semantics, whose
//!   difference drives the "between" pitfall of Section 3.10 and the join
//!   pitfalls of Section 3.3.
//!
//! Everything here is deliberately independent of parsing, query evaluation
//! and storage — those live in the sibling crates and consume this model.
//!
//! [XQuery 1.0 and XPath 2.0 Data Model (XDM)]: https://www.w3.org/TR/xpath-datamodel/

pub mod atomic;
pub mod builder;
pub mod cast;
pub mod compare;
pub mod datetime;
pub mod error;
pub mod fault;
pub mod limits;
pub mod node;
pub mod qname;
pub mod sequence;
pub mod validate;

pub use atomic::{AtomicType, AtomicValue};
pub use builder::DocumentBuilder;
pub use datetime::{Date, DateTime};
pub use error::{ErrorCode, XdmError};
pub use fault::{ConnectionFault, DurabilityFault, FaultInjector, FaultMode};
pub use limits::{Budget, Limits};
pub use node::{Document, DocId, NodeHandle, NodeId, NodeKind, TypeAnnotation};
pub use qname::{ExpandedName, QName};
pub use sequence::{Item, Sequence};
pub use validate::{validate, TypeRule};
