//! Mini-validation: stamping simple-type annotations onto a parsed tree.
//!
//! The paper's engine validates documents *per document* against possibly
//! different schemas ("the association between schemas and XML documents is
//! per document, for highest flexibility"), and index key extraction takes
//! "the node's type annotation derived during validation" into account.
//! This module provides the minimal equivalent: rebuild a tree with
//! annotations assigned by name-based rules, rejecting documents whose
//! values do not conform — exactly enough to reproduce the typed-data
//! behaviours of Sections 3.1 and 3.6 (cases 1 and 2).

use std::sync::Arc;

use crate::atomic::AtomicType;
use crate::builder::DocumentBuilder;
use crate::cast;
use crate::error::{XdmError, XdmResult};
use crate::node::{Document, NodeHandle, NodeKind};
use crate::qname::ExpandedName;

/// A validation rule: nodes whose *local name* matches get the annotation.
/// (Real schemas key on paths and namespaces; local names suffice for the
/// paper's examples and keep the rule set readable.)
#[derive(Debug, Clone)]
pub struct TypeRule {
    /// Local name of the element or attribute to annotate.
    pub local_name: String,
    /// The simple type to stamp.
    pub ty: AtomicType,
}

impl TypeRule {
    /// Convenience constructor.
    pub fn new(local_name: impl Into<String>, ty: AtomicType) -> Self {
        TypeRule { local_name: local_name.into(), ty }
    }
}

/// Validate (re-annotate) a document against the rules. Fails with
/// `FORG0001` if an annotated node's value is not castable to its type —
/// the "document rejected by schema validation" case, which is distinct
/// from the *tolerant* index behaviour.
pub fn validate(doc: &NodeHandle, rules: &[TypeRule]) -> XdmResult<Arc<Document>> {
    let mut b = match doc.kind() {
        NodeKind::Document => DocumentBuilder::new_document(),
        NodeKind::Element => DocumentBuilder::new_element_root(
            doc.name().cloned().unwrap_or_else(|| ExpandedName::local("root")),
        ),
        other => {
            return Err(XdmError::type_error(format!(
                "validation requires a document or element root, got {other}"
            )))
        }
    };
    if doc.kind() == NodeKind::Element {
        copy_attrs_and_children(&mut b, doc, rules)?;
    } else {
        for child in doc.children() {
            copy_validated(&mut b, &child, rules)?;
        }
    }
    Ok(b.finish())
}

fn rule_for<'r>(rules: &'r [TypeRule], name: Option<&ExpandedName>) -> Option<&'r TypeRule> {
    let local = &*name?.local;
    rules.iter().find(|r| r.local_name == local)
}

fn copy_validated(
    b: &mut DocumentBuilder,
    node: &NodeHandle,
    rules: &[TypeRule],
) -> XdmResult<()> {
    match node.kind() {
        NodeKind::Element => {
            let Some(name) = node.name() else { return Ok(()) };
            let id = b.start_element(name.clone());
            if let Some(rule) = rule_for(rules, node.name()) {
                check_castable(node, rule)?;
                b.annotate(id, rule.ty);
            }
            copy_attrs_and_children(b, node, rules)?;
            b.end_element();
        }
        NodeKind::Text => {
            b.text(node.string_value());
        }
        NodeKind::Comment => {
            b.comment(node.string_value());
        }
        NodeKind::ProcessingInstruction => {
            b.processing_instruction(
                node.name().map(|n| n.local.to_string()).unwrap_or_default(),
                node.string_value(),
            );
        }
        NodeKind::Attribute | NodeKind::Document => {
            return Err(XdmError::internal(
                "validation walker reached an attribute/document node directly",
            ))
        }
    }
    Ok(())
}

fn copy_attrs_and_children(
    b: &mut DocumentBuilder,
    node: &NodeHandle,
    rules: &[TypeRule],
) -> XdmResult<()> {
    for attr in node.attributes() {
        let Some(name) = attr.name() else { continue };
        let id = b.attribute(name.clone(), attr.string_value());
        if let Some(rule) = rule_for(rules, attr.name()) {
            check_castable(&attr, rule)?;
            b.annotate(id, rule.ty);
        }
    }
    for child in node.children() {
        copy_validated(b, &child, rules)?;
    }
    Ok(())
}

fn check_castable(node: &NodeHandle, rule: &TypeRule) -> XdmResult<()> {
    cast::cast_str(&node.string_value(), rule.ty).map(|_| ()).map_err(|e| {
        XdmError::invalid_cast(format!(
            "validation failed: {} value {:?} is not a valid {}: {}",
            rule.local_name,
            node.string_value(),
            rule.ty,
            e.message
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TypeAnnotation;

    #[test]
    fn annotates_matching_nodes() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("lineitem"));
        b.attribute(ExpandedName::local("price"), "99.50");
        b.start_element(ExpandedName::local("id"));
        b.text("17");
        b.end_element();
        b.end_element();
        let doc = b.finish();

        let validated = validate(
            &doc.root(),
            &[
                TypeRule::new("price", AtomicType::Double),
                TypeRule::new("id", AtomicType::Integer),
            ],
        )
        .unwrap();
        let li = validated.root().children().next().unwrap();
        let price = li.attributes().next().unwrap();
        assert_eq!(price.annotation(), TypeAnnotation::Atomic(AtomicType::Double));
        assert_eq!(
            price.typed_value().unwrap(),
            crate::AtomicValue::Double(99.5)
        );
        let id = li.children().next().unwrap();
        assert_eq!(id.annotation(), TypeAnnotation::Atomic(AtomicType::Integer));
        assert_eq!(id.typed_value().unwrap(), crate::AtomicValue::Integer(17));
    }

    #[test]
    fn rejects_nonconforming_values() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("lineitem"));
        b.attribute(ExpandedName::local("price"), "20 USD");
        b.end_element();
        let doc = b.finish();
        let err = validate(&doc.root(), &[TypeRule::new("price", AtomicType::Double)])
            .unwrap_err();
        assert_eq!(err.code, crate::ErrorCode::FORG0001);
    }

    #[test]
    fn unmatched_nodes_stay_untyped() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("note"));
        b.text("hello");
        b.end_element();
        let doc = b.finish();
        let validated =
            validate(&doc.root(), &[TypeRule::new("price", AtomicType::Double)]).unwrap();
        let note = validated.root().children().next().unwrap();
        assert_eq!(note.annotation(), TypeAnnotation::Untyped);
    }

    #[test]
    fn preserves_structure() {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("a"));
        b.comment("c");
        b.processing_instruction("t", "d");
        b.start_element(ExpandedName::local("b"));
        b.end_element();
        b.end_element();
        let doc = b.finish();
        let validated = validate(&doc.root(), &[]).unwrap();
        assert_eq!(validated.len(), doc.len());
        let a = validated.root().children().next().unwrap();
        assert_eq!(a.children().count(), 3);
    }
}
