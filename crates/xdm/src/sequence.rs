//! Items and sequences.
//!
//! XQuery's only composite value is the flat sequence — "XQuery does not
//! have nested sequences" (Section 3.4 of the paper), and sequence
//! concatenation therefore *discards* empty sequences, which is one of the
//! places the eligibility analyzer may exploit an index even under `let`
//! semantics.

use std::fmt;

use crate::atomic::AtomicValue;
use crate::error::{XdmError, XdmResult};
use crate::node::NodeHandle;

/// A single XDM item: a node or an atomic value.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A node reference (identity-bearing).
    Node(NodeHandle),
    /// An atomic value.
    Atomic(AtomicValue),
}

impl Item {
    /// The item's atomization: nodes yield their typed value, atomics pass
    /// through unchanged.
    pub fn atomize(&self) -> XdmResult<AtomicValue> {
        match self {
            Item::Node(n) => n.typed_value(),
            Item::Atomic(a) => Ok(a.clone()),
        }
    }

    /// The item's string value (`fn:string`).
    pub fn string_value(&self) -> String {
        match self {
            Item::Node(n) => n.string_value(),
            Item::Atomic(a) => a.lexical(),
        }
    }

    /// Borrow the node, if this item is one.
    pub fn as_node(&self) -> Option<&NodeHandle> {
        match self {
            Item::Node(n) => Some(n),
            Item::Atomic(_) => None,
        }
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Item::Node(n) => write!(f, "{n:?}"),
            Item::Atomic(a) => write!(f, "{a}"),
        }
    }
}

/// A flat, ordered sequence of items. `Vec`-backed; the evaluator works in
/// materialized form (documents are small — the paper's workload is millions
/// of documents *under 1 MB*, filtered by indexes before navigation).
pub type Sequence = Vec<Item>;

/// Construct an empty sequence.
pub fn empty() -> Sequence {
    Vec::new()
}

/// Construct a singleton sequence from an atomic value.
pub fn singleton_atomic(v: AtomicValue) -> Sequence {
    vec![Item::Atomic(v)]
}

/// Construct a singleton sequence from a node.
pub fn singleton_node(n: NodeHandle) -> Sequence {
    vec![Item::Node(n)]
}

/// Atomize every item of a sequence (`fn:data`).
pub fn atomize(seq: &[Item]) -> XdmResult<Vec<AtomicValue>> {
    seq.iter().map(Item::atomize).collect()
}

/// The **effective boolean value** (EBV) of a sequence:
///
/// * empty → `false`;
/// * first item a node → `true` (regardless of length);
/// * singleton boolean → the value; singleton string/untyped/anyURI →
///   `false` iff empty; singleton numeric → `false` iff zero or NaN;
/// * otherwise → `err:FORG0006`-style type error (reported as XPTY0004
///   here, the distinction is immaterial to the engine).
///
/// Note the contrast that drives the paper's Query 9 pitfall: the EBV of
/// `true()` *and* of `false()` wrapped in `XMLExists`'s "non-empty sequence"
/// test are both "non-empty", so `XMLExists` over a boolean-valued XQuery is
/// always true. `XMLExists` deliberately does **not** use the EBV.
pub fn effective_boolean_value(seq: &[Item]) -> XdmResult<bool> {
    match seq {
        [] => Ok(false),
        [Item::Node(_), ..] => Ok(true),
        [Item::Atomic(a)] => match a {
            AtomicValue::Boolean(b) => Ok(*b),
            AtomicValue::String(s) | AtomicValue::UntypedAtomic(s) | AtomicValue::AnyUri(s) => {
                Ok(!s.is_empty())
            }
            AtomicValue::Double(d) => Ok(*d != 0.0 && !d.is_nan()),
            AtomicValue::Integer(i) => Ok(*i != 0),
            AtomicValue::Decimal(d) => Ok(*d != 0),
            AtomicValue::Date(_) | AtomicValue::DateTime(_) => Err(XdmError::type_error(
                "effective boolean value of a date/dateTime is undefined",
            )),
        },
        _ => Err(XdmError::type_error(
            "effective boolean value of a multi-item atomic sequence is undefined",
        )),
    }
}

/// Deduplicate nodes by identity and sort into document order; raise a type
/// error if any item is atomic. This is the post-processing every path step
/// applies (and what makes rewrites over constructed nodes delicate —
/// Section 3.6 case 5).
pub fn doc_order_dedup(seq: Sequence) -> XdmResult<Sequence> {
    let mut nodes: Vec<NodeHandle> = Vec::with_capacity(seq.len());
    for item in seq {
        match item {
            Item::Node(n) => nodes.push(n),
            Item::Atomic(a) => {
                return Err(XdmError::type_error(format!(
                    "path step produced the atomic value {a:?}; steps must return nodes"
                )))
            }
        }
    }
    nodes.sort();
    nodes.dedup();
    Ok(nodes.into_iter().map(Item::Node).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocumentBuilder;
    use crate::qname::ExpandedName;

    fn node() -> NodeHandle {
        let mut b = DocumentBuilder::new_document();
        b.start_element(ExpandedName::local("e"));
        b.end_element();
        b.finish().root()
    }

    #[test]
    fn ebv_empty_is_false() {
        assert!(!effective_boolean_value(&[]).unwrap());
    }

    #[test]
    fn ebv_node_first_is_true_even_for_long_sequences() {
        let n = node();
        let seq = vec![Item::Node(n.clone()), Item::Node(n)];
        assert!(effective_boolean_value(&seq).unwrap());
    }

    #[test]
    fn ebv_singleton_atomics() {
        assert!(!effective_boolean_value(&singleton_atomic(AtomicValue::Boolean(false))).unwrap());
        assert!(effective_boolean_value(&singleton_atomic(AtomicValue::Boolean(true))).unwrap());
        assert!(!effective_boolean_value(&singleton_atomic(AtomicValue::String(String::new())))
            .unwrap());
        assert!(effective_boolean_value(&singleton_atomic(AtomicValue::String("x".into())))
            .unwrap());
        assert!(!effective_boolean_value(&singleton_atomic(AtomicValue::Double(f64::NAN)))
            .unwrap());
        assert!(!effective_boolean_value(&singleton_atomic(AtomicValue::Integer(0))).unwrap());
        assert!(effective_boolean_value(&singleton_atomic(AtomicValue::Integer(-1))).unwrap());
    }

    #[test]
    fn ebv_multi_atomic_is_error() {
        let seq = vec![
            Item::Atomic(AtomicValue::Integer(1)),
            Item::Atomic(AtomicValue::Integer(2)),
        ];
        assert!(effective_boolean_value(&seq).is_err());
    }

    #[test]
    fn dedup_removes_identical_nodes_and_sorts() {
        let n = node();
        let doc = n.doc.clone();
        let root = doc.root();
        let e = root.children().next().unwrap();
        let seq = vec![
            Item::Node(e.clone()),
            Item::Node(root.clone()),
            Item::Node(e.clone()),
        ];
        let out = doc_order_dedup(seq).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Item::Node(root));
        assert_eq!(out[1], Item::Node(e));
    }

    #[test]
    fn dedup_keeps_equal_shaped_but_distinct_nodes() {
        // Two structurally identical trees: both survive dedup because
        // dedup is by identity, not by value.
        let a = node();
        let b = node();
        let out = doc_order_dedup(vec![Item::Node(a), Item::Node(b)]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn dedup_rejects_atomics() {
        assert!(doc_order_dedup(vec![Item::Atomic(AtomicValue::Integer(1))]).is_err());
    }

    #[test]
    fn atomize_maps_typed_values() {
        let n = node();
        let vals = atomize(&[Item::Node(n), Item::Atomic(AtomicValue::Integer(3))]).unwrap();
        assert_eq!(vals[0], AtomicValue::UntypedAtomic(String::new()));
        assert_eq!(vals[1], AtomicValue::Integer(3));
    }
}
