//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultInjector`] decides, per operation, whether to simulate a
//! failure. Storage attaches one to document fetches; the index layer
//! attaches one to probes. Every mode is deterministic — `Nth`/`EveryNth`
//! count operations atomically, and `Probability` hashes a seeded counter —
//! so a failing chaos-test seed reproduces exactly.
//!
//! The injector lives in `xqdb-xdm` (alongside [`crate::limits`]) because
//! it is the one crate both the storage and index layers already depend on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When the injector fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Never fail (the default; zero-cost in the hot path).
    Never,
    /// Fail every operation.
    Always,
    /// Fail exactly the `n`-th operation (1-based), once.
    Nth(u64),
    /// Fail every `n`-th operation (1-based; `EveryNth(3)` fails ops 3, 6, ...).
    EveryNth(u64),
    /// Fail a seeded pseudo-random fraction of operations:
    /// `permille` out of every 1000, keyed by `seed` and the operation
    /// counter (deterministic across runs).
    Probability { permille: u32, seed: u64 },
}

/// What a fired durability fault does to the write-ahead log. The WAL
/// writer pairs one of these with a [`FaultInjector`] (which decides *when*
/// to fire, counting record appends); this enum decides *what* happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityFault {
    /// Simulated power loss before the in-process buffer reaches the OS:
    /// every buffered-but-unflushed record is discarded and the writer goes
    /// dead (later appends fail with a typed `StorageFault`). Under
    /// `fsync always`/`off` the buffer is empty, so only the in-flight
    /// record is lost; under `fsync batch` a whole batch can vanish.
    CrashBeforeFlush,
    /// Simulated crash mid-write: the first half of the in-flight record's
    /// frame reaches the file, then the writer goes dead. Recovery must
    /// truncate the torn tail and keep everything before it.
    TornTail,
    /// Simulated media corruption: one bit of the in-flight frame is
    /// flipped before it is written. The writer *survives* (the application
    /// never notices) — recovery must detect the damage by CRC and
    /// quarantine the segment with a typed `WalCorrupt` error.
    BitFlip,
}

/// What a fired connection fault does to a client's use of the server
/// protocol. The chaos client pairs one of these with a [`FaultInjector`]
/// (which decides *when* to fire, counting requests); this enum decides
/// *what* the misbehaving client does on the wire. Server-side handling is
/// the invariant under test: a typed protocol error or a clean close —
/// never a panic, a hang, or a leaked session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionFault {
    /// The client writes only a prefix of the request frame and then
    /// disconnects. The server must drop the partial frame and release the
    /// connection without disturbing other sessions.
    DisconnectMidFrame,
    /// Slow-loris: the client dribbles the frame a byte at a time with
    /// pauses, holding the connection open far longer than an honest
    /// client. The server's per-frame read deadline must cut it off.
    SlowLoris,
    /// One bit of the frame payload is flipped after the CRC was computed.
    /// The server must answer with a typed CRC-mismatch protocol error.
    CorruptFrame,
    /// The frame header claims a payload far beyond the protocol maximum.
    /// The server must reject it with a typed oversized-frame error
    /// without allocating the claimed length.
    OversizedFrame,
    /// Burst arrival: the client opens its connection and fires its
    /// requests with no pacing, so admission control sees the whole load
    /// at once and must queue or shed the excess.
    Burst,
}

/// A shareable, thread-safe fault injection point.
#[derive(Debug)]
pub struct FaultInjector {
    mode: FaultMode,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new(FaultMode::Never)
    }
}

impl FaultInjector {
    /// An injector with the given firing mode, counters at zero.
    pub fn new(mode: FaultMode) -> Self {
        FaultInjector { mode, ops: AtomicU64::new(0), injected: AtomicU64::new(0) }
    }

    /// Convenience: a shared injector that never fires.
    pub fn disabled() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The configured mode.
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// Record one operation and report whether it should fail.
    pub fn should_fail(&self) -> bool {
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1; // 1-based
        let fail = match self.mode {
            FaultMode::Never => false,
            FaultMode::Always => true,
            FaultMode::Nth(n) => op == n,
            FaultMode::EveryNth(n) => n > 0 && op.is_multiple_of(n),
            FaultMode::Probability { permille, seed } => {
                // SplitMix64 over (seed, op): deterministic per operation.
                let mut z = seed ^ op.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                (z % 1000) < u64::from(permille)
            }
        };
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fail
    }

    /// Total operations observed.
    pub fn operations(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// How many faults have been injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_mode_never_fires() {
        let f = FaultInjector::new(FaultMode::Never);
        assert!((0..100).all(|_| !f.should_fail()));
        assert_eq!(f.operations(), 100);
        assert_eq!(f.faults_injected(), 0);
    }

    #[test]
    fn always_mode_always_fires() {
        let f = FaultInjector::new(FaultMode::Always);
        assert!((0..10).all(|_| f.should_fail()));
        assert_eq!(f.faults_injected(), 10);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let f = FaultInjector::new(FaultMode::Nth(3));
        let fired: Vec<bool> = (0..6).map(|_| f.should_fail()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn every_nth_is_periodic() {
        let f = FaultInjector::new(FaultMode::EveryNth(2));
        let fired: Vec<bool> = (0..6).map(|_| f.should_fail()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let a = FaultInjector::new(FaultMode::Probability { permille: 250, seed: 42 });
        let b = FaultInjector::new(FaultMode::Probability { permille: 250, seed: 42 });
        let fa: Vec<bool> = (0..2000).map(|_| a.should_fail()).collect();
        let fb: Vec<bool> = (0..2000).map(|_| b.should_fail()).collect();
        assert_eq!(fa, fb, "same seed must reproduce exactly");
        let rate = a.faults_injected() as f64 / 2000.0;
        assert!((0.15..0.35).contains(&rate), "rate {rate} far from 0.25");
        let c = FaultInjector::new(FaultMode::Probability { permille: 250, seed: 43 });
        let fc: Vec<bool> = (0..2000).map(|_| c.should_fail()).collect();
        assert_ne!(fa, fc, "different seeds should differ");
    }

    #[test]
    fn probability_extremes() {
        let never = FaultInjector::new(FaultMode::Probability { permille: 0, seed: 1 });
        assert!((0..500).all(|_| !never.should_fail()));
        let always = FaultInjector::new(FaultMode::Probability { permille: 1000, seed: 1 });
        assert!((0..500).all(|_| always.should_fail()));
    }
}
