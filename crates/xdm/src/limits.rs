//! Resource governance: limits, budgets, and cooperative cancellation.
//!
//! A [`Limits`] value declares what an evaluation may consume — wall-clock
//! time, evaluator steps, parser depth, document size, index entries,
//! result cardinality. A [`Budget`] is the *live* counterpart: shared
//! (`Arc`) between the engine, the evaluator, and the index probes, it is
//! charged cooperatively and trips a typed [`ErrorCode::ResourceExhausted`]
//! or [`ErrorCode::Cancelled`] error instead of letting a hostile query
//! hang the process. Nothing here aborts: exceeding a budget is an ordinary
//! `Err` that unwinds cleanly through the evaluator.
//!
//! The budget lives in `xqdb-xdm` because it is the one crate every layer
//! already depends on — storage, index, evaluator, and engine all charge
//! the same shared instance.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{XdmError, XdmResult};

/// Declarative resource limits for one evaluation. `None` means unlimited.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock deadline, measured from [`Budget::new`].
    pub timeout: Option<Duration>,
    /// Maximum number of evaluator steps (expression-node visits).
    pub max_steps: Option<u64>,
    /// Maximum XML / XQuery nesting depth accepted by the parsers.
    pub max_parse_depth: Option<usize>,
    /// Maximum size in bytes of a single parsed document.
    pub max_doc_bytes: Option<usize>,
    /// Maximum index entries an execution may scan across all probes.
    pub max_index_entries: Option<u64>,
    /// Maximum items in a query result.
    pub max_result_items: Option<usize>,
}

impl Limits {
    /// No limits at all (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder-style setter for the wall-clock timeout.
    pub fn with_timeout(mut self, t: Duration) -> Self {
        self.timeout = Some(t);
        self
    }

    /// Builder-style setter for the evaluator step budget.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Builder-style setter for the parser depth limit.
    pub fn with_max_parse_depth(mut self, n: usize) -> Self {
        self.max_parse_depth = Some(n);
        self
    }

    /// Builder-style setter for the document size limit.
    pub fn with_max_doc_bytes(mut self, n: usize) -> Self {
        self.max_doc_bytes = Some(n);
        self
    }

    /// Builder-style setter for the index entry scan budget.
    pub fn with_max_index_entries(mut self, n: u64) -> Self {
        self.max_index_entries = Some(n);
        self
    }

    /// Builder-style setter for the result cardinality cap.
    pub fn with_max_result_items(mut self, n: usize) -> Self {
        self.max_result_items = Some(n);
        self
    }
}

/// How often (in steps) the deadline and cancellation flag are re-checked.
/// Checking `Instant::now()` on every step would dominate evaluation time;
/// every 64 steps keeps overshoot under a microsecond-scale slice while
/// staying invisible in profiles.
const CHECK_INTERVAL: u64 = 64;

/// Live accounting for one evaluation, shared via `Arc` across layers.
///
/// All counters are atomic so the budget can be charged from the evaluator,
/// the engine's probe loop, and the `xqdb-runtime` worker pool without
/// locking: one budget governs all workers of a parallel run globally —
/// step/entry caps, the deadline and the cancellation token trip for the
/// whole pool no matter which worker charges the final unit. (The serial
/// cost of this is one uncontended `fetch_add` per step, negligible next
/// to evaluation itself; see `shared_budget_is_enforced_globally_across_workers`
/// in `crates/runtime` for the cross-thread enforcement test.)
#[derive(Debug)]
pub struct Budget {
    limits: Limits,
    started: Instant,
    deadline: Option<Instant>,
    steps: AtomicU64,
    index_entries: AtomicU64,
    cancel: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::new(Limits::unlimited())
    }
}

impl Budget {
    /// Start a budget clock for the given limits.
    pub fn new(limits: Limits) -> Self {
        let started = Instant::now();
        Budget {
            deadline: limits.timeout.map(|t| started + t),
            limits,
            started,
            steps: AtomicU64::new(0),
            index_entries: AtomicU64::new(0),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// An unlimited budget (never trips).
    pub fn unlimited() -> Arc<Self> {
        Arc::new(Budget::new(Limits::unlimited()))
    }

    /// The limits this budget enforces.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// A clonable token that cancels this evaluation when set. Safe to hand
    /// to another thread (e.g. a Ctrl-C handler).
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Request cancellation; the evaluation observes it at its next check.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Steps consumed so far.
    pub fn steps_used(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Index entries charged so far.
    pub fn index_entries_used(&self) -> u64 {
        self.index_entries.load(Ordering::Relaxed)
    }

    /// Elapsed wall-clock time since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Charge one evaluator step; checks the step limit on every call and
    /// the deadline / cancellation flag every [`CHECK_INTERVAL`] steps.
    ///
    /// This is the evaluator's cooperative preemption point: called at the
    /// head of every expression-node visit, it bounds how long a runaway
    /// query can run past its deadline by the cost of 64 steps.
    #[inline]
    pub fn tick(&self) -> XdmResult<()> {
        let n = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.limits.max_steps {
            if n > max {
                return Err(XdmError::resource_exhausted(format!(
                    "evaluation exceeded step budget of {max}"
                )));
            }
        }
        if n.is_multiple_of(CHECK_INTERVAL) {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Check deadline and cancellation immediately (no step charge). Used
    /// at coarse boundaries: per document, per probe, per result row.
    pub fn checkpoint(&self) -> XdmResult<()> {
        if self.cancel.load(Ordering::Relaxed) {
            return Err(XdmError::cancelled());
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(XdmError::resource_exhausted(format!(
                    "evaluation exceeded deadline of {:?}",
                    self.limits.timeout.unwrap_or_default()
                )));
            }
        }
        Ok(())
    }

    /// Charge `n` scanned index entries against the index budget, also
    /// checking deadline/cancellation (probe loops may run long without
    /// ticking the evaluator).
    pub fn charge_index_entries(&self, n: u64) -> XdmResult<()> {
        let total = self.index_entries.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = self.limits.max_index_entries {
            if total > max {
                return Err(XdmError::resource_exhausted(format!(
                    "index scan exceeded entry budget of {max}"
                )));
            }
        }
        self.checkpoint()
    }

    /// Check a result cardinality against the configured cap.
    pub fn check_result_items(&self, n: usize) -> XdmResult<()> {
        if let Some(max) = self.limits.max_result_items {
            if n > max {
                return Err(XdmError::resource_exhausted(format!(
                    "result exceeded cardinality cap of {max} items"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorCode;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.tick().unwrap();
        }
        b.charge_index_entries(1 << 40).unwrap();
        b.check_result_items(usize::MAX).unwrap();
    }

    #[test]
    fn step_budget_trips_with_typed_error() {
        let b = Budget::new(Limits::unlimited().with_max_steps(100));
        let mut tripped = None;
        for _ in 0..200 {
            if let Err(e) = b.tick() {
                tripped = Some(e);
                break;
            }
        }
        let e = tripped.expect("budget must trip");
        assert_eq!(e.code, ErrorCode::ResourceExhausted);
        assert!(b.steps_used() >= 100);
    }

    #[test]
    fn deadline_trips() {
        let b = Budget::new(Limits::unlimited().with_timeout(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        let e = b.checkpoint().unwrap_err();
        assert_eq!(e.code, ErrorCode::ResourceExhausted);
    }

    #[test]
    fn cancellation_observed_at_checkpoint() {
        let b = Budget::new(Limits::unlimited());
        let token = b.cancel_token();
        b.checkpoint().unwrap();
        token.store(true, Ordering::Relaxed);
        assert_eq!(b.checkpoint().unwrap_err().code, ErrorCode::Cancelled);
    }

    #[test]
    fn index_entry_budget_trips() {
        let b = Budget::new(Limits::unlimited().with_max_index_entries(10));
        b.charge_index_entries(5).unwrap();
        let e = b.charge_index_entries(6).unwrap_err();
        assert_eq!(e.code, ErrorCode::ResourceExhausted);
        assert_eq!(b.index_entries_used(), 11);
    }

    #[test]
    fn result_cap_checks() {
        let b = Budget::new(Limits::unlimited().with_max_result_items(3));
        b.check_result_items(3).unwrap();
        assert_eq!(
            b.check_result_items(4).unwrap_err().code,
            ErrorCode::ResourceExhausted
        );
    }
}
