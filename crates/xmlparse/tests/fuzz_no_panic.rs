//! The XML parser must never panic on arbitrary input — reject, don't
//! crash. Inputs are biased toward tag soup to reach deep parser states.
//! Randomness is seeded and deterministic, so any failure reproduces.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xqdb_xmlparse::parse_document;

const FRAGMENTS: &[&str] = &[
    "<", ">", "/>", "</", "<a", "<a>", "</a>", "a=\"1\"", "a='1'", "xmlns=\"u\"", "xmlns:p=\"u\"",
    "<p:a>", "</p:a>", "text", "&lt;", "&#65;", "&#x41;", "&bad;", "<!--", "-->", "<!-- c -->",
    "<![CDATA[", "]]>", "<?pi d?>", "<?xml version=\"1.0\"?>", "<!DOCTYPE a>", " ", "\"", "'",
    "=", "99.50",
];

fn soup(rng: &mut StdRng) -> String {
    (0..rng.random_range(0..20usize))
        .map(|_| FRAGMENTS[rng.random_range(0..FRAGMENTS.len())])
        .collect::<Vec<_>>()
        .concat()
}

fn printable_noise(rng: &mut StdRng, max_len: usize) -> String {
    (0..rng.random_range(0..=max_len)).map(|_| (b' ' + rng.random_range(0..95u8)) as char).collect()
}

fn unicode_noise(rng: &mut StdRng, max_len: usize) -> String {
    (0..rng.random_range(0..=max_len))
        .filter_map(|_| char::from_u32(rng.random_range(1..0x11_0000u32)))
        .collect()
}

#[test]
fn parser_never_panics_on_soup() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = soup(&mut rng);
        let _ = parse_document(&input); // Ok or Err, never a panic
    }
}

#[test]
fn parser_never_panics_on_noise() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0xA5A5_0000 + seed);
        let input = printable_noise(&mut rng, 80);
        let _ = parse_document(&input);
    }
}

#[test]
fn parser_never_panics_on_unicode() {
    for seed in 0..512u64 {
        let mut rng = StdRng::seed_from_u64(0x5A5A_0000 + seed);
        let input = unicode_noise(&mut rng, 40);
        let _ = parse_document(&input);
    }
}
