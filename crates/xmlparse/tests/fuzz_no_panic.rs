//! The XML parser must never panic on arbitrary input — reject, don't
//! crash. Inputs are biased toward tag soup to reach deep parser states.

use proptest::prelude::*;
use xqdb_xmlparse::parse_document;

const FRAGMENTS: &[&str] = &[
    "<", ">", "/>", "</", "<a", "<a>", "</a>", "a=\"1\"", "a='1'", "xmlns=\"u\"", "xmlns:p=\"u\"",
    "<p:a>", "</p:a>", "text", "&lt;", "&#65;", "&#x41;", "&bad;", "<!--", "-->", "<!-- c -->",
    "<![CDATA[", "]]>", "<?pi d?>", "<?xml version=\"1.0\"?>", "<!DOCTYPE a>", " ", "\"", "'",
    "=", "99.50",
];

fn soup() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(FRAGMENTS), 0..20)
        .prop_map(|parts| parts.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_soup(input in soup()) {
        let _ = parse_document(&input);
    }

    #[test]
    fn parser_never_panics_on_noise(input in "[ -~]{0,80}") {
        let _ = parse_document(&input);
    }

    #[test]
    fn parser_never_panics_on_unicode(input in "\\PC{0,40}") {
        let _ = parse_document(&input);
    }
}
