//! Property test: serialize(parse(serialize(tree))) is stable, and parsing
//! a serialized random tree reproduces its structure (names, values, kinds,
//! string values).

use proptest::prelude::*;
use xqdb_xdm::{DocumentBuilder, ExpandedName, NodeHandle, NodeKind};
use xqdb_xmlparse::{parse_document, serialize_node};

/// A recipe for a random tree node.
#[derive(Debug, Clone)]
enum NodeSpec {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<NodeSpec> },
    Text(String),
    Comment(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

/// Text without the XML-forbidden control characters; the serializer
/// escapes everything else.
fn text_strategy() -> impl Strategy<Value = String> {
    "[ -~]{0,12}".prop_map(|s| s.replace(']', "_")) // avoid "]]>" worries
}

fn comment_strategy() -> impl Strategy<Value = String> {
    "[a-z ]{0,10}"
}

fn node_spec() -> impl Strategy<Value = NodeSpec> {
    let leaf = prop_oneof![
        text_strategy().prop_map(NodeSpec::Text),
        comment_strategy().prop_map(NodeSpec::Comment),
        (name_strategy(), prop::collection::vec((name_strategy(), text_strategy()), 0..3))
            .prop_map(|(name, attrs)| NodeSpec::Element {
                name,
                attrs: dedup_attrs(attrs),
                children: vec![]
            }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), text_strategy()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| NodeSpec::Element {
                name,
                attrs: dedup_attrs(attrs),
                children,
            })
    })
}

fn dedup_attrs(mut attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs.retain(|(n, _)| seen.insert(n.clone()));
    attrs
}

fn build(spec: &NodeSpec) -> NodeHandle {
    let mut b = DocumentBuilder::new_document();
    fn add(b: &mut DocumentBuilder, spec: &NodeSpec) {
        match spec {
            NodeSpec::Element { name, attrs, children } => {
                b.start_element(ExpandedName::local(name));
                for (an, av) in attrs {
                    b.attribute(ExpandedName::local(an), av.clone());
                }
                for c in children {
                    add(b, c);
                }
                b.end_element();
            }
            NodeSpec::Text(t) => {
                if !t.is_empty() {
                    b.text(t);
                }
            }
            NodeSpec::Comment(c) => {
                b.comment(c.clone());
            }
        }
    }
    // Ensure a single element root.
    let root_spec = match spec {
        e @ NodeSpec::Element { .. } => e.clone(),
        other => NodeSpec::Element {
            name: "root".into(),
            attrs: vec![],
            children: vec![other.clone()],
        },
    };
    add(&mut b, &root_spec);
    b.finish().root()
}

/// Structural equality up to adjacent-text merging.
fn same_structure(a: &NodeHandle, b: &NodeHandle) -> bool {
    if a.kind() != b.kind() || a.name() != b.name() {
        return false;
    }
    if a.kind() != NodeKind::Document && a.kind() != NodeKind::Element {
        return a.string_value() == b.string_value();
    }
    let attrs_a: Vec<_> = a.attributes().map(|x| (x.name().cloned(), x.string_value())).collect();
    let attrs_b: Vec<_> = b.attributes().map(|x| (x.name().cloned(), x.string_value())).collect();
    if attrs_a != attrs_b {
        return false;
    }
    let ca: Vec<_> = a.children().collect();
    let cb: Vec<_> = b.children().collect();
    ca.len() == cb.len() && ca.iter().zip(&cb).all(|(x, y)| same_structure(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn roundtrip_preserves_structure(spec in node_spec()) {
        let original = build(&spec);
        let xml = serialize_node(&original);
        let reparsed = parse_document(&xml)
            .unwrap_or_else(|e| panic!("serialized output must reparse: {e}\n{xml}"));
        prop_assert!(
            same_structure(&original, &reparsed.root()),
            "structure changed through roundtrip:\n{xml}"
        );
        // Idempotence: a second roundtrip yields byte-identical output.
        let xml2 = serialize_node(&reparsed.root());
        prop_assert_eq!(xml, xml2);
    }

    #[test]
    fn string_values_survive_roundtrip(spec in node_spec()) {
        let original = build(&spec);
        let xml = serialize_node(&original);
        let reparsed = parse_document(&xml).expect("reparses");
        prop_assert_eq!(original.string_value(), reparsed.root().string_value());
    }
}
