//! Property test: serialize(parse(serialize(tree))) is stable, and parsing
//! a serialized random tree reproduces its structure (names, values, kinds,
//! string values). Randomness comes from the vendored deterministic RNG, so
//! every run exercises the same seeded cases and failures reproduce exactly.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xqdb_xdm::{DocumentBuilder, ExpandedName, NodeHandle, NodeKind};
use xqdb_xmlparse::{parse_document, serialize_node};

const CASES: u64 = 96;

/// A recipe for a random tree node.
#[derive(Debug, Clone)]
enum NodeSpec {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<NodeSpec> },
    Text(String),
    Comment(String),
}

fn gen_name(rng: &mut StdRng) -> String {
    let mut s = String::new();
    s.push((b'a' + rng.random_range(0..26u8)) as char);
    for _ in 0..rng.random_range(0..=6usize) {
        let c = match rng.random_range(0..36u8) {
            n @ 0..=25 => (b'a' + n) as char,
            n => (b'0' + (n - 26)) as char,
        };
        s.push(c);
    }
    s
}

/// Printable-ASCII text; `]` is avoided so generated text can never form a
/// literal `]]>` (which character data must not contain).
fn gen_text(rng: &mut StdRng) -> String {
    (0..rng.random_range(0..=12usize))
        .map(|_| {
            let c = (b' ' + rng.random_range(0..95u8)) as char;
            if c == ']' {
                '_'
            } else {
                c
            }
        })
        .collect()
}

fn gen_comment(rng: &mut StdRng) -> String {
    (0..rng.random_range(0..=10usize))
        .map(|_| match rng.random_range(0..27u8) {
            26 => ' ',
            n => (b'a' + n) as char,
        })
        .collect()
}

fn gen_attrs(rng: &mut StdRng) -> Vec<(String, String)> {
    let attrs: Vec<(String, String)> = (0..rng.random_range(0..3usize))
        .map(|_| (gen_name(rng), gen_text(rng)))
        .collect();
    dedup_attrs(attrs)
}

/// Generate a node spec with at most `depth` levels of element nesting.
fn gen_spec(rng: &mut StdRng, depth: usize) -> NodeSpec {
    let pick = rng.random_range(0..4u8);
    match pick {
        0 => NodeSpec::Text(gen_text(rng)),
        1 => NodeSpec::Comment(gen_comment(rng)),
        _ => {
            let children = if depth == 0 {
                vec![]
            } else {
                (0..rng.random_range(0..4usize)).map(|_| gen_spec(rng, depth - 1)).collect()
            };
            NodeSpec::Element { name: gen_name(rng), attrs: gen_attrs(rng), children }
        }
    }
}

fn dedup_attrs(mut attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs.retain(|(n, _)| seen.insert(n.clone()));
    attrs
}

fn build(spec: &NodeSpec) -> NodeHandle {
    let mut b = DocumentBuilder::new_document();
    fn add(b: &mut DocumentBuilder, spec: &NodeSpec) {
        match spec {
            NodeSpec::Element { name, attrs, children } => {
                b.start_element(ExpandedName::local(name));
                for (an, av) in attrs {
                    b.attribute(ExpandedName::local(an), av.clone());
                }
                for c in children {
                    add(b, c);
                }
                b.end_element();
            }
            NodeSpec::Text(t) => {
                if !t.is_empty() {
                    b.text(t);
                }
            }
            NodeSpec::Comment(c) => {
                b.comment(c.clone());
            }
        }
    }
    // Ensure a single element root.
    let root_spec = match spec {
        e @ NodeSpec::Element { .. } => e.clone(),
        other => NodeSpec::Element {
            name: "root".into(),
            attrs: vec![],
            children: vec![other.clone()],
        },
    };
    add(&mut b, &root_spec);
    b.finish().root()
}

/// Structural equality up to adjacent-text merging.
fn same_structure(a: &NodeHandle, b: &NodeHandle) -> bool {
    if a.kind() != b.kind() || a.name() != b.name() {
        return false;
    }
    if a.kind() != NodeKind::Document && a.kind() != NodeKind::Element {
        return a.string_value() == b.string_value();
    }
    let attrs_a: Vec<_> = a.attributes().map(|x| (x.name().cloned(), x.string_value())).collect();
    let attrs_b: Vec<_> = b.attributes().map(|x| (x.name().cloned(), x.string_value())).collect();
    if attrs_a != attrs_b {
        return false;
    }
    let ca: Vec<_> = a.children().collect();
    let cb: Vec<_> = b.children().collect();
    ca.len() == cb.len() && ca.iter().zip(&cb).all(|(x, y)| same_structure(x, y))
}

#[test]
fn roundtrip_preserves_structure() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = gen_spec(&mut rng, 4);
        let original = build(&spec);
        let xml = serialize_node(&original);
        let reparsed = parse_document(&xml)
            .unwrap_or_else(|e| panic!("serialized output must reparse: {e}\n{xml}"));
        assert!(
            same_structure(&original, &reparsed.root()),
            "structure changed through roundtrip (seed {seed}):\n{xml}"
        );
        // Idempotence: a second roundtrip yields byte-identical output.
        let xml2 = serialize_node(&reparsed.root());
        assert_eq!(xml, xml2, "seed {seed}");
    }
}

#[test]
fn string_values_survive_roundtrip() {
    for seed in 1000..1000 + CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = gen_spec(&mut rng, 4);
        let original = build(&spec);
        let xml = serialize_node(&original);
        let reparsed = parse_document(&xml).expect("reparses");
        assert_eq!(
            original.string_value(),
            reparsed.root().string_value(),
            "seed {seed}: {xml}"
        );
    }
}
