//! The XML parser.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use xqdb_xdm::qname::{is_ncname, XML_NS};
use xqdb_xdm::{Document, DocumentBuilder, ExpandedName, QName};

/// A parse failure, with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
    /// True when the failure is a [`ParseLimits`] violation rather than a
    /// well-formedness error — callers map these to a resource-limit error
    /// class instead of a syntax error.
    pub limit_exceeded: bool,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Resource caps applied while parsing, so adversarial input fails with a
/// [`ParseError`] instead of exhausting the stack or memory.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum element nesting depth. `parse_element` recurses, so this
    /// also bounds parser stack usage.
    pub max_depth: usize,
    /// Maximum input size in bytes, if capped.
    pub max_doc_bytes: Option<usize>,
    /// Maximum decoded attribute-value size in bytes, if capped.
    pub max_attr_bytes: Option<usize>,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits { max_depth: 256, max_doc_bytes: None, max_attr_bytes: None }
    }
}

impl ParseLimits {
    /// Cap element nesting depth.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Cap total input size.
    pub fn with_max_doc_bytes(mut self, bytes: usize) -> Self {
        self.max_doc_bytes = Some(bytes);
        self
    }

    /// Cap each decoded attribute value's size.
    pub fn with_max_attr_bytes(mut self, bytes: usize) -> Self {
        self.max_attr_bytes = Some(bytes);
        self
    }
}

/// Parse a complete XML document into an XDM tree rooted by a document node,
/// under the default [`ParseLimits`].
pub fn parse_document(input: &str) -> Result<Arc<Document>, ParseError> {
    parse_document_with(input, &ParseLimits::default())
}

/// Parse a complete XML document under explicit resource limits.
pub fn parse_document_with(
    input: &str,
    limits: &ParseLimits,
) -> Result<Arc<Document>, ParseError> {
    if let Some(cap) = limits.max_doc_bytes {
        if input.len() > cap {
            return Err(ParseError {
                offset: 0,
                message: format!(
                    "document is {} bytes, exceeding the {cap}-byte limit",
                    input.len()
                ),
                limit_exceeded: true,
            });
        }
    }
    let mut p = Parser::new_with_limits(input, *limits);
    p.skip_prolog()?;
    let mut builder = DocumentBuilder::new_document();
    // Misc (comments/PIs) may precede the root element.
    loop {
        p.skip_whitespace();
        if p.peek_str("<!--") {
            let c = p.parse_comment()?;
            builder.comment(c);
        } else if p.peek_str("<?") {
            let (target, content) = p.parse_pi()?;
            builder.processing_instruction(target, content);
        } else {
            break;
        }
    }
    if !p.peek_str("<") {
        return Err(p.err("expected root element"));
    }
    let mut scopes = NamespaceScopes::new();
    p.parse_element(&mut builder, &mut scopes)?;
    // Trailing misc.
    loop {
        p.skip_whitespace();
        if p.peek_str("<!--") {
            let c = p.parse_comment()?;
            builder.comment(c);
        } else if p.peek_str("<?") {
            let (target, content) = p.parse_pi()?;
            builder.processing_instruction(target, content);
        } else {
            break;
        }
    }
    p.skip_whitespace();
    if !p.at_end() {
        return Err(p.err("content after the root element"));
    }
    Ok(builder.finish())
}

/// Stack of in-scope namespace bindings.
struct NamespaceScopes {
    /// Each frame maps prefix → URI; empty-string prefix is the default
    /// element namespace; a binding to `None` un-declares.
    frames: Vec<HashMap<String, Option<String>>>,
}

impl NamespaceScopes {
    fn new() -> Self {
        let mut base = HashMap::new();
        base.insert("xml".to_string(), Some(XML_NS.to_string()));
        NamespaceScopes { frames: vec![base] }
    }

    fn push(&mut self) {
        self.frames.push(HashMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, prefix: &str, uri: &str) {
        let binding = if uri.is_empty() { None } else { Some(uri.to_string()) };
        // The stack starts with a base frame and pops only in lock-step with
        // pushes, but an empty stack must degrade to a fresh frame rather
        // than abort the process.
        if self.frames.is_empty() {
            self.frames.push(HashMap::new());
        }
        if let Some(frame) = self.frames.last_mut() {
            frame.insert(prefix.to_string(), binding);
        }
    }

    fn resolve(&self, prefix: &str) -> Option<Option<&str>> {
        for frame in self.frames.iter().rev() {
            if let Some(binding) = frame.get(prefix) {
                return Some(binding.as_deref());
            }
        }
        None
    }

    /// Resolve an element name: unprefixed elements take the default
    /// namespace.
    fn element_name(&self, q: &QName) -> Result<ExpandedName, String> {
        match &q.prefix {
            Some(p) => match self.resolve(p) {
                Some(Some(uri)) => Ok(ExpandedName::ns(uri, &*q.local)),
                Some(None) | None => Err(format!("unbound namespace prefix {p:?}")),
            },
            None => match self.resolve("") {
                Some(Some(uri)) => Ok(ExpandedName::ns(uri, &*q.local)),
                _ => Ok(ExpandedName::local(&*q.local)),
            },
        }
    }

    /// Resolve an attribute name: unprefixed attributes are in **no
    /// namespace** — the distinction Section 3.7 of the paper calls out
    /// ("default namespaces do not apply to XML attributes").
    fn attribute_name(&self, q: &QName) -> Result<ExpandedName, String> {
        match &q.prefix {
            Some(p) => match self.resolve(p) {
                Some(Some(uri)) => Ok(ExpandedName::ns(uri, &*q.local)),
                Some(None) | None => Err(format!("unbound namespace prefix {p:?}")),
            },
            None => Ok(ExpandedName::local(&*q.local)),
        }
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    limits: ParseLimits,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new_with_limits(input: &'a str, limits: ParseLimits) -> Self {
        Parser { input, pos: 0, limits, depth: 0 }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into(), limit_exceeded: false }
    }

    fn err_limit(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into(), limit_exceeded: true }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn peek_str(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn expect_str(&mut self, s: &str) -> Result<(), ParseError> {
        if self.peek_str(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    /// Skip the XML declaration and doctype, if present.
    fn skip_prolog(&mut self) -> Result<(), ParseError> {
        self.skip_whitespace();
        if self.peek_str("<?xml") {
            let end = self.rest().find("?>").ok_or_else(|| self.err("unterminated XML declaration"))?;
            self.pos += end + 2;
        }
        self.skip_whitespace();
        if self.peek_str("<!DOCTYPE") {
            // Skip to the matching '>': internal subsets use nested brackets,
            // and quoted literals (system/public identifiers, entity values)
            // may contain '>' or brackets that must not count.
            let mut depth = 0usize;
            while let Some(c) = self.bump() {
                match c {
                    '"' | '\'' => {
                        let quote = c;
                        loop {
                            match self.bump() {
                                None => {
                                    return Err(self.err("unterminated literal in DOCTYPE"))
                                }
                                Some(q) if q == quote => break,
                                Some(_) => {}
                            }
                        }
                    }
                    '[' => depth += 1,
                    ']' => depth = depth.saturating_sub(1),
                    '>' if depth == 0 => return Ok(()),
                    _ => {}
                }
            }
            return Err(self.err("unterminated DOCTYPE"));
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<QName, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '\u{B7}'))
        {
            self.bump();
        }
        let raw = &self.input[start..self.pos];
        QName::parse(raw).ok_or_else(|| ParseError {
            offset: start,
            message: format!("invalid name {raw:?}"),
            limit_exceeded: false,
        })
    }

    fn parse_comment(&mut self) -> Result<String, ParseError> {
        self.expect_str("<!--")?;
        let end = self
            .rest()
            .find("-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        let content = &self.rest()[..end];
        if content.contains("--") {
            return Err(self.err("'--' not allowed inside a comment"));
        }
        let content = content.to_string();
        self.pos += end + 3;
        Ok(content)
    }

    fn parse_pi(&mut self) -> Result<(String, String), ParseError> {
        self.expect_str("<?")?;
        let q = self.parse_name()?;
        if q.prefix.is_some() || !is_ncname(&q.local) {
            return Err(self.err("PI target must be an NCName"));
        }
        if q.local.eq_ignore_ascii_case("xml") {
            return Err(self.err("PI target 'xml' is reserved"));
        }
        self.skip_whitespace();
        let end = self.rest().find("?>").ok_or_else(|| self.err("unterminated processing instruction"))?;
        let content = self.rest()[..end].to_string();
        self.pos += end + 2;
        Ok((q.local.to_string(), content))
    }

    fn parse_cdata(&mut self) -> Result<String, ParseError> {
        self.expect_str("<![CDATA[")?;
        let end = self.rest().find("]]>").ok_or_else(|| self.err("unterminated CDATA section"))?;
        let content = self.rest()[..end].to_string();
        self.pos += end + 3;
        Ok(content)
    }

    /// Decode character data up to the next `<`, expanding entity and
    /// character references.
    fn parse_text(&mut self) -> Result<String, ParseError> {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            match c {
                '<' => break,
                '&' => out.push(self.parse_reference()?),
                ']' if self.peek_str("]]>") => {
                    return Err(self.err("']]>' not allowed in character data"))
                }
                _ => {
                    out.push(c);
                    self.bump();
                }
            }
        }
        Ok(out)
    }

    fn parse_reference(&mut self) -> Result<char, ParseError> {
        self.expect_str("&")?;
        let end = self
            .rest()
            .find(';')
            .ok_or_else(|| self.err("unterminated entity reference"))?;
        let name = &self.rest()[..end];
        let c = match name {
            "lt" => '<',
            "gt" => '>',
            "amp" => '&',
            "apos" => '\'',
            "quot" => '"',
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.err(format!("invalid character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point in &{name};")))?
            }
            _ if name.starts_with('#') => {
                let code: u32 = name[1..]
                    .parse()
                    .map_err(|_| self.err(format!("invalid character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.err(format!("invalid code point in &{name};")))?
            }
            _ => return Err(self.err(format!("unknown entity &{name};"))),
        };
        self.pos += end + 1;
        Ok(c)
    }

    fn parse_attribute_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.bump() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            if let Some(cap) = self.limits.max_attr_bytes {
                if out.len() > cap {
                    return Err(self.err_limit(format!(
                        "attribute value exceeds the {cap}-byte limit"
                    )));
                }
            }
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    self.bump();
                    return Ok(out);
                }
                Some('<') => return Err(self.err("'<' not allowed in attribute value")),
                Some('&') => out.push(self.parse_reference()?),
                // Attribute-value normalization: whitespace → space.
                Some('\t' | '\n' | '\r') => {
                    out.push(' ');
                    self.bump();
                }
                Some(c) => {
                    out.push(c);
                    self.bump();
                }
            }
        }
    }

    fn parse_element(
        &mut self,
        builder: &mut DocumentBuilder,
        scopes: &mut NamespaceScopes,
    ) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.limits.max_depth {
            return Err(self.err_limit(format!(
                "element nesting exceeds the maximum depth of {}",
                self.limits.max_depth
            )));
        }
        let result = self.parse_element_inner(builder, scopes);
        self.depth -= 1;
        result
    }

    fn parse_element_inner(
        &mut self,
        builder: &mut DocumentBuilder,
        scopes: &mut NamespaceScopes,
    ) -> Result<(), ParseError> {
        self.expect_str("<")?;
        let name = self.parse_name()?;
        let open_offset = self.pos;

        // Collect raw attributes first: namespace declarations in the tag
        // apply to the tag's own name.
        let mut raw_attrs: Vec<(QName, String, usize)> = Vec::new();
        loop {
            let before = self.pos;
            self.skip_whitespace();
            if self.peek_str("/>") || self.peek_str(">") {
                break;
            }
            if self.pos == before {
                return Err(self.err("expected whitespace between attributes"));
            }
            let at = self.pos;
            let aname = self.parse_name()?;
            self.skip_whitespace();
            self.expect_str("=")?;
            self.skip_whitespace();
            let value = self.parse_attribute_value()?;
            raw_attrs.push((aname, value, at));
        }

        scopes.push();
        for (aname, value, _) in &raw_attrs {
            match (&aname.prefix, &*aname.local) {
                (None, "xmlns") => scopes.declare("", value),
                (Some(p), local) if &**p == "xmlns" => scopes.declare(local, value),
                _ => {}
            }
        }

        let ename = scopes
            .element_name(&name)
            .map_err(|m| ParseError { offset: open_offset, message: m, limit_exceeded: false })?;
        builder.start_element(ename);

        let mut seen: Vec<ExpandedName> = Vec::new();
        for (aname, value, at) in &raw_attrs {
            let is_nsdecl = matches!(
                (&aname.prefix, &*aname.local),
                (None, "xmlns")
            ) || aname.prefix.as_deref() == Some("xmlns");
            if is_nsdecl {
                continue;
            }
            let rname = scopes
                .attribute_name(aname)
                .map_err(|m| ParseError { offset: *at, message: m, limit_exceeded: false })?;
            if seen.contains(&rname) {
                return Err(ParseError {
                    offset: *at,
                    message: format!("duplicate attribute {rname}"),
                    limit_exceeded: false,
                });
            }
            seen.push(rname.clone());
            builder.attribute(rname, value.clone());
        }

        if self.peek_str("/>") {
            self.expect_str("/>")?;
            builder.end_element();
            scopes.pop();
            return Ok(());
        }
        self.expect_str(">")?;

        // Content.
        loop {
            if self.peek_str("</") {
                break;
            } else if self.peek_str("<!--") {
                let c = self.parse_comment()?;
                builder.comment(c);
            } else if self.peek_str("<![CDATA[") {
                let c = self.parse_cdata()?;
                builder.text(c);
            } else if self.peek_str("<?") {
                let (target, content) = self.parse_pi()?;
                builder.processing_instruction(target, content);
            } else if self.peek_str("<") {
                self.parse_element(builder, scopes)?;
            } else if self.at_end() {
                return Err(self.err(format!("unterminated element <{name}>")));
            } else {
                let text = self.parse_text()?;
                if !text.is_empty() {
                    builder.text(text);
                }
            }
        }

        self.expect_str("</")?;
        let close = self.parse_name()?;
        if close != name {
            return Err(self.err(format!("mismatched end tag: <{name}> closed by </{close}>")));
        }
        self.skip_whitespace();
        self.expect_str(">")?;
        builder.end_element();
        scopes.pop();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdb_xdm::{NodeKind, TypeAnnotation};

    #[test]
    fn parses_the_papers_order_document() {
        let doc = parse_document(
            "<order id=\"1001\">\
               <date>January 1, 2001</date>\
               <lineitem><product id=\"p1\"/></lineitem>\
             </order>",
        )
        .unwrap();
        let root = doc.root();
        assert_eq!(root.kind(), NodeKind::Document);
        let order = root.children().next().unwrap();
        assert_eq!(order.name().unwrap().local.as_ref(), "order");
        assert_eq!(order.attributes().next().unwrap().string_value(), "1001");
        let children: Vec<_> = order.children().collect();
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].string_value(), "January 1, 2001");
    }

    #[test]
    fn mixed_content_price_usd() {
        // The Section 3.8 document: the price *element* string-value is
        // "99.50USD" while its first text node is "99.50".
        let doc = parse_document(
            "<order><lineitem><price>99.50<currency>USD</currency></price></lineitem></order>",
        )
        .unwrap();
        let price = doc
            .root()
            .descendants()
            .find(|n| n.name().map(|q| &*q.local == "price").unwrap_or(false))
            .unwrap();
        assert_eq!(price.string_value(), "99.50USD");
        let first_text = price
            .children()
            .find(|c| c.kind() == NodeKind::Text)
            .unwrap();
        assert_eq!(first_text.string_value(), "99.50");
    }

    #[test]
    fn default_namespace_applies_to_elements_not_attributes() {
        let doc = parse_document(
            "<order xmlns=\"http://ournamespaces.com/order\" status=\"open\">\
               <lineitem price=\"99.50\"/>\
             </order>",
        )
        .unwrap();
        let order = doc.root().children().next().unwrap();
        assert_eq!(
            order.name().unwrap().ns.as_deref(),
            Some("http://ournamespaces.com/order")
        );
        // attribute stays in no namespace — the Section 3.7 subtlety.
        let status = order.attributes().next().unwrap();
        assert_eq!(status.name().unwrap().ns, None);
        let li = order.children().next().unwrap();
        assert_eq!(
            li.name().unwrap().ns.as_deref(),
            Some("http://ournamespaces.com/order")
        );
    }

    #[test]
    fn prefixed_namespaces_resolve() {
        let doc = parse_document(
            "<c:customer xmlns:c=\"http://ournamespaces.com/customer\">\
               <c:nation>1</c:nation>\
             </c:customer>",
        )
        .unwrap();
        let cust = doc.root().children().next().unwrap();
        let name = cust.name().unwrap();
        assert_eq!(name.ns.as_deref(), Some("http://ournamespaces.com/customer"));
        assert_eq!(name.local.as_ref(), "customer");
    }

    #[test]
    fn namespace_undeclaration_and_shadowing() {
        let doc = parse_document(
            "<a xmlns=\"http://one\"><b xmlns=\"\"><c/></b><d xmlns=\"http://two\"/></a>",
        )
        .unwrap();
        let a = doc.root().children().next().unwrap();
        let b = a.children().next().unwrap();
        let c = b.children().next().unwrap();
        let d = a.children().nth(1).unwrap();
        assert_eq!(a.name().unwrap().ns.as_deref(), Some("http://one"));
        assert_eq!(b.name().unwrap().ns, None);
        assert_eq!(c.name().unwrap().ns, None);
        assert_eq!(d.name().unwrap().ns.as_deref(), Some("http://two"));
    }

    #[test]
    fn entities_and_char_refs() {
        let doc = parse_document("<e a=\"&lt;&amp;&quot;\">&#65;&#x42;&gt;</e>").unwrap();
        let e = doc.root().children().next().unwrap();
        assert_eq!(e.string_value(), "AB>");
        assert_eq!(e.attributes().next().unwrap().string_value(), "<&\"");
    }

    #[test]
    fn cdata_is_text() {
        let doc = parse_document("<e><![CDATA[a < b & c]]></e>").unwrap();
        let e = doc.root().children().next().unwrap();
        assert_eq!(e.string_value(), "a < b & c");
        // CDATA adjacent to text merges into one text node
        let doc2 = parse_document("<e>x<![CDATA[y]]>z</e>").unwrap();
        let e2 = doc2.root().children().next().unwrap();
        assert_eq!(e2.children().count(), 1);
        assert_eq!(e2.string_value(), "xyz");
    }

    #[test]
    fn comments_and_pis_preserved() {
        let doc = parse_document("<?xml version=\"1.0\"?><!-- top --><e><?target data?><!-- in --></e>")
            .unwrap();
        let root = doc.root();
        let kinds: Vec<_> = root.children().map(|c| c.kind()).collect();
        assert_eq!(kinds, vec![NodeKind::Comment, NodeKind::Element]);
        let e = root.children().nth(1).unwrap();
        let inner: Vec<_> = e.children().map(|c| c.kind()).collect();
        assert_eq!(
            inner,
            vec![NodeKind::ProcessingInstruction, NodeKind::Comment]
        );
    }

    #[test]
    fn attribute_value_normalization() {
        let doc = parse_document("<e a=\"x\ny\tz\"/>").unwrap();
        let a = doc.root().children().next().unwrap().attributes().next().unwrap();
        assert_eq!(a.string_value(), "x y z");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "<a><b></a></b>",
            "<a>",
            "<a x=1/>",
            "<a x=\"1\" x=\"2\"/>",
            "<a><a/>",
            "text only",
            "<a/><b/>",
            "<a>&unknown;</a>",
            "<p:a xmlns:q=\"http://x\"/>",
            "<a><!-- -- --></a>",
        ] {
            assert!(parse_document(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn duplicate_attributes_via_namespaces_rejected() {
        // Same expanded name through two prefixes.
        let bad = "<e xmlns:a=\"http://x\" xmlns:b=\"http://x\" a:k=\"1\" b:k=\"2\"/>";
        assert!(parse_document(bad).is_err());
    }

    #[test]
    fn doctype_is_skipped() {
        let doc = parse_document("<?xml version=\"1.0\"?><!DOCTYPE order [<!ELEMENT order ANY>]><order/>")
            .unwrap();
        assert_eq!(
            doc.root().children().next().unwrap().name().unwrap().local.as_ref(),
            "order"
        );
    }

    #[test]
    fn parsed_nodes_are_untyped() {
        let doc = parse_document("<e a=\"1\">2</e>").unwrap();
        let e = doc.root().children().next().unwrap();
        assert_eq!(e.annotation(), TypeAnnotation::Untyped);
        assert_eq!(
            e.attributes().next().unwrap().annotation(),
            TypeAnnotation::UntypedAtomic
        );
    }

    #[test]
    fn doctype_with_quoted_markup_is_skipped() {
        // '>' and brackets inside quoted literals must not end the DOCTYPE.
        let doc = parse_document(
            "<!DOCTYPE order SYSTEM \"od]>d.dtd\" [<!ENTITY e \"a>b\">]><order/>",
        )
        .unwrap();
        assert_eq!(
            doc.root().children().next().unwrap().name().unwrap().local.as_ref(),
            "order"
        );
        assert!(parse_document("<!DOCTYPE order SYSTEM \"unclosed><order/>").is_err());
    }

    #[test]
    fn nesting_depth_is_limited() {
        let deep = format!("{}x{}", "<a>".repeat(300), "</a>".repeat(300));
        let err = parse_document(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "got: {}", err.message);
        // A custom limit admits what the default rejects.
        let limits = ParseLimits::default().with_max_depth(512);
        assert!(parse_document_with(&deep, &limits).is_ok());
        // And a tight limit rejects shallow documents.
        let tight = ParseLimits::default().with_max_depth(2);
        assert!(parse_document_with("<a><b><c/></b></a>", &tight).is_err());
    }

    #[test]
    fn doc_and_attr_size_limits() {
        let limits = ParseLimits::default().with_max_doc_bytes(16);
        assert!(parse_document_with("<a/>", &limits).is_ok());
        assert!(parse_document_with("<a>0123456789012345</a>", &limits).is_err());

        let limits = ParseLimits::default().with_max_attr_bytes(8);
        assert!(parse_document_with("<a b=\"short\"/>", &limits).is_ok());
        let err =
            parse_document_with("<a b=\"far too long a value\"/>", &limits).unwrap_err();
        assert!(err.message.contains("attribute value"), "got: {}", err.message);
    }

    #[test]
    fn whitespace_only_text_is_preserved() {
        let doc = parse_document("<a> <b/> </a>").unwrap();
        let a = doc.root().children().next().unwrap();
        assert_eq!(a.children().count(), 3);
        assert_eq!(a.string_value(), "  ");
    }
}
