//! # xqdb-xmlparse — XML 1.0 parsing and serialization
//!
//! A non-validating, namespace-aware XML parser that produces immutable
//! [`xqdb_xdm::Document`] trees, and a serializer that round-trips them.
//!
//! Scope is the XML the paper's workloads need: elements, attributes,
//! namespace declarations (`xmlns`, `xmlns:p`), text with the five built-in
//! entities and character references, CDATA sections, comments, processing
//! instructions, and an optional XML declaration. DTDs are recognized and
//! skipped (non-validating). Mixed content is preserved exactly — the
//! `<price>99.50<currency>USD</currency></price>` example of Section 3.8
//! depends on it.

pub mod parser;
pub mod serialize;

pub use parser::{parse_document, parse_document_with, ParseError, ParseLimits};
pub use serialize::{serialize_node, serialize_sequence};
