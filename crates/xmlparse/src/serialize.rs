//! Serialization of XDM nodes and sequences back to XML text.
//!
//! Used by the SQL/XML layer to render result rows the way the paper prints
//! them (`row 1: <lineitem price="101.00">...</lineitem>`), and by tests to
//! compare structural output.

use std::fmt::Write as _;

use xqdb_xdm::{Item, NodeHandle, NodeKind};

/// Serialize one node to XML text. Namespace declarations are re-synthesized
/// minimally: a declaration is emitted on an element whenever its (or its
/// attributes') namespace is not already in scope from an ancestor in the
/// serialized output.
pub fn serialize_node(node: &NodeHandle) -> String {
    let mut out = String::new();
    let mut scope = ScopeTracker::default();
    write_node(&mut out, node, &mut scope);
    out
}

/// Serialize a sequence: nodes as XML, atomic values via their lexical form,
/// adjacent atomic values separated by a single space (the XQuery
/// serialization rule).
pub fn serialize_sequence(seq: &[Item]) -> String {
    let mut out = String::new();
    let mut prev_atomic = false;
    for item in seq {
        match item {
            Item::Node(n) => {
                out.push_str(&serialize_node(n));
                prev_atomic = false;
            }
            Item::Atomic(a) => {
                if prev_atomic {
                    out.push(' ');
                }
                out.push_str(&escape_text(&a.lexical()));
                prev_atomic = true;
            }
        }
    }
    out
}

/// Tracks (prefix → uri) bindings established by ancestors during
/// serialization, so nested elements don't re-declare.
#[derive(Default)]
struct ScopeTracker {
    stack: Vec<Vec<(String, String)>>,
}

impl ScopeTracker {
    fn in_scope(&self, prefix: &str, uri: &str) -> bool {
        for frame in self.stack.iter().rev() {
            for (p, u) in frame.iter().rev() {
                if p == prefix {
                    return u == uri;
                }
            }
        }
        // Unprefixed names with no binding are in no namespace.
        prefix.is_empty() && uri.is_empty()
    }
}

fn write_node(out: &mut String, node: &NodeHandle, scope: &mut ScopeTracker) {
    match node.kind() {
        NodeKind::Document => {
            for child in node.children() {
                write_node(out, &child, scope);
            }
        }
        NodeKind::Element => {
            // Elements always carry a name; a nameless one (which would
            // indicate a builder bug) serializes as nothing rather than
            // aborting the process.
            let Some(name) = node.name() else { return };
            let uri = name.ns.as_deref().unwrap_or("");
            // Elements serialize with the default prefix for their namespace.
            let mut decls: Vec<(String, String)> = Vec::new();
            if !scope.in_scope("", uri) {
                decls.push((String::new(), uri.to_string()));
            }
            let _ = write!(out, "<{}", name.local);
            // Attribute namespaces get generated prefixes.
            let mut attr_names: Vec<(Option<String>, NodeHandle)> = Vec::new();
            let mut gen = 0usize;
            for attr in node.attributes() {
                let Some(aname) = attr.name() else { continue };
                match aname.ns.as_deref() {
                    None => attr_names.push((None, attr)),
                    Some(auri) => {
                        // Find or mint a prefix for this URI.
                        let existing = decls
                            .iter()
                            .find(|(p, u)| !p.is_empty() && u == auri)
                            .map(|(p, _)| p.clone());
                        let prefix = existing.unwrap_or_else(|| {
                            gen += 1;
                            let p = format!("ns{gen}");
                            decls.push((p.clone(), auri.to_string()));
                            p
                        });
                        attr_names.push((Some(prefix), attr));
                    }
                }
            }
            for (prefix, uri) in &decls {
                if prefix.is_empty() {
                    let _ = write!(out, " xmlns=\"{}\"", escape_attr(uri));
                } else {
                    let _ = write!(out, " xmlns:{}=\"{}\"", prefix, escape_attr(uri));
                }
            }
            for (prefix, attr) in &attr_names {
                let Some(aname) = attr.name() else { continue };
                match prefix {
                    None => {
                        let _ = write!(
                            out,
                            " {}=\"{}\"",
                            aname.local,
                            escape_attr(&attr.string_value())
                        );
                    }
                    Some(p) => {
                        let _ = write!(
                            out,
                            " {}:{}=\"{}\"",
                            p,
                            aname.local,
                            escape_attr(&attr.string_value())
                        );
                    }
                }
            }
            let has_children = node.children().next().is_some();
            if !has_children {
                out.push_str("/>");
                return;
            }
            out.push('>');
            scope.stack.push(decls);
            for child in node.children() {
                write_node(out, &child, scope);
            }
            scope.stack.pop();
            let _ = write!(out, "</{}>", name.local);
        }
        NodeKind::Attribute => {
            // A bare attribute serializes as its value (it cannot appear in
            // element content).
            out.push_str(&escape_text(&node.string_value()));
        }
        NodeKind::Text => out.push_str(&escape_text(&node.string_value())),
        NodeKind::Comment => {
            let _ = write!(out, "<!--{}-->", node.string_value());
        }
        NodeKind::ProcessingInstruction => {
            let target = node.name().map(|n| n.local.to_string()).unwrap_or_default();
            let _ = write!(out, "<?{} {}?>", target, node.string_value());
        }
    }
}

/// Escape character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value (double-quoted context).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;
    use xqdb_xdm::{AtomicValue, Item};

    fn roundtrip(xml: &str) -> String {
        let doc = parse_document(xml).unwrap();
        serialize_node(&doc.root())
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(
            roundtrip("<order id=\"1\"><lineitem price=\"99.50\">x</lineitem></order>"),
            "<order id=\"1\"><lineitem price=\"99.50\">x</lineitem></order>"
        );
    }

    #[test]
    fn empty_element_shorthand() {
        assert_eq!(roundtrip("<a><b></b></a>"), "<a><b/></a>");
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(roundtrip("<a b=\"&quot;&amp;\">&lt;x&gt;</a>"), "<a b=\"&quot;&amp;\">&lt;x&gt;</a>");
    }

    #[test]
    fn default_namespace_redeclared_once() {
        let s = roundtrip("<a xmlns=\"http://x\"><b><c/></b></a>");
        assert_eq!(s, "<a xmlns=\"http://x\"><b><c/></b></a>");
    }

    #[test]
    fn namespace_change_redeclares() {
        let s = roundtrip("<a xmlns=\"http://x\"><b xmlns=\"http://y\"/></a>");
        assert_eq!(s, "<a xmlns=\"http://x\"><b xmlns=\"http://y\"/></a>");
    }

    #[test]
    fn sequence_serialization_spaces_atomics() {
        let seq = vec![
            Item::Atomic(AtomicValue::Integer(1)),
            Item::Atomic(AtomicValue::Integer(2)),
        ];
        assert_eq!(serialize_sequence(&seq), "1 2");
    }

    #[test]
    fn comment_and_pi_roundtrip() {
        let s = roundtrip("<a><!-- hi --><?t d?></a>");
        assert_eq!(s, "<a><!-- hi --><?t d?></a>");
    }

    #[test]
    fn mixed_content_roundtrip() {
        let xml = "<price>99.50<currency>USD</currency></price>";
        assert_eq!(roundtrip(xml), xml);
    }
}
