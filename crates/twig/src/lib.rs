//! Structural labels and holistic twig joins.
//!
//! Every element and attribute node of an ingested document gets a
//! *(pre, post, level)* label at insert time: `pre` is the node's
//! document-order position, `post` the position of its last descendant
//! (so `a` is an ancestor of `d` iff `a.pre < d.pre && d.pre <= a.post`),
//! and `level` its depth. Labels are grouped into **streams**, one per
//! rooted path of the table's path synopsis, so a stream holds exactly
//! the nodes the dataguide says can match a given pattern node.
//!
//! A [`Pattern`] is a small tree of named steps joined by child or
//! descendant edges — the shape of a branching path query like
//! `//order[lineitem/@price]//id`. [`resolve_pattern`] maps each pattern
//! node to the synopsis paths that can produce it (pruning impossible
//! branches), and [`TwigJoin`] runs a TwigStack-style merge of the
//! resolved streams: one pass over a row's labels with a stack per
//! pattern node, partial matches encoded as open stack entries with a
//! child-satisfaction bitmask.
//!
//! The join is a conservative pre-selection in the sense of the paper's
//! Definition 1: a row it rejects provably cannot match the pattern, and
//! every surviving row is re-checked by the real evaluator — false
//! positives cost time, false negatives are impossible.
//!
//! The crate is std-only and knows nothing about tables, documents or
//! queries: callers feed it rendered path strings (clark-notation
//! components separated by `/`), label entries, and patterns.

use std::collections::HashMap;

/// One labeled node: which row and XML cell it lives in, plus its
/// (pre, post, level) structural label.
///
/// `pre` and `post` are arena node ids: `pre` is the node's own id (ids
/// are assigned in document order) and `post` the id of its last
/// descendant (for attributes, its own id). `level` is the depth of the
/// node, with the root element at 1 and its attributes/children at 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelEntry {
    /// Row id within the owning table.
    pub row: u64,
    /// Ordinal of the XML cell within the row (tables may have several
    /// XML columns; labels from different cells must never join).
    pub cell: u32,
    /// Document-order position (the node's arena id).
    pub pre: u32,
    /// Arena id of the node's last descendant (own id for attributes):
    /// `a` is a proper ancestor of `d` iff `a.pre < d.pre && d.pre <= a.post`.
    pub post: u32,
    /// Depth: root element 1, its attributes and children 2, and so on.
    pub level: u32,
}

/// Per-table label streams, keyed by rooted-path hash.
///
/// Streams are append-only and ordered: entries arrive in (row, cell,
/// pre) order because rows are labeled as they are inserted and each
/// document is walked in document order. [`LabelStore::is_complete_for`]
/// reports whether every row of the table was labeled — recovery paths
/// that adopt rows without re-parsing their XML mark the store
/// incomplete, and the planner then declines the twig path for the
/// table (falling back to navigation, which is always correct).
#[derive(Debug, Default, Clone)]
pub struct LabelStore {
    streams: HashMap<u64, Vec<LabelEntry>>,
    labeled_rows: u64,
    incomplete: bool,
}

impl LabelStore {
    /// Append one label to the stream for `path`. No-op once the store
    /// has been marked incomplete (the labels could never be trusted).
    pub fn record_label(&mut self, path: u64, entry: LabelEntry) {
        if self.incomplete {
            return;
        }
        self.streams.entry(path).or_default().push(entry);
    }

    /// Count one fully labeled row. Called once per inserted row after
    /// all its XML cells have been walked.
    pub fn finish_row(&mut self) {
        self.labeled_rows += 1;
    }

    /// Record that at least one row was adopted without labels (e.g.
    /// page-image recovery, or ingest with labeling disabled). Sticky:
    /// the table's twig path stays disabled until the store is rebuilt.
    pub fn mark_incomplete(&mut self) {
        self.incomplete = true;
        self.streams.clear();
    }

    /// Remove every label of `row` from every stream (row DELETE, or the
    /// un-label half of a document REPLACE). Streams are sorted by row,
    /// so each removal is one binary-searched drain; streams left empty
    /// are dropped so the store compares equal to one rebuilt from
    /// scratch over the surviving rows. No-op once incomplete. Does not
    /// touch `labeled_rows`: [`LabelStore::is_complete_for`] vouches for
    /// the rowid *domain*, and a deleted rowid stays in the domain.
    pub fn prune_row(&mut self, row: u64) {
        if self.incomplete {
            return;
        }
        self.streams.retain(|_, v| {
            let lo = v.partition_point(|e| e.row < row);
            let hi = v.partition_point(|e| e.row <= row);
            v.drain(lo..hi);
            !v.is_empty()
        });
    }

    /// Insert one label at its sorted `(row, cell, pre)` position — the
    /// re-label half of a document REPLACE, where the new labels of an
    /// old rowid land between neighbouring rows' entries instead of at
    /// the end. Equal keys keep insertion order, so a row walked in
    /// document order rebuilds exactly the stream an ingest-time
    /// labeling would have produced. No-op once incomplete.
    pub fn insert_label_sorted(&mut self, path: u64, entry: LabelEntry) {
        if self.incomplete {
            return;
        }
        let v = self.streams.entry(path).or_default();
        let key = (entry.row, entry.cell, entry.pre);
        let pos = v.partition_point(|e| (e.row, e.cell, e.pre) <= key);
        v.insert(pos, entry);
    }

    /// True if every one of the table's `rows` rows was labeled.
    pub fn is_complete_for(&self, rows: u64) -> bool {
        !self.incomplete && self.labeled_rows == rows
    }

    /// True if the store was marked incomplete.
    pub fn is_incomplete(&self) -> bool {
        self.incomplete
    }

    /// Number of rows labeled so far.
    pub fn labeled_rows(&self) -> u64 {
        self.labeled_rows
    }

    /// The label stream for a path hash (empty if the path was never
    /// seen).
    pub fn stream(&self, path: u64) -> &[LabelEntry] {
        self.streams.get(&path).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All streams, for offline inspection. Iteration order is
    /// unspecified; callers sort.
    pub fn streams(&self) -> impl Iterator<Item = (u64, &[LabelEntry])> {
        self.streams.iter().map(|(&h, v)| (h, v.as_slice()))
    }
}

/// How a pattern node relates to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Direct child (or attribute-of) — `a/b`, `a/@x`.
    Child,
    /// Proper descendant — `a//b`. For attributes this is the
    /// `//@x` shape: any attribute strictly inside the ancestor's
    /// interval, which includes the ancestor's own attributes.
    Descendant,
}

/// One node of a twig pattern: a named step plus the edge to its parent
/// (for the root, the edge from the document root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// Index of the parent node, `None` for the root. Parents always
    /// precede children, so `parent < own index`.
    pub parent: Option<usize>,
    /// Edge from the parent (or from the document root).
    pub edge: Edge,
    /// The path segment this node matches: a clark-notation name
    /// (`{uri}local` or bare `local`), prefixed with `@` for
    /// attributes. This is exactly one `/`-separated segment of the
    /// synopsis's rendered path strings.
    pub component: String,
    /// True for attribute nodes (always leaves).
    pub attribute: bool,
}

/// A twig pattern: a tree of [`PatternNode`]s with node 0 as the root.
///
/// Every node is *required*: a row matches the pattern iff there is an
/// embedding of the whole tree into the row's document respecting names
/// and edges. Queries lower their optional parts by simply omitting
/// them — omission only widens the match set, which is the conservative
/// direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Nodes in parent-before-child order; node 0 is the root.
    pub nodes: Vec<PatternNode>,
}

/// Bitmask child positions are limited to a `u64`; capping total nodes
/// at 64 guarantees every node has at most 63 children.
pub const MAX_PATTERN_NODES: usize = 64;

impl Pattern {
    /// A single-node pattern rooted at `component`.
    pub fn root(edge: Edge, component: impl Into<String>, attribute: bool) -> Self {
        Pattern {
            nodes: vec![PatternNode { parent: None, edge, component: component.into(), attribute }],
        }
    }

    /// Append a child of `parent` and return its index, or `None` once
    /// the [`MAX_PATTERN_NODES`] cap is reached (callers then abandon
    /// the lowering — never matching fewer rows, just opting out).
    pub fn add_child(
        &mut self,
        parent: usize,
        edge: Edge,
        component: impl Into<String>,
        attribute: bool,
    ) -> Option<usize> {
        if self.nodes.len() >= MAX_PATTERN_NODES || parent >= self.nodes.len() {
            return None;
        }
        let idx = self.nodes.len();
        self.nodes.push(PatternNode {
            parent: Some(parent),
            edge,
            component: component.into(),
            attribute,
        });
        Some(idx)
    }

    /// Child indices per node, in pattern order.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (idx, node) in self.nodes.iter().enumerate() {
            if let Some(p) = node.parent {
                out[p].push(idx);
            }
        }
        out
    }

    /// True if any edge is a descendant edge — the shape the signature
    /// prefilter cannot serve.
    pub fn has_descendant_edge(&self) -> bool {
        self.nodes.iter().any(|n| n.edge == Edge::Descendant)
    }

    /// True if any node has two or more children (a genuine branch).
    pub fn has_branch(&self) -> bool {
        self.children().iter().any(|c| c.len() >= 2)
    }

    /// Render the pattern for EXPLAIN output, e.g.
    /// `//order[/lineitem[/@price]][//id]`.
    pub fn render(&self) -> String {
        let children = self.children();
        let mut out = String::new();
        self.render_node(0, &children, &mut out);
        out
    }

    fn render_node(&self, idx: usize, children: &[Vec<usize>], out: &mut String) {
        let node = &self.nodes[idx];
        out.push_str(match node.edge {
            Edge::Child => "/",
            Edge::Descendant => "//",
        });
        out.push_str(&node.component);
        for &c in &children[idx] {
            out.push('[');
            self.render_node(c, children, out);
            out.push(']');
        }
    }
}

/// Split a rendered synopsis path (`/order/lineitem/@price`,
/// `/{urn:a/b}x/y`) into its segments. `/` inside clark braces belongs
/// to the namespace URI, not the path.
pub fn split_rendered_path(rendered: &str) -> Vec<&str> {
    let mut segments = Vec::new();
    let mut depth = 0usize;
    let mut start: Option<usize> = None;
    for (i, b) in rendered.bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            b'/' if depth == 0 => {
                if let Some(s) = start {
                    segments.push(&rendered[s..i]);
                }
                start = Some(i + 1);
                continue;
            }
            _ => {}
        }
        if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        if s < rendered.len() {
            segments.push(&rendered[s..]);
        }
    }
    segments
}

/// Map each pattern node to the synopsis paths (given as
/// `(rendered, hash)` pairs) that can produce a matching node.
///
/// A path matches a node when its last segment equals the node's
/// component and its parent prefix satisfies the node's edge: for a
/// `Child` edge the exact length-minus-one prefix must be in the parent
/// node's set, for a `Descendant` edge any proper prefix; the root's
/// edge constrains the path's length (a `Child` root is a direct child
/// of the document root, so exactly one segment).
///
/// Every proper prefix of a synopsis path is itself a synopsis path
/// (the ingest walker visits all ancestors), so prefix lookups resolve
/// within `paths`. An empty set for any node means the dataguide proves
/// the pattern matches nothing in this table.
pub fn resolve_pattern(pattern: &Pattern, paths: &[(&str, u64)]) -> Vec<Vec<u64>> {
    let split: Vec<Vec<&str>> = paths.iter().map(|(r, _)| split_rendered_path(r)).collect();
    let mut by_segments: HashMap<&[&str], usize> = HashMap::with_capacity(split.len());
    for (i, segs) in split.iter().enumerate() {
        by_segments.insert(segs.as_slice(), i);
    }
    let mut sets: Vec<Vec<bool>> = Vec::with_capacity(pattern.nodes.len());
    for node in &pattern.nodes {
        let mut set = vec![false; paths.len()];
        for (i, segs) in split.iter().enumerate() {
            let Some(last) = segs.last() else { continue };
            if *last != node.component.as_str() {
                continue;
            }
            let ok = match node.parent {
                None => match node.edge {
                    Edge::Child => segs.len() == 1,
                    Edge::Descendant => true,
                },
                Some(p) => match node.edge {
                    Edge::Child => {
                        segs.len() >= 2
                            && by_segments
                                .get(&segs[..segs.len() - 1])
                                .is_some_and(|&idx| sets[p][idx])
                    }
                    Edge::Descendant => (1..segs.len()).any(|k| {
                        by_segments.get(&segs[..k]).is_some_and(|&idx| sets[p][idx])
                    }),
                },
            };
            if ok {
                set[i] = true;
            }
        }
        sets.push(set);
    }
    sets.iter()
        .map(|set| {
            let mut hashes: Vec<u64> = set
                .iter()
                .enumerate()
                .filter(|(_, &on)| on)
                .map(|(i, _)| paths[i].1)
                .collect();
            hashes.sort_unstable();
            hashes.dedup();
            hashes
        })
        .collect()
}

/// An open (pushed, not yet popped) stack entry during the sweep: a
/// node that may still become part of a match, with a bitmask of the
/// child positions already proven below it.
#[derive(Debug, Clone, Copy)]
struct OpenEntry {
    pre: u32,
    post: u32,
    level: u32,
    mask: u64,
}

/// A holistic twig join over one table's label streams: the pattern,
/// the streams resolved for each pattern node, and the candidate row
/// set (rows that have at least one label in every node's streams).
pub struct TwigJoin<'a> {
    pattern: &'a Pattern,
    children: Vec<Vec<usize>>,
    full_mask: Vec<u64>,
    /// Per pattern node, the resolved streams (sorted by row).
    streams: Vec<Vec<&'a [LabelEntry]>>,
    /// Sorted rows that survive the per-node presence intersection.
    candidates: Vec<u64>,
}

impl<'a> TwigJoin<'a> {
    /// Build a join from a pattern, the table's label store, and the
    /// per-node path hashes from [`resolve_pattern`].
    pub fn new(pattern: &'a Pattern, store: &'a LabelStore, resolved: &[Vec<u64>]) -> Self {
        let children = pattern.children();
        // MAX_PATTERN_NODES caps children at 63, so the shift is safe.
        let full_mask: Vec<u64> =
            children.iter().map(|c| (1u64 << c.len().min(63)) - 1).collect();
        let streams: Vec<Vec<&[LabelEntry]>> = resolved
            .iter()
            .map(|hashes| {
                hashes.iter().map(|&h| store.stream(h)).filter(|s| !s.is_empty()).collect()
            })
            .collect();
        let mut candidates: Option<Vec<u64>> = None;
        for node_streams in &streams {
            let rows = distinct_rows(node_streams);
            candidates = Some(match candidates {
                None => rows,
                Some(prev) => intersect_sorted(&prev, &rows),
            });
            if candidates.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        TwigJoin {
            pattern,
            children,
            full_mask,
            streams,
            candidates: candidates.unwrap_or_default(),
        }
    }

    /// Rows that have at least one label in every pattern node's
    /// streams — the only rows [`Self::matches_row`] can accept.
    pub fn candidates(&self) -> &[u64] {
        &self.candidates
    }

    /// True if `row` is in the candidate set.
    pub fn is_candidate(&self, row: u64) -> bool {
        self.candidates.binary_search(&row).is_ok()
    }

    /// Run the stack-merge over one row's labels: true iff some
    /// embedding of the whole pattern exists in one of the row's XML
    /// cells.
    pub fn matches_row(&self, row: u64) -> bool {
        // Gather this row's events: (label, pattern node) pairs, one per
        // stream occurrence, ordered by (cell, pre, node).
        let mut events: Vec<(LabelEntry, usize)> = Vec::new();
        for (node, node_streams) in self.streams.iter().enumerate() {
            for stream in node_streams {
                let lo = stream.partition_point(|e| e.row < row);
                let hi = stream.partition_point(|e| e.row <= row);
                for e in &stream[lo..hi] {
                    events.push((*e, node));
                }
            }
        }
        events.sort_unstable_by_key(|(e, node)| (e.cell, e.pre, *node));

        let mut stacks: Vec<Vec<OpenEntry>> = vec![Vec::new(); self.pattern.nodes.len()];
        let mut current_cell = None;
        for (entry, node) in events {
            if current_cell != Some(entry.cell) {
                // New document cell: finish the previous one entirely.
                if self.drain(&mut stacks, u32::MAX) {
                    return true;
                }
                current_cell = Some(entry.cell);
            }
            // Pop everything that ends before this node starts; what
            // remains on each stack is an ancestor chain of `entry`.
            if self.drain(&mut stacks, entry.pre) {
                return true;
            }
            stacks[node].push(OpenEntry {
                pre: entry.pre,
                post: entry.post,
                level: entry.level,
                mask: 0,
            });
        }
        self.drain(&mut stacks, u32::MAX)
    }

    /// Pop every open entry with `post < limit`, deepest-first
    /// (ascending post, descending pre), propagating child-satisfaction
    /// bits upward. Returns true as soon as a root match completes.
    fn drain(&self, stacks: &mut [Vec<OpenEntry>], limit: u32) -> bool {
        loop {
            // Stacks are nested ancestor chains, so each stack's top has
            // its smallest post: scanning tops finds the global minimum.
            let mut best: Option<(usize, u32, u32)> = None;
            for (node, stack) in stacks.iter().enumerate() {
                if let Some(top) = stack.last() {
                    if top.post < limit
                        && best.map_or(true, |(_, post, pre)| {
                            (top.post, std::cmp::Reverse(top.pre)) < (post, std::cmp::Reverse(pre))
                        })
                    {
                        best = Some((node, top.post, top.pre));
                    }
                }
            }
            let Some((node, _, _)) = best else { return false };
            let Some(entry) = stacks[node].pop() else { return false };
            if entry.mask != self.full_mask[node] {
                continue; // some required child never appeared below it
            }
            match self.pattern.nodes[node].parent {
                None => {
                    // Root: check the edge from the document root.
                    match self.pattern.nodes[node].edge {
                        Edge::Descendant => return true,
                        Edge::Child if entry.level == 1 => return true,
                        Edge::Child => {}
                    }
                }
                Some(parent) => {
                    let Some(position) = self.children[parent].iter().position(|&c| c == node)
                    else {
                        continue;
                    };
                    let bit = 1u64 << position;
                    let edge = self.pattern.nodes[node].edge;
                    for open in &mut stacks[parent] {
                        let is_ancestor = open.pre < entry.pre && entry.pre <= open.post;
                        if !is_ancestor {
                            continue;
                        }
                        match edge {
                            Edge::Descendant => open.mask |= bit,
                            Edge::Child if open.level + 1 == entry.level => open.mask |= bit,
                            Edge::Child => {}
                        }
                    }
                }
            }
        }
    }
}

/// Distinct rows across a node's streams, sorted ascending. Each
/// stream is already sorted by row, so this is a k-way merge.
fn distinct_rows(streams: &[&[LabelEntry]]) -> Vec<u64> {
    let mut out: Vec<u64> = Vec::new();
    for stream in streams {
        let mut rows: Vec<u64> = Vec::with_capacity(stream.len().min(1024));
        for e in *stream {
            if rows.last() != Some(&e.row) {
                rows.push(e.row);
            }
        }
        out = if out.is_empty() { rows } else { union_sorted(&out, &rows) };
    }
    out
}

fn union_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let next = match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                i += 1;
                a[i - 1]
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                b[j - 1]
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
                a[i - 1]
            }
        };
        out.push(next);
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn intersect_sorted(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// The `XQDB_TWIG` kill switch: `off`, `0` or `false` (any case)
/// disables both label construction at ingest and the twig path at
/// execution; anything else — including unset — enables them.
pub fn enabled_in_env() -> bool {
    match std::env::var("XQDB_TWIG") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(row: u64, cell: u32, pre: u32, post: u32, level: u32) -> LabelEntry {
        LabelEntry { row, cell, pre, post, level }
    }

    /// `<a><b x="1"/><c/></a>`: arena ids doc=0, a=1, b=2, @x=3, c=4.
    fn store_abc(row: u64) -> LabelStore {
        let mut s = LabelStore::default();
        s.record_label(1, entry(row, 0, 1, 4, 1)); // /a
        s.record_label(2, entry(row, 0, 2, 3, 2)); // /a/b
        s.record_label(3, entry(row, 0, 3, 3, 3)); // /a/b/@x
        s.record_label(4, entry(row, 0, 4, 4, 2)); // /a/c
        s.finish_row();
        s
    }

    const PATHS_ABC: [(&str, u64); 4] = [("/a", 1), ("/a/b", 2), ("/a/b/@x", 3), ("/a/c", 4)];

    #[test]
    fn split_handles_plain_and_clark_segments() {
        assert_eq!(split_rendered_path("/a/b/@x"), vec!["a", "b", "@x"]);
        assert_eq!(split_rendered_path("/{urn:a/b}x/y"), vec!["{urn:a/b}x", "y"]);
        assert_eq!(split_rendered_path("/a/@{urn:n/s}id"), vec!["a", "@{urn:n/s}id"]);
        assert!(split_rendered_path("").is_empty());
    }

    #[test]
    fn resolve_respects_edges_and_root() {
        // //b — descendant root, matches /a/b only.
        let p = Pattern::root(Edge::Descendant, "b", false);
        assert_eq!(resolve_pattern(&p, &PATHS_ABC), vec![vec![2]]);
        // /b — child-of-document-root, no one-segment path named b.
        let p = Pattern::root(Edge::Child, "b", false);
        assert_eq!(resolve_pattern(&p, &PATHS_ABC), vec![Vec::<u64>::new()]);
        // /a[/b[/@x]][/c]
        let mut p = Pattern::root(Edge::Child, "a", false);
        let b = p.add_child(0, Edge::Child, "b", false).unwrap();
        p.add_child(b, Edge::Child, "@x", true).unwrap();
        p.add_child(0, Edge::Child, "c", false).unwrap();
        assert_eq!(resolve_pattern(&p, &PATHS_ABC), vec![vec![1], vec![2], vec![3], vec![4]]);
        // //a//@x — descendant edge to the attribute.
        let mut p = Pattern::root(Edge::Descendant, "a", false);
        p.add_child(0, Edge::Descendant, "@x", true).unwrap();
        assert_eq!(resolve_pattern(&p, &PATHS_ABC), vec![vec![1], vec![3]]);
    }

    #[test]
    fn join_matches_branching_pattern() {
        let store = store_abc(7);
        let mut p = Pattern::root(Edge::Child, "a", false);
        let b = p.add_child(0, Edge::Child, "b", false).unwrap();
        p.add_child(b, Edge::Child, "@x", true).unwrap();
        p.add_child(0, Edge::Child, "c", false).unwrap();
        let resolved = resolve_pattern(&p, &PATHS_ABC);
        let join = TwigJoin::new(&p, &store, &resolved);
        assert_eq!(join.candidates(), &[7]);
        assert!(join.matches_row(7));
        assert!(!join.matches_row(8));
    }

    #[test]
    fn join_rejects_missing_branch() {
        // /a[/b][/d] — d never appears, so the dataguide already prunes it.
        let store = store_abc(0);
        let mut p = Pattern::root(Edge::Child, "a", false);
        p.add_child(0, Edge::Child, "b", false).unwrap();
        p.add_child(0, Edge::Child, "d", false).unwrap();
        let resolved = resolve_pattern(&p, &PATHS_ABC);
        assert!(resolved[2].is_empty());
        let join = TwigJoin::new(&p, &store, &resolved);
        assert!(join.candidates().is_empty());
    }

    #[test]
    fn join_handles_recursive_elements() {
        // <a><a><b/></a></a>: doc=0, outer a=1, inner a=2, b=3.
        let mut store = LabelStore::default();
        store.record_label(10, entry(0, 0, 1, 3, 1)); // /a
        store.record_label(11, entry(0, 0, 2, 3, 2)); // /a/a
        store.record_label(12, entry(0, 0, 3, 3, 3)); // /a/a/b
        store.finish_row();
        let paths = [("/a", 10u64), ("/a/a", 11), ("/a/a/b", 12)];
        // //a[/b]: only the inner a has a b child.
        let mut p = Pattern::root(Edge::Descendant, "a", false);
        p.add_child(0, Edge::Child, "b", false).unwrap();
        let resolved = resolve_pattern(&p, &paths);
        assert_eq!(resolved[0], vec![10, 11]);
        let join = TwigJoin::new(&p, &store, &resolved);
        assert!(join.matches_row(0));
        // /a[/b]: the outer a has no direct b child — level discipline
        // must reject the grandchild.
        let mut p2 = Pattern::root(Edge::Child, "a", false);
        p2.add_child(0, Edge::Child, "b", false).unwrap();
        let resolved2 = resolve_pattern(&p2, &paths);
        assert!(resolved2[1].is_empty());
        let join2 = TwigJoin::new(&p2, &store, &resolved2);
        assert!(join2.candidates().is_empty());
        // //a//b matches through the descendant edge.
        let mut p3 = Pattern::root(Edge::Descendant, "a", false);
        p3.add_child(0, Edge::Descendant, "b", false).unwrap();
        let resolved3 = resolve_pattern(&p3, &paths);
        let join3 = TwigJoin::new(&p3, &store, &resolved3);
        assert!(join3.matches_row(0));
    }

    #[test]
    fn cells_never_join_across() {
        // Row with two XML cells: a in cell 0, b (inside a different a)
        // in cell 1. Pattern /a[/b] must not stitch them together.
        let mut store = LabelStore::default();
        store.record_label(20, entry(0, 0, 1, 1, 1)); // cell 0: lone /a
        store.record_label(20, entry(0, 1, 1, 2, 1)); // cell 1: /a
        store.record_label(21, entry(0, 1, 2, 2, 2)); // cell 1: /a/b
        store.finish_row();
        let paths = [("/a", 20u64), ("/a/b", 21)];
        let mut p = Pattern::root(Edge::Child, "a", false);
        p.add_child(0, Edge::Child, "b", false).unwrap();
        let resolved = resolve_pattern(&p, &paths);
        let join = TwigJoin::new(&p, &store, &resolved);
        // Cell 1 alone satisfies it, so the row matches…
        assert!(join.matches_row(0));
        // …but with cell 1's b removed, cell 0's a + a stray b in a
        // later cell must not match.
        let mut store2 = LabelStore::default();
        store2.record_label(20, entry(0, 0, 1, 1, 1)); // cell 0: lone /a
        store2.record_label(21, entry(0, 1, 2, 2, 2)); // cell 1: b without its a label
        store2.finish_row();
        let join2 = TwigJoin::new(&p, &store2, &resolved);
        assert!(!join2.matches_row(0));
    }

    #[test]
    fn incomplete_store_declines() {
        let mut store = store_abc(0);
        assert!(store.is_complete_for(1));
        assert!(!store.is_complete_for(2));
        store.mark_incomplete();
        assert!(!store.is_complete_for(1));
        store.record_label(1, entry(1, 0, 1, 1, 1));
        assert_eq!(store.stream(1), &[]);
    }

    #[test]
    fn prune_row_drains_and_drops_empty_streams() {
        let mut s = LabelStore::default();
        for row in 0..3u64 {
            s.record_label(1, entry(row, 0, 1, 4, 1));
            s.record_label(2, entry(row, 0, 2, 3, 2));
            s.finish_row();
        }
        s.record_label(9, entry(1, 0, 4, 4, 2)); // path only row 1 has
        s.prune_row(1);
        assert_eq!(s.stream(1).iter().map(|e| e.row).collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(s.stream(9), &[], "stream emptied by the prune is dropped");
        assert_eq!(s.streams().count(), 2);
        // Pruning a row with no labels is a no-op.
        s.prune_row(77);
        assert_eq!(s.stream(1).len(), 2);
    }

    #[test]
    fn sorted_insert_matches_rebuild_order() {
        // Rows 0 and 2 ingested, then row 1 re-labeled (replace): the
        // stream must read exactly as if rows 0,1,2 were ingested in order.
        let mut replaced = LabelStore::default();
        replaced.record_label(1, entry(0, 0, 1, 2, 1));
        replaced.finish_row();
        replaced.record_label(1, entry(2, 0, 1, 2, 1));
        replaced.finish_row();
        replaced.insert_label_sorted(1, entry(1, 0, 1, 3, 1));
        replaced.insert_label_sorted(1, entry(1, 0, 2, 3, 2));
        let mut rebuilt = LabelStore::default();
        for (row, pre, post, level) in
            [(0, 1, 2, 1), (1, 1, 3, 1), (1, 2, 3, 2), (2, 1, 2, 1)]
        {
            rebuilt.record_label(1, entry(row, 0, pre, post, level));
        }
        assert_eq!(replaced.stream(1), rebuilt.stream(1));
    }

    #[test]
    fn render_shows_edges_and_branches() {
        let mut p = Pattern::root(Edge::Descendant, "order", false);
        let li = p.add_child(0, Edge::Child, "lineitem", false).unwrap();
        p.add_child(li, Edge::Child, "@price", true).unwrap();
        p.add_child(0, Edge::Descendant, "id", false).unwrap();
        assert_eq!(p.render(), "//order[/lineitem[/@price]][//id]");
        assert!(p.has_descendant_edge());
        assert!(p.has_branch());
    }
}
