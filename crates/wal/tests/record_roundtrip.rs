//! Record-layer fuzzing: encode/decode round-trips for randomized records,
//! and exhaustive corruption — **every** single-byte flip of a framed
//! record must be detected (CRC mismatch or torn frame), never mis-decoded
//! into a different valid record, and never a panic. CRC-32 detects all
//! error bursts of 32 bits or fewer, so a one-byte flip in the payload or
//! checksum field is caught by arithmetic, not by luck; flips in the
//! length prefix surface as torn or absurd-length frames. The generators
//! are seeded (vendored deterministic `rand`), so a pass is reproducible.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use xqdb_wal::{parse_frame, FrameOutcome, WalRecord, WalValue, FRAME_HEADER};

fn random_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.random_range(0..=max_len);
    (0..len)
        .map(|_| {
            // Mix ASCII with multi-byte code points so length prefixes are
            // exercised in bytes, not chars.
            match rng.random_range(0..4u8) {
                0 => char::from(rng.random_range(b'a'..=b'z')),
                1 => char::from(rng.random_range(b'0'..=b'9')),
                2 => 'é',
                _ => '中',
            }
        })
        .collect()
}

fn random_value(rng: &mut StdRng) -> WalValue {
    match rng.random_range(0..7u8) {
        0 => WalValue::Null,
        1 => WalValue::Integer(rng.next_u64() as i64),
        2 => WalValue::Double(f64::from_bits(rng.next_u64())),
        3 => WalValue::Varchar(random_string(rng, 24)),
        4 => WalValue::Date(random_string(rng, 10)),
        5 => WalValue::Timestamp(random_string(rng, 19)),
        _ => WalValue::Xml(format!("<o p=\"{}\"/>", rng.random_range(0..1000u32))),
    }
}

fn random_record(rng: &mut StdRng) -> WalRecord {
    match rng.random_range(0..3u8) {
        0 => WalRecord::CreateTable {
            name: random_string(rng, 12),
            columns: (0..rng.random_range(0..5usize))
                .map(|_| (random_string(rng, 8), random_string(rng, 12)))
                .collect(),
        },
        1 => WalRecord::CreateIndex {
            name: random_string(rng, 12),
            table: random_string(rng, 12),
            column: random_string(rng, 8),
            pattern: format!("//{}/@{}", random_string(rng, 6), random_string(rng, 6)),
            ty: "double".into(),
        },
        _ => WalRecord::Insert {
            table: random_string(rng, 12),
            values: (0..rng.random_range(0..6usize)).map(|_| random_value(rng)).collect(),
        },
    }
}

/// NaN-tolerant equality: `WalValue::Double` is encoded bit-exactly, so
/// compare bits (a random `f64::from_bits` is frequently NaN, where `==`
/// would lie).
fn records_equal(a: &WalRecord, b: &WalRecord) -> bool {
    match (a, b) {
        (
            WalRecord::Insert { table: ta, values: va },
            WalRecord::Insert { table: tb, values: vb },
        ) => {
            ta == tb
                && va.len() == vb.len()
                && va.iter().zip(vb).all(|(x, y)| match (x, y) {
                    (WalValue::Double(dx), WalValue::Double(dy)) => dx.to_bits() == dy.to_bits(),
                    _ => x == y,
                })
        }
        _ => a == b,
    }
}

#[test]
fn randomized_records_roundtrip_through_frames() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for _ in 0..500 {
        let rec = random_record(&mut rng);
        let frame = rec.encode_frame();
        match parse_frame(&frame) {
            FrameOutcome::Record(back, consumed) => {
                assert!(records_equal(&rec, &back), "decode changed {rec:?} into {back:?}");
                assert_eq!(consumed, frame.len());
            }
            other => panic!("healthy frame failed to parse: {other:?}"),
        }
    }
}

/// Exhaustive single-bit corruption: flip each bit of each byte of the
/// frame. A flip must surface as `Torn` or `Corrupt` — parsing must never
/// hand back a record from a damaged frame.
#[test]
fn every_single_bit_flip_is_detected() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..40 {
        let rec = random_record(&mut rng);
        let frame = rec.encode_frame();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[byte] ^= 1 << bit;
                match parse_frame(&bad) {
                    FrameOutcome::Record(got, _) => panic!(
                        "flip of bit {bit} in byte {byte}/{} went undetected: \
                         {rec:?} decoded as {got:?}",
                        frame.len()
                    ),
                    FrameOutcome::Torn | FrameOutcome::Corrupt(_) => {}
                }
            }
        }
    }
}

/// Random whole-byte corruption (any of the 255 non-identity masks),
/// seeded: still always detected.
#[test]
fn seeded_single_byte_masks_are_detected() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..2000 {
        let rec = random_record(&mut rng);
        let mut frame = rec.encode_frame();
        let byte = rng.random_range(0..frame.len());
        let mask = rng.random_range(1..=255u8);
        frame[byte] ^= mask;
        if let FrameOutcome::Record(got, _) = parse_frame(&frame) {
            panic!("mask {mask:#x} on byte {byte} went undetected: decoded {got:?}");
        }
    }
}

/// Arbitrary garbage through the frame parser: classified, never a panic,
/// and a decode of random payload bytes is a typed error, never nonsense.
#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..2000 {
        let len = rng.random_range(0..200usize);
        let buf: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        match parse_frame(&buf) {
            FrameOutcome::Record(_, consumed) => {
                // Only possible if the garbage happens to be a valid frame;
                // the parser must still stay within bounds.
                assert!(consumed >= FRAME_HEADER && consumed <= buf.len());
            }
            FrameOutcome::Torn | FrameOutcome::Corrupt(_) => {}
        }
        // The record decoder on its own must also reject garbage cleanly.
        let _ = WalRecord::decode(&buf);
    }
}

/// Frames survive concatenation: parsing consumes exactly one frame, so a
/// segment's byte stream can be walked frame by frame.
#[test]
fn concatenated_frames_parse_sequentially() {
    let mut rng = StdRng::seed_from_u64(99);
    let records: Vec<WalRecord> = (0..20).map(|_| random_record(&mut rng)).collect();
    let mut stream = Vec::new();
    for r in &records {
        stream.extend_from_slice(&r.encode_frame());
    }
    let mut offset = 0;
    let mut back = Vec::new();
    while offset < stream.len() {
        match parse_frame(&stream[offset..]) {
            FrameOutcome::Record(rec, consumed) => {
                back.push(rec);
                offset += consumed;
            }
            other => panic!("stream broke at offset {offset}: {other:?}"),
        }
    }
    assert_eq!(back.len(), records.len());
    for (a, b) in records.iter().zip(&back) {
        assert!(records_equal(a, b));
    }
}
