//! The page-file manifest: the checkpoint's metadata companion.
//!
//! With paged storage a checkpoint no longer serializes the whole database
//! into a snapshot file — the rows already live in the page file, and
//! [`crate::log`]'s freeze watermark makes everything below it immutable.
//! What recovery still needs is the *catalog* metadata that pages don't
//! carry: which tables exist (name, columns, heap table id), how many rows
//! each had at the checkpoint, the path-synopsis dictionary, and the index
//! DDL to rebuild by back-fill. That is the manifest.
//!
//! One file, `manifest.xqm`, written atomically (temp + fsync + rename) so
//! a named manifest is always complete. Format:
//!
//! ```text
//! [8-byte magic "XQMANIF1"] [u32 payload_len] [u32 crc32(payload)] [payload]
//! ```
//!
//! The payload reuses the WAL's length-prefixed string conventions and
//! embeds each index's `CreateIndex` record as a frame, so index recovery
//! goes through exactly the replay code path a logged `CREATE INDEX` does.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use xqdb_xdm::XdmError;

use crate::record::{crc32, parse_frame, FrameOutcome, WalRecord, FRAME_HEADER};

const MANIFEST_MAGIC: &[u8; 8] = b"XQMANIF1";

/// The manifest file name within a data directory.
pub const MANIFEST_FILE: &str = "manifest.xqm";

/// One table's checkpoint metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestTable {
    /// Table name (upper-cased).
    pub name: String,
    /// Heap table id: the tag on this table's pages in the page file.
    pub table_id: u32,
    /// `(column name, SQL type spelling)` pairs.
    pub columns: Vec<(String, String)>,
    /// Rows at checkpoint time. Page records with rowid `>= row_count` are
    /// post-checkpoint leftovers the WAL suffix re-creates.
    pub row_count: u64,
    /// The path-synopsis dictionary: `(rendered path, occurrences)`.
    pub synopsis: Vec<(String, u64)>,
    /// Row ids deleted *logically* (their records sit on frozen pages that
    /// cannot be tombstoned in place). Recovery must skip these rows when
    /// re-adopting pages. Ascending.
    pub deleted: Vec<u64>,
    /// Row ids whose frozen record was superseded by a REPLACE: a newer
    /// copy with the same rowid exists on a higher page. Recovery keeps the
    /// highest-page copy for exactly these rowids; a duplicate rowid *not*
    /// listed here is corruption. Ascending.
    pub stale: Vec<u64>,
}

/// Checkpoint metadata for a paged data directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// WAL sequence this checkpoint covers: replay applies only records
    /// with greater sequence numbers.
    pub covers: u64,
    /// The page file's freeze watermark at checkpoint time.
    pub frozen_below: u64,
    /// Per-table metadata.
    pub tables: Vec<ManifestTable>,
    /// Index DDL, as `CreateIndex` records (rebuilt by back-fill).
    pub indexes: Vec<WalRecord>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

impl Manifest {
    /// Encode the payload (no magic/frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        put_u64(&mut out, self.covers);
        put_u64(&mut out, self.frozen_below);
        put_u32(&mut out, self.tables.len() as u32);
        for t in &self.tables {
            put_str(&mut out, &t.name);
            put_u32(&mut out, t.table_id);
            put_u32(&mut out, t.columns.len() as u32);
            for (cn, ct) in &t.columns {
                put_str(&mut out, cn);
                put_str(&mut out, ct);
            }
            put_u64(&mut out, t.row_count);
            put_u32(&mut out, t.synopsis.len() as u32);
            for (path, count) in &t.synopsis {
                put_str(&mut out, path);
                put_u64(&mut out, *count);
            }
            put_u32(&mut out, t.deleted.len() as u32);
            for &row in &t.deleted {
                put_u64(&mut out, row);
            }
            put_u32(&mut out, t.stale.len() as u32);
            for &row in &t.stale {
                put_u64(&mut out, row);
            }
        }
        put_u32(&mut out, self.indexes.len() as u32);
        for idx in &self.indexes {
            out.extend_from_slice(&idx.encode_frame());
        }
        out
    }

    /// Decode a payload.
    pub fn decode(payload: &[u8]) -> Result<Manifest, XdmError> {
        let corrupt = |why: &str| XdmError::wal_corrupt(format!("manifest: {why}"));
        let mut r = Reader { buf: payload, pos: 0 };
        let covers = r.u64()?;
        let frozen_below = r.u64()?;
        let ntables = r.u32()? as usize;
        let mut tables = Vec::with_capacity(ntables.min(1024));
        for _ in 0..ntables {
            let name = r.str()?;
            let table_id = r.u32()?;
            let ncols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols.min(1024));
            for _ in 0..ncols {
                let cn = r.str()?;
                let ct = r.str()?;
                columns.push((cn, ct));
            }
            let row_count = r.u64()?;
            let nsyn = r.u32()? as usize;
            let mut synopsis = Vec::with_capacity(nsyn.min(65536));
            for _ in 0..nsyn {
                let p = r.str()?;
                let c = r.u64()?;
                synopsis.push((p, c));
            }
            let ndel = r.u32()? as usize;
            let mut deleted = Vec::with_capacity(ndel.min(65536));
            for _ in 0..ndel {
                deleted.push(r.u64()?);
            }
            let nstale = r.u32()? as usize;
            let mut stale = Vec::with_capacity(nstale.min(65536));
            for _ in 0..nstale {
                stale.push(r.u64()?);
            }
            tables.push(ManifestTable {
                name,
                table_id,
                columns,
                row_count,
                synopsis,
                deleted,
                stale,
            });
        }
        let nidx = r.u32()? as usize;
        let mut indexes = Vec::with_capacity(nidx.min(1024));
        for _ in 0..nidx {
            match parse_frame(&payload[r.pos..]) {
                FrameOutcome::Record(rec, consumed) => {
                    if !matches!(rec, WalRecord::CreateIndex { .. }) {
                        return Err(corrupt("index entry is not a CreateIndex record"));
                    }
                    indexes.push(rec);
                    r.pos += consumed;
                }
                FrameOutcome::Torn => return Err(corrupt("truncated index record")),
                FrameOutcome::Corrupt(e) => return Err(e),
            }
        }
        if r.pos != payload.len() {
            return Err(corrupt("trailing bytes"));
        }
        Ok(Manifest { covers, frozen_below, tables, indexes })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], XdmError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            XdmError::wal_corrupt("manifest truncated mid-field")
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, XdmError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, XdmError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> Result<String, XdmError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| XdmError::wal_corrupt("manifest string field is not UTF-8"))
    }
}

/// Write the manifest atomically (temp + fsync + rename). The previous
/// manifest, if any, is replaced only by the completed rename.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<PathBuf, XdmError> {
    fs::create_dir_all(dir)
        .map_err(|e| XdmError::storage_fault(format!("create {}: {e}", dir.display())))?;
    let payload = manifest.encode();
    let mut buf = Vec::with_capacity(8 + FRAME_HEADER + payload.len());
    buf.extend_from_slice(MANIFEST_MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    let final_path = dir.join(MANIFEST_FILE);
    let tmp_path = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let mut f = File::create(&tmp_path)
        .map_err(|e| XdmError::storage_fault(format!("create {}: {e}", tmp_path.display())))?;
    f.write_all(&buf)
        .map_err(|e| XdmError::storage_fault(format!("write {}: {e}", tmp_path.display())))?;
    f.sync_all()
        .map_err(|e| XdmError::storage_fault(format!("fsync {}: {e}", tmp_path.display())))?;
    drop(f);
    fs::rename(&tmp_path, &final_path)
        .map_err(|e| XdmError::storage_fault(format!("rename manifest into place: {e}")))?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(final_path)
}

/// Read the manifest, if one exists. A damaged manifest is a typed
/// `WalCorrupt` error (manifests are written atomically, so damage is
/// media corruption, not a crash artifact).
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, XdmError> {
    let path = dir.join(MANIFEST_FILE);
    // Crash artifact from an interrupted write: the real manifest (if any)
    // is still in place.
    let _ = fs::remove_file(dir.join(format!("{MANIFEST_FILE}.tmp")));
    if !path.exists() {
        return Ok(None);
    }
    let mut bytes = Vec::new();
    File::open(&path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| XdmError::storage_fault(format!("read {}: {e}", path.display())))?;
    let corrupt =
        |why: &str| XdmError::wal_corrupt(format!("{}: {why}", path.display()));
    if bytes.len() < 8 + FRAME_HEADER || &bytes[..8] != MANIFEST_MAGIC {
        return Err(corrupt("bad manifest header"));
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if bytes.len() != 8 + FRAME_HEADER + len {
        return Err(corrupt("manifest length mismatch"));
    }
    let payload = &bytes[8 + FRAME_HEADER..];
    let actual = crc32(payload);
    if actual != crc {
        return Err(corrupt(&format!(
            "CRC mismatch (stored {crc:#010x}, computed {actual:#010x})"
        )));
    }
    Ok(Some(Manifest::decode(payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(label: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/test-tmp"))
            .join(format!(
                "manifest_{label}_{}_{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            covers: 42,
            frozen_below: 17,
            tables: vec![ManifestTable {
                name: "ORDERS".into(),
                table_id: 3,
                columns: vec![("ORDID".into(), "INTEGER".into()), ("ORDDOC".into(), "XML".into())],
                row_count: 1000,
                synopsis: vec![("/order".into(), 1000), ("/order/@id".into(), 998)],
                deleted: vec![7, 12, 999],
                stale: vec![3],
            }],
            indexes: vec![WalRecord::CreateIndex {
                name: "LI_PRICE".into(),
                table: "ORDERS".into(),
                column: "ORDDOC".into(),
                pattern: "//lineitem/@price".into(),
                ty: "double".into(),
            }],
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = temp_dir("roundtrip");
        let m = sample();
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some(m.clone()));
        // Rewrite replaces atomically.
        let mut m2 = m;
        m2.covers = 99;
        write_manifest(&dir, &m2).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().unwrap().covers, 99);
    }

    #[test]
    fn missing_manifest_is_none() {
        let dir = temp_dir("missing");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), None);
    }

    #[test]
    fn corruption_is_typed() {
        let dir = temp_dir("corrupt");
        write_manifest(&dir, &sample()).unwrap();
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let pos = bytes.len() - 3;
        bytes[pos] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let err = read_manifest(&dir).unwrap_err();
        assert_eq!(err.code, xqdb_xdm::ErrorCode::WalCorrupt);
        // Truncation too.
        write_manifest(&dir, &sample()).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        assert!(read_manifest(&dir).is_err());
    }

    #[test]
    fn leftover_tmp_is_cleaned_up() {
        let dir = temp_dir("tmp");
        write_manifest(&dir, &sample()).unwrap();
        fs::write(dir.join(format!("{MANIFEST_FILE}.tmp")), b"junk").unwrap();
        assert!(read_manifest(&dir).unwrap().is_some());
        assert!(!dir.join(format!("{MANIFEST_FILE}.tmp")).exists());
    }
}
