//! # xqdb-wal — durability for the XML query engine
//!
//! A std-only, checksummed, segmented write-ahead log of *logical*
//! operations (DDL and row inserts), plus snapshot/checkpoint files that
//! bound replay cost. The engine logs every mutation **before** applying
//! it; recovery replays the newest snapshot and the surviving log suffix
//! through the ordinary catalog code paths — indexes are rebuilt by the
//! same (parallelizable) back-fill a live `CREATE INDEX` uses, so the
//! paper's Definition 1 doubles as the recovery-correctness oracle: a
//! recovered database answers every query byte-identically to one that
//! never crashed (up to the acknowledged-durable prefix the fsync mode
//! guarantees).
//!
//! Layout and failure semantics are documented on [`log`]; the record
//! encoding and its CRC32 framing on [`record`]. Deterministic crash
//! simulation ([`CrashInjector`] + `xqdb_xdm::DurabilityFault`) drives the
//! chaos-recovery matrix in `tests/chaos_recovery.rs`.
//!
//! The crate deliberately knows nothing about tables, values, or queries —
//! only records, frames, segments, and snapshots. The mapping to engine
//! state lives in `xqdb-core`'s `durability` module.

pub mod log;
pub mod manifest;
pub mod record;

pub use log::{
    replay, segment_file_name, snapshot_file_name, write_snapshot, CrashInjector, FsyncMode,
    Recovered, WalConfig, WalWriter,
};
pub use manifest::{read_manifest, write_manifest, Manifest, ManifestTable, MANIFEST_FILE};
pub use record::{crc32, parse_frame, FrameOutcome, WalRecord, WalValue, FRAME_HEADER};

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use xqdb_xdm::{DurabilityFault, ErrorCode, FaultInjector, FaultMode};

    fn temp_dir(label: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/test-tmp"))
            .join(format!(
            "wal_{label}_{}_{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn insert(i: i64) -> WalRecord {
        WalRecord::Insert {
            table: "ORDERS".into(),
            values: vec![WalValue::Integer(i), WalValue::Xml(format!("<order id=\"{i}\"/>"))],
        }
    }

    fn append_all(w: &mut WalWriter, n: i64) {
        for i in 0..n {
            w.append(&insert(i)).unwrap();
        }
    }

    #[test]
    fn write_then_replay_roundtrips_all_modes() {
        for fsync in [FsyncMode::Always, FsyncMode::Batch, FsyncMode::Off] {
            let dir = temp_dir("roundtrip");
            {
                let mut w =
                    WalWriter::open(&dir, WalConfig { fsync, ..WalConfig::default() }, 0).unwrap();
                append_all(&mut w, 10);
            }
            let rec = replay(&dir).unwrap();
            assert_eq!(rec.last_seq, 10, "mode {fsync:?}");
            assert_eq!(rec.wal_records.len(), 10);
            assert_eq!(rec.torn_tail_truncations, 0);
            for (i, (seq, r)) in rec.wal_records.iter().enumerate() {
                assert_eq!(*seq, i as u64 + 1);
                assert_eq!(*r, insert(i as i64));
            }
        }
    }

    #[test]
    fn segment_rotation_splits_and_replays_in_order() {
        let dir = temp_dir("rotate");
        {
            let mut w = WalWriter::open(
                &dir,
                WalConfig { segment_max_bytes: 128, fsync: FsyncMode::Off, ..WalConfig::default() },
                0,
            )
            .unwrap();
            append_all(&mut w, 20);
        }
        let rec = replay(&dir).unwrap();
        assert!(rec.segments_scanned > 1, "expected rotation, got 1 segment");
        assert_eq!(rec.wal_records.len(), 20);
        assert_eq!(rec.last_seq, 20);
    }

    #[test]
    fn reopened_writer_continues_sequence_in_new_segment() {
        let dir = temp_dir("reopen");
        {
            let mut w = WalWriter::open(&dir, WalConfig::default(), 0).unwrap();
            append_all(&mut w, 3);
        }
        let rec = replay(&dir).unwrap();
        {
            let mut w = WalWriter::open(&dir, WalConfig::default(), rec.last_seq).unwrap();
            let (seq, _) = w.append(&insert(3)).unwrap();
            assert_eq!(seq, 4);
        }
        let rec = replay(&dir).unwrap();
        assert_eq!(rec.wal_records.len(), 4);
        assert_eq!(rec.segments_scanned, 2, "reopen starts a fresh segment");
    }

    #[test]
    fn torn_tail_is_truncated_with_warning() {
        let dir = temp_dir("torn");
        {
            let mut w = WalWriter::open(
                &dir,
                WalConfig { fsync: FsyncMode::Always, ..WalConfig::default() },
                0,
            )
            .unwrap();
            w.set_crash_injector(Some(CrashInjector {
                injector: Arc::new(FaultInjector::new(FaultMode::Nth(5))),
                fault: DurabilityFault::TornTail,
            }));
            for i in 0..10 {
                let _ = w.append(&insert(i));
            }
        }
        let rec = replay(&dir).unwrap();
        assert_eq!(rec.torn_tail_truncations, 1);
        assert_eq!(rec.last_seq, 4, "records before the torn one survive");
        // After truncation the log is clean again.
        let rec2 = replay(&dir).unwrap();
        assert_eq!(rec2.torn_tail_truncations, 0);
        assert_eq!(rec2.last_seq, 4);
    }

    #[test]
    fn crash_before_flush_loses_batch_never_corrupts() {
        let dir = temp_dir("crash");
        {
            let mut w = WalWriter::open(
                &dir,
                WalConfig { fsync: FsyncMode::Batch, batch_records: 4, ..WalConfig::default() },
                0,
            )
            .unwrap();
            w.set_crash_injector(Some(CrashInjector {
                injector: Arc::new(FaultInjector::new(FaultMode::Nth(7))),
                fault: DurabilityFault::CrashBeforeFlush,
            }));
            for i in 0..10 {
                let _ = w.append(&insert(i));
            }
        }
        let rec = replay(&dir).unwrap();
        // Batches of 4: appends 1-4 flushed, 5-6 buffered and lost with 7.
        assert_eq!(rec.last_seq, 4);
        assert_eq!(rec.torn_tail_truncations, 0);
    }

    #[test]
    fn crashed_writer_refuses_further_appends() {
        let dir = temp_dir("dead");
        let mut w = WalWriter::open(&dir, WalConfig::default(), 0).unwrap();
        w.set_crash_injector(Some(CrashInjector {
            injector: Arc::new(FaultInjector::new(FaultMode::Nth(1))),
            fault: DurabilityFault::CrashBeforeFlush,
        }));
        assert_eq!(w.append(&insert(0)).unwrap_err().code, ErrorCode::StorageFault);
        assert_eq!(w.append(&insert(1)).unwrap_err().code, ErrorCode::StorageFault);
        assert_eq!(w.flush().unwrap_err().code, ErrorCode::StorageFault);
    }

    #[test]
    fn bit_flip_quarantines_segment_with_typed_error() {
        let dir = temp_dir("flip");
        {
            let mut w = WalWriter::open(
                &dir,
                WalConfig { fsync: FsyncMode::Off, ..WalConfig::default() },
                0,
            )
            .unwrap();
            w.set_crash_injector(Some(CrashInjector {
                injector: Arc::new(FaultInjector::new(FaultMode::Nth(3))),
                fault: DurabilityFault::BitFlip,
            }));
            append_all(&mut w, 6); // bit flip is silent: all appends succeed
        }
        let err = replay(&dir).unwrap_err();
        assert_eq!(err.code, ErrorCode::WalCorrupt);
        assert!(err.message.contains(".seg"), "error must name the segment: {}", err.message);
        assert!(err.message.contains("quarantined"), "{}", err.message);
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(names.iter().any(|n| n.ends_with(".seg.quarantined")), "{names:?}");
    }

    #[test]
    fn snapshot_bounds_replay_and_prune_removes_covered_segments() {
        let dir = temp_dir("snap");
        let mut w = WalWriter::open(
            &dir,
            WalConfig { fsync: FsyncMode::Off, ..WalConfig::default() },
            0,
        )
        .unwrap();
        append_all(&mut w, 6);
        // Checkpoint: flush, snapshot the (pretend) state, rotate, prune.
        w.flush().unwrap();
        let state: Vec<WalRecord> = (0..6).map(insert).collect();
        write_snapshot(&dir, w.next_seq() - 1, &state).unwrap();
        w.rotate().unwrap();
        w.prune(w.next_seq() - 1).unwrap();
        let (seq, _) = w.append(&insert(6)).unwrap();
        assert_eq!(seq, 7);
        drop(w);
        let rec = replay(&dir).unwrap();
        assert_eq!(rec.snapshot_covers, 6);
        assert_eq!(rec.snapshot_records.len(), 6);
        assert_eq!(rec.wal_records.len(), 1, "only the post-checkpoint record replays");
        assert_eq!(rec.last_seq, 7);
        assert_eq!(rec.segments_scanned, 1, "covered segments pruned");
    }

    #[test]
    fn manifest_checkpoint_bounds_replay_to_the_suffix() {
        let dir = temp_dir("manifest_ckpt");
        let mut w = WalWriter::open(
            &dir,
            WalConfig { fsync: FsyncMode::Off, ..WalConfig::default() },
            0,
        )
        .unwrap();
        append_all(&mut w, 6);
        // Paged checkpoint: flush, manifest, rotate, checkpoint marker, prune.
        w.flush().unwrap();
        let covers = w.next_seq() - 1;
        let manifest = Manifest { covers, frozen_below: 9, ..Manifest::default() };
        write_manifest(&dir, &manifest).unwrap();
        w.rotate().unwrap();
        w.append(&WalRecord::Checkpoint { covers }).unwrap();
        w.prune(covers).unwrap();
        let (seq, _) = w.append(&insert(6)).unwrap();
        assert_eq!(seq, 8, "checkpoint marker takes seq 7");
        drop(w);
        let rec = replay(&dir).unwrap();
        assert_eq!(rec.snapshot_covers, 0, "no snapshot file involved");
        assert_eq!(rec.manifest.as_ref().map(|m| m.covers), Some(6));
        assert_eq!(rec.manifest.as_ref().map(|m| m.frozen_below), Some(9));
        assert_eq!(
            rec.wal_records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![7, 8],
            "only the checkpoint marker and the post-checkpoint insert replay"
        );
        assert!(matches!(rec.wal_records[0].1, WalRecord::Checkpoint { covers: 6 }));
        assert_eq!(rec.last_seq, 8);
        assert_eq!(rec.segments_scanned, 1, "covered segments pruned");
    }

    #[test]
    fn sequence_gap_is_wal_corrupt() {
        let dir = temp_dir("gap");
        {
            let mut w = WalWriter::open(
                &dir,
                WalConfig { segment_max_bytes: 64, fsync: FsyncMode::Off, ..WalConfig::default() },
                0,
            )
            .unwrap();
            append_all(&mut w, 9);
        }
        let segs: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "seg"))
            .collect();
        assert!(segs.len() >= 3, "need a middle segment to delete");
        let mut sorted = segs.clone();
        sorted.sort();
        std::fs::remove_file(&sorted[1]).unwrap();
        let err = replay(&dir).unwrap_err();
        assert_eq!(err.code, ErrorCode::WalCorrupt);
        assert!(err.message.contains("gap"), "{}", err.message);
    }

    #[test]
    fn fsync_mode_parsing() {
        assert_eq!(FsyncMode::parse("ALWAYS"), Some(FsyncMode::Always));
        assert_eq!(FsyncMode::parse("batch"), Some(FsyncMode::Batch));
        assert_eq!(FsyncMode::parse("Off"), Some(FsyncMode::Off));
        assert_eq!(FsyncMode::parse("sometimes"), None);
        assert_eq!(FsyncMode::Batch.as_str(), "batch");
    }
}
