//! Segmented log files, the write-ahead writer, snapshots, and replay.
//!
//! ## On-disk layout
//!
//! A data directory holds:
//!
//! * **Segments** `wal-<first_seq>.seg`: an 16-byte header (8-byte magic +
//!   `u64` first sequence number) followed by record frames. Record `i` of
//!   a segment implicitly has sequence `first_seq + i` — sequence numbers
//!   are global, 1-based, and never reused.
//! * **Snapshots** `snapshot-<covers_seq>.snap`: a header (magic +
//!   `u64 covers_seq` + `u32 record count`) followed by the framed records
//!   that rebuild all state up to and including `covers_seq`. Snapshots are
//!   written to a temp file, fsynced, then renamed — they are atomic, so a
//!   named snapshot is always complete (a CRC failure inside one is media
//!   damage, not a crash artifact).
//!
//! ## Failure semantics
//!
//! * An incomplete frame at the end of the **newest** segment is a *torn
//!   tail* — the expected result of a crash mid-append. Replay truncates
//!   the file back to the last complete frame and reports a warning count.
//! * A CRC mismatch, bad magic, undecodable record, or incomplete frame
//!   anywhere **else** is *corruption*. The damaged file is renamed to
//!   `<name>.quarantined` and replay fails with a typed
//!   [`ErrorCode::WalCorrupt`](xqdb_xdm::ErrorCode) error naming it —
//!   never a panic, and never a silently shortened history.
//! * A gap in sequence numbers (e.g. a previously quarantined segment) is
//!   likewise `WalCorrupt`: replaying around a hole would violate the
//!   Definition 1 recovery oracle.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use xqdb_xdm::{DurabilityFault, FaultInjector, XdmError};

use crate::manifest::{read_manifest, Manifest};
use crate::record::{parse_frame, FrameOutcome, WalRecord};

const SEGMENT_MAGIC: &[u8; 8] = b"XQWALSG1";
const SNAPSHOT_MAGIC: &[u8; 8] = b"XQWALSN1";
const SEGMENT_HEADER: usize = 16; // magic + first_seq
const SNAPSHOT_HEADER: usize = 20; // magic + covers_seq + count

/// When appended records reach the operating system and the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncMode {
    /// `fsync` after every append: an acknowledged record survives power
    /// loss, at one disk round-trip per operation.
    Always,
    /// Buffer appends in process and `write`+`fsync` them every
    /// [`WalConfig::batch_records`] appends (and on flush/checkpoint/clean
    /// shutdown). A crash can lose up to one batch of acknowledged records
    /// — never corrupt the log. The default.
    #[default]
    Batch,
    /// `write` each record to the OS immediately but never `fsync`.
    /// Survives process crashes; power loss may lose the OS cache.
    Off,
}

impl FsyncMode {
    /// Parse `always` / `batch` / `off` (case-insensitive).
    pub fn parse(s: &str) -> Option<FsyncMode> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Some(FsyncMode::Always),
            "batch" => Some(FsyncMode::Batch),
            "off" => Some(FsyncMode::Off),
            _ => None,
        }
    }

    /// The canonical spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            FsyncMode::Always => "always",
            FsyncMode::Batch => "batch",
            FsyncMode::Off => "off",
        }
    }
}

/// Writer configuration.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Durability/throughput trade-off; see [`FsyncMode`].
    pub fsync: FsyncMode,
    /// Rotate to a fresh segment once the current one exceeds this size.
    pub segment_max_bytes: u64,
    /// In `batch` mode, flush after this many buffered records.
    pub batch_records: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig { fsync: FsyncMode::default(), segment_max_bytes: 4 * 1024 * 1024, batch_records: 8 }
    }
}

/// A durability fault armed on a [`WalWriter`]: the injector decides *when*
/// (counting appends), the fault decides *what* (see
/// [`DurabilityFault`]).
#[derive(Debug, Clone)]
pub struct CrashInjector {
    /// The deterministic trigger.
    pub injector: Arc<FaultInjector>,
    /// The damage done when it fires.
    pub fault: DurabilityFault,
}

/// The append side of the log.
///
/// Appends are **write-ahead**: callers log the operation first and mutate
/// in-memory state only after `append` returns `Ok`. A writer that has
/// simulated a crash refuses all further work with a typed `StorageFault`,
/// so the in-memory state of a crashed session never runs ahead of what
/// recovery can reproduce (except for acknowledged-but-unsynced batches,
/// which is exactly the documented `fsync batch` trade-off).
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    config: WalConfig,
    file: Option<File>,
    segment_bytes: u64,
    segment_first_seq: Option<u64>,
    next_seq: u64,
    pending: Vec<u8>,
    pending_records: usize,
    crashed: bool,
    crash: Option<CrashInjector>,
}

impl WalWriter {
    /// Open a writer positioned after `last_seq` (0 for an empty log).
    /// Creates the directory if needed; the first segment file is created
    /// lazily on the first append, so read-only recovery leaves no litter.
    pub fn open(dir: &Path, config: WalConfig, last_seq: u64) -> Result<WalWriter, XdmError> {
        fs::create_dir_all(dir)
            .map_err(|e| XdmError::storage_fault(format!("create {}: {e}", dir.display())))?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            config,
            file: None,
            segment_bytes: 0,
            segment_first_seq: None,
            next_seq: last_seq + 1,
            pending: Vec::new(),
            pending_records: 0,
            crashed: false,
            crash: None,
        })
    }

    /// Arm (or disarm) a simulated durability fault.
    pub fn set_crash_injector(&mut self, crash: Option<CrashInjector>) {
        self.crash = crash;
    }

    /// The sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The configured fsync mode.
    pub fn fsync_mode(&self) -> FsyncMode {
        self.config.fsync
    }

    /// Append one record, returning `(sequence, frame bytes)`. The record
    /// is durable per the configured [`FsyncMode`] when this returns.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(u64, u64), XdmError> {
        if self.crashed {
            return Err(XdmError::storage_fault(
                "WAL writer crashed (simulated); the session must recover",
            ));
        }
        let mut frame = rec.encode_frame();
        // Rotate before the append so a frame never spans segments.
        if self.file.is_some() && self.segment_bytes >= self.config.segment_max_bytes {
            self.flush_os(self.config.fsync != FsyncMode::Off)?;
            self.file = None;
            self.segment_first_seq = None;
        }
        if self.file.is_none() {
            self.start_segment()?;
        }
        if let Some(crash) = self.crash.clone() {
            if crash.injector.should_fail() {
                match crash.fault {
                    DurabilityFault::CrashBeforeFlush => {
                        // Power loss with the buffer still in process: the
                        // pending batch and the in-flight record vanish.
                        self.pending.clear();
                        self.pending_records = 0;
                        self.crashed = true;
                        return Err(XdmError::storage_fault(
                            "injected crash before WAL flush; buffered records lost",
                        ));
                    }
                    DurabilityFault::TornTail => {
                        // Crash mid-write: earlier buffered frames reach
                        // the file, the in-flight frame is cut in half.
                        let half = frame.len() / 2;
                        self.pending.extend_from_slice(&frame[..half]);
                        let _ = self.flush_os(false);
                        self.crashed = true;
                        return Err(XdmError::storage_fault(
                            "injected crash mid-append; WAL tail torn",
                        ));
                    }
                    DurabilityFault::BitFlip => {
                        // Media corruption: flip one deterministic bit of
                        // the frame body and carry on as if nothing
                        // happened — only recovery's CRC check can tell.
                        let bit = (self.next_seq as usize).wrapping_mul(11) % (frame.len() * 8);
                        frame[bit / 8] ^= 1 << (bit % 8);
                    }
                }
            }
        }
        let seq = self.next_seq;
        let len = frame.len() as u64;
        match self.config.fsync {
            FsyncMode::Always => {
                self.pending.extend_from_slice(&frame);
                self.flush_os(true)?;
            }
            FsyncMode::Off => {
                self.pending.extend_from_slice(&frame);
                self.flush_os(false)?;
            }
            FsyncMode::Batch => {
                self.pending.extend_from_slice(&frame);
                self.pending_records += 1;
                if self.pending_records >= self.config.batch_records {
                    self.flush_os(true)?;
                }
            }
        }
        self.next_seq += 1;
        self.segment_bytes += len;
        Ok((seq, len))
    }

    /// Flush buffered records to the OS and (except `fsync off`) the disk.
    pub fn flush(&mut self) -> Result<(), XdmError> {
        if self.crashed {
            return Err(XdmError::storage_fault("WAL writer crashed (simulated)"));
        }
        self.flush_os(self.config.fsync != FsyncMode::Off)
    }

    /// Finish the current segment so the next append opens a fresh one.
    /// Used by checkpoints: everything at or below the snapshot's covering
    /// sequence then lives in prunable whole segments.
    pub fn rotate(&mut self) -> Result<(), XdmError> {
        self.flush()?;
        self.file = None;
        self.segment_first_seq = None;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Delete segments and snapshots made redundant by a snapshot covering
    /// `covers_seq`. Call after [`WalWriter::rotate`]: every closed segment
    /// holds only records `<= covers_seq` and can go; the active segment
    /// (if any) started at `covers_seq + 1`.
    pub fn prune(&mut self, covers_seq: u64) -> Result<usize, XdmError> {
        let mut removed = 0;
        for seg in list_segments(&self.dir)? {
            if seg.first_seq <= covers_seq && Some(&seg.path) != self.current_path().as_ref() {
                fs::remove_file(&seg.path).map_err(|e| {
                    XdmError::storage_fault(format!("prune {}: {e}", seg.path.display()))
                })?;
                removed += 1;
            }
        }
        for (covers, path) in list_snapshots(&self.dir)? {
            if covers < covers_seq {
                fs::remove_file(&path).map_err(|e| {
                    XdmError::storage_fault(format!("prune {}: {e}", path.display()))
                })?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    fn current_path(&self) -> Option<PathBuf> {
        self.file.as_ref()?;
        Some(self.dir.join(segment_file_name(self.segment_first_seq.unwrap_or(self.next_seq))))
    }

    fn start_segment(&mut self) -> Result<(), XdmError> {
        let path = self.dir.join(segment_file_name(self.next_seq));
        let mut f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(|e| XdmError::storage_fault(format!("create {}: {e}", path.display())))?;
        let mut header = Vec::with_capacity(SEGMENT_HEADER);
        header.extend_from_slice(SEGMENT_MAGIC);
        header.extend_from_slice(&self.next_seq.to_le_bytes());
        f.write_all(&header)
            .map_err(|e| XdmError::storage_fault(format!("write {}: {e}", path.display())))?;
        if self.config.fsync == FsyncMode::Always {
            f.sync_all()
                .map_err(|e| XdmError::storage_fault(format!("fsync {}: {e}", path.display())))?;
            sync_dir(&self.dir);
        }
        self.file = Some(f);
        self.segment_bytes = SEGMENT_HEADER as u64;
        self.segment_first_seq = Some(self.next_seq);
        Ok(())
    }

    fn flush_os(&mut self, sync: bool) -> Result<(), XdmError> {
        if self.pending.is_empty() && !sync {
            return Ok(());
        }
        let Some(f) = self.file.as_mut() else {
            return Ok(());
        };
        if !self.pending.is_empty() {
            f.write_all(&self.pending)
                .map_err(|e| XdmError::storage_fault(format!("WAL write: {e}")))?;
            self.pending.clear();
            self.pending_records = 0;
        }
        if sync {
            f.sync_all().map_err(|e| XdmError::storage_fault(format!("WAL fsync: {e}")))?;
        }
        Ok(())
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Clean shutdown flushes the batch buffer; a simulated crash does
        // not (that is the point of the simulation).
        if !self.crashed {
            let _ = self.flush_os(self.config.fsync != FsyncMode::Off);
        }
    }
}

/// Best-effort directory-entry durability (Linux supports fsync on a
/// directory fd; elsewhere this silently does nothing).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// `wal-<first_seq>.seg`, zero-padded so lexicographic = numeric order.
pub fn segment_file_name(first_seq: u64) -> String {
    format!("wal-{first_seq:012}.seg")
}

/// `snapshot-<covers_seq>.snap`.
pub fn snapshot_file_name(covers_seq: u64) -> String {
    format!("snapshot-{covers_seq:012}.snap")
}

#[derive(Debug)]
struct SegmentRef {
    first_seq: u64,
    path: PathBuf,
}

fn list_segments(dir: &Path) -> Result<Vec<SegmentRef>, XdmError> {
    let mut out = Vec::new();
    for name in list_dir(dir)? {
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".seg"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            out.push(SegmentRef { first_seq: seq, path: dir.join(&name) });
        }
    }
    out.sort_by_key(|s| s.first_seq);
    Ok(out)
}

fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, XdmError> {
    let mut out = Vec::new();
    for name in list_dir(dir)? {
        if let Some(seq) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".snap"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            out.push((seq, dir.join(&name)));
        }
    }
    out.sort_by_key(|s| s.0);
    Ok(out)
}

fn list_dir(dir: &Path) -> Result<Vec<String>, XdmError> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let rd = fs::read_dir(dir)
        .map_err(|e| XdmError::storage_fault(format!("read {}: {e}", dir.display())))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry =
            entry.map_err(|e| XdmError::storage_fault(format!("read {}: {e}", dir.display())))?;
        if let Some(name) = entry.file_name().to_str() {
            out.push(name.to_string());
        }
    }
    Ok(out)
}

/// Write a snapshot covering everything up to `covers_seq`, atomically
/// (temp file + fsync + rename). `records` must rebuild the full state in
/// order: table DDL, then rows, then index DDL last so index back-fill
/// sees every document.
pub fn write_snapshot(
    dir: &Path,
    covers_seq: u64,
    records: &[WalRecord],
) -> Result<PathBuf, XdmError> {
    fs::create_dir_all(dir)
        .map_err(|e| XdmError::storage_fault(format!("create {}: {e}", dir.display())))?;
    let mut buf = Vec::with_capacity(SNAPSHOT_HEADER + records.len() * 64);
    buf.extend_from_slice(SNAPSHOT_MAGIC);
    buf.extend_from_slice(&covers_seq.to_le_bytes());
    buf.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for rec in records {
        buf.extend_from_slice(&rec.encode_frame());
    }
    let final_path = dir.join(snapshot_file_name(covers_seq));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(covers_seq)));
    let mut f = File::create(&tmp_path)
        .map_err(|e| XdmError::storage_fault(format!("create {}: {e}", tmp_path.display())))?;
    f.write_all(&buf)
        .map_err(|e| XdmError::storage_fault(format!("write {}: {e}", tmp_path.display())))?;
    f.sync_all()
        .map_err(|e| XdmError::storage_fault(format!("fsync {}: {e}", tmp_path.display())))?;
    drop(f);
    fs::rename(&tmp_path, &final_path).map_err(|e| {
        XdmError::storage_fault(format!("rename snapshot into place: {e}"))
    })?;
    sync_dir(dir);
    Ok(final_path)
}

/// Everything replay recovered from a data directory.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Sequence the loaded snapshot covers (0: no snapshot).
    pub snapshot_covers: u64,
    /// State-rebuilding records from the snapshot, in order.
    pub snapshot_records: Vec<WalRecord>,
    /// The page-file manifest, if the directory holds one (paged
    /// checkpoints write manifests instead of snapshots).
    pub manifest: Option<Manifest>,
    /// Log records after the snapshot/manifest cover, as
    /// `(sequence, record)` in order.
    pub wal_records: Vec<(u64, WalRecord)>,
    /// Highest sequence number recovered (0 for an empty directory).
    pub last_seq: u64,
    /// Torn tails truncated (0 or 1 — only the newest segment can tear).
    pub torn_tail_truncations: u64,
    /// Segment files scanned.
    pub segments_scanned: usize,
}

/// Replay a data directory: load the newest snapshot, then every segment,
/// skipping records the snapshot already covers.
///
/// Self-healing: a torn final frame in the newest segment is truncated
/// away (counted in [`Recovered::torn_tail_truncations`]). Everything else
/// — CRC mismatch, bad magic/header, mid-log torn frame, sequence gap — is
/// unrecoverable corruption: the offending file is renamed to
/// `<name>.quarantined` and a typed `WalCorrupt` error names it.
pub fn replay(dir: &Path) -> Result<Recovered, XdmError> {
    let mut out = Recovered::default();

    // Leftover snapshot temp files are crash artifacts; remove them.
    for name in list_dir(dir)? {
        if name.ends_with(".snap.tmp") {
            let _ = fs::remove_file(dir.join(&name));
        }
    }

    if let Some((covers, path)) = list_snapshots(dir)?.into_iter().next_back() {
        let records = read_snapshot(&path, covers)?;
        out.snapshot_covers = covers;
        out.snapshot_records = records;
        out.last_seq = covers;
    }

    out.manifest = read_manifest(dir)?;
    // Records at or below the cover are already durable (snapshot state or
    // checkpointed pages); replay applies only the suffix.
    let covered = out.snapshot_covers.max(out.manifest.as_ref().map_or(0, |m| m.covers));
    out.last_seq = out.last_seq.max(covered);

    let segments = list_segments(dir)?;
    let mut next_expected: Option<u64> = None;
    let last_index = segments.len().saturating_sub(1);
    for (i, seg) in segments.iter().enumerate() {
        out.segments_scanned += 1;
        let is_last = i == last_index;
        let bytes = fs::read(&seg.path)
            .map_err(|e| XdmError::storage_fault(format!("read {}: {e}", seg.path.display())))?;
        if bytes.len() < SEGMENT_HEADER {
            if is_last {
                // Crash while creating the segment: no record survived.
                fs::remove_file(&seg.path).map_err(|e| {
                    XdmError::storage_fault(format!("remove {}: {e}", seg.path.display()))
                })?;
                out.torn_tail_truncations += 1;
                continue;
            }
            return Err(quarantine(&seg.path, "segment header truncated mid-log"));
        }
        if &bytes[..8] != SEGMENT_MAGIC {
            return Err(quarantine(&seg.path, "bad segment magic"));
        }
        let mut first = [0u8; 8];
        first.copy_from_slice(&bytes[8..16]);
        let first_seq = u64::from_le_bytes(first);
        if first_seq != seg.first_seq {
            return Err(quarantine(
                &seg.path,
                &format!("header sequence {first_seq} does not match file name"),
            ));
        }
        if let Some(expected) = next_expected {
            if first_seq != expected {
                return Err(XdmError::wal_corrupt(format!(
                    "sequence gap before {}: expected {expected}, found {first_seq} \
                     (a segment is missing or quarantined)",
                    seg.path.display()
                )));
            }
        } else if covered > 0 && first_seq > covered + 1 {
            return Err(XdmError::wal_corrupt(format!(
                "sequence gap after checkpoint {covered}: first segment {} starts at {first_seq}",
                seg.path.display()
            )));
        }

        let mut pos = SEGMENT_HEADER;
        let mut seq = first_seq;
        loop {
            if pos == bytes.len() {
                break;
            }
            match parse_frame(&bytes[pos..]) {
                FrameOutcome::Record(rec, consumed) => {
                    if seq > covered {
                        out.wal_records.push((seq, rec));
                        out.last_seq = seq;
                    }
                    seq += 1;
                    pos += consumed;
                }
                FrameOutcome::Torn if is_last => {
                    // The expected crash artifact: drop the torn bytes.
                    let f = OpenOptions::new().write(true).open(&seg.path).map_err(|e| {
                        XdmError::storage_fault(format!("open {}: {e}", seg.path.display()))
                    })?;
                    f.set_len(pos as u64).map_err(|e| {
                        XdmError::storage_fault(format!(
                            "truncate {}: {e}",
                            seg.path.display()
                        ))
                    })?;
                    out.torn_tail_truncations += 1;
                    break;
                }
                FrameOutcome::Torn => {
                    return Err(quarantine(&seg.path, "incomplete frame mid-log"));
                }
                FrameOutcome::Corrupt(e) => {
                    return Err(quarantine(&seg.path, &e.message));
                }
            }
        }
        out.last_seq = out.last_seq.max(seq.saturating_sub(1));
        next_expected = Some(seq);
    }
    Ok(out)
}

fn read_snapshot(path: &Path, covers: u64) -> Result<Vec<WalRecord>, XdmError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| XdmError::storage_fault(format!("read {}: {e}", path.display())))?;
    if bytes.len() < SNAPSHOT_HEADER || &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(quarantine(path, "bad snapshot header"));
    }
    let mut b8 = [0u8; 8];
    b8.copy_from_slice(&bytes[8..16]);
    if u64::from_le_bytes(b8) != covers {
        return Err(quarantine(path, "snapshot header sequence does not match file name"));
    }
    let mut b4 = [0u8; 4];
    b4.copy_from_slice(&bytes[16..20]);
    let count = u32::from_le_bytes(b4) as usize;
    let mut records = Vec::with_capacity(count.min(4096));
    let mut pos = SNAPSHOT_HEADER;
    for _ in 0..count {
        match parse_frame(&bytes[pos..]) {
            FrameOutcome::Record(rec, consumed) => {
                records.push(rec);
                pos += consumed;
            }
            FrameOutcome::Torn => {
                return Err(quarantine(path, "snapshot truncated (snapshots are atomic: media damage)"))
            }
            FrameOutcome::Corrupt(e) => return Err(quarantine(path, &e.message)),
        }
    }
    if pos != bytes.len() {
        return Err(quarantine(path, "trailing bytes after snapshot records"));
    }
    Ok(records)
}

/// Rename a damaged file aside and build the error naming it.
fn quarantine(path: &Path, why: &str) -> XdmError {
    let target = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.quarantined"),
        None => "quarantined".to_string(),
    });
    let moved = fs::rename(path, &target).is_ok();
    XdmError::wal_corrupt(format!(
        "{}: {why}{}",
        path.display(),
        if moved {
            format!(" (segment quarantined as {})", target.display())
        } else {
            " (quarantine rename failed)".to_string()
        }
    ))
}
