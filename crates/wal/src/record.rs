//! Logical WAL records and their checksummed binary encoding.
//!
//! Records are *logical* operations (the statements that mutate durable
//! state), not physical page images: replay re-executes them through the
//! catalog, which rebuilds every B+Tree index with the same code path a
//! live `CREATE INDEX` uses. That keeps the log format independent of the
//! in-memory layout and makes Definition 1 usable as the recovery oracle —
//! a replayed database must answer every query exactly like one that never
//! crashed.
//!
//! ## Frame format
//!
//! Every record is framed as
//!
//! ```text
//! [u32 payload_len (LE)] [u32 crc32(payload) (LE)] [payload bytes]
//! ```
//!
//! The CRC covers the payload only; a frame whose bytes end early is a
//! *torn tail* (distinguishable from corruption only at the end of the last
//! segment), a frame whose CRC mismatches is *corruption*. All multi-byte
//! integers are little-endian. Strings are `u32` length + UTF-8 bytes.

use xqdb_xdm::XdmError;

/// Upper bound on a single record's payload (documents are parsed under
/// `ParseLimits` long before they reach the log, so anything larger than
/// this is a corrupt length field, not a real record).
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Bytes of framing overhead per record (length + CRC).
pub const FRAME_HEADER: usize = 8;

// ---------------------------------------------------------------- CRC32

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
///
/// CRC-32 detects every error burst of 32 bits or fewer, so any
/// single-byte (or single-bit) flip in a payload is guaranteed to be
/// caught — the property the corruption-fuzz suite asserts exhaustively.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: [u32; 256] = build_crc_table();
    let mut crc = !0u32;
    for &b in bytes {
        let idx = (crc ^ u32::from(b)) & 0xFF;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

// ------------------------------------------------------------- records

/// A logged value — the serializable mirror of the storage layer's
/// `SqlValue`. XML documents travel as their serialized text and are
/// re-parsed on replay (parse ∘ serialize is the identity on stored
/// documents, so replayed query results stay byte-identical).
#[derive(Debug, Clone, PartialEq)]
pub enum WalValue {
    /// SQL NULL.
    Null,
    /// INTEGER.
    Integer(i64),
    /// DOUBLE / DECIMAL (bit-exact: encoded as the IEEE-754 bits).
    Double(f64),
    /// VARCHAR.
    Varchar(String),
    /// DATE, in its lexical form.
    Date(String),
    /// TIMESTAMP, in its lexical form.
    Timestamp(String),
    /// An XML document, serialized.
    Xml(String),
}

/// One logical operation in the log. Also the snapshot record format — a
/// snapshot is just the minimal record sequence that rebuilds current
/// state (tables, then rows, then index DDL so back-fill sees every row).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `CREATE TABLE name (col ty, ...)` — types in their SQL spelling.
    CreateTable {
        /// Table name (upper-cased).
        name: String,
        /// `(column name, SQL type spelling)` pairs.
        columns: Vec<(String, String)>,
    },
    /// `CREATE INDEX name ON table(column) USING XMLPATTERN 'p' AS ty`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// XML column name.
        column: String,
        /// The XMLPATTERN text.
        pattern: String,
        /// The `AS` type spelling (`double` / `varchar(n)` / ...).
        ty: String,
    },
    /// `INSERT INTO table VALUES (...)` with conformed values.
    Insert {
        /// Table name.
        table: String,
        /// The row, one value per column.
        values: Vec<WalValue>,
    },
    /// A checkpoint marker: everything up to and including `covers` is
    /// durable in the page file + manifest. Replay skips it (it mutates
    /// nothing) but counts it, so recovery can assert the suffix-only
    /// property.
    Checkpoint {
        /// Highest WAL sequence captured by the checkpoint.
        covers: u64,
    },
    /// `DELETE FROM table WHERE ...` resolved to the matching row ids.
    /// One record per statement: the whole statement is atomic in the log.
    /// Row ids are stable insertion ordinals, never reused, so replay is
    /// deterministic and idempotent.
    Delete {
        /// Table name.
        table: String,
        /// The deleted row ids, in ascending order.
        rowids: Vec<u64>,
    },
    /// Full-row replacement (`UPDATE table SET ... WHERE ...` resolved to
    /// one row): the row keeps its id, every column takes the new value.
    Replace {
        /// Table name.
        table: String,
        /// The replaced row id.
        rowid: u64,
        /// The new row, one value per column.
        values: Vec<WalValue>,
    },
}

const TAG_CREATE_TABLE: u8 = 1;
const TAG_CREATE_INDEX: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;
const TAG_DELETE: u8 = 5;
const TAG_REPLACE: u8 = 6;

const VTAG_NULL: u8 = 0;
const VTAG_INTEGER: u8 = 1;
const VTAG_DOUBLE: u8 = 2;
const VTAG_VARCHAR: u8 = 3;
const VTAG_DATE: u8 = 4;
const VTAG_TIMESTAMP: u8 = 5;
const VTAG_XML: u8 = 6;

impl WalRecord {
    /// Encode the payload (no frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            WalRecord::CreateTable { name, columns } => {
                out.push(TAG_CREATE_TABLE);
                put_str(&mut out, name);
                put_u32(&mut out, columns.len() as u32);
                for (cname, cty) in columns {
                    put_str(&mut out, cname);
                    put_str(&mut out, cty);
                }
            }
            WalRecord::CreateIndex { name, table, column, pattern, ty } => {
                out.push(TAG_CREATE_INDEX);
                put_str(&mut out, name);
                put_str(&mut out, table);
                put_str(&mut out, column);
                put_str(&mut out, pattern);
                put_str(&mut out, ty);
            }
            WalRecord::Insert { table, values } => {
                out.push(TAG_INSERT);
                put_str(&mut out, table);
                put_values(&mut out, values);
            }
            WalRecord::Checkpoint { covers } => {
                out.push(TAG_CHECKPOINT);
                out.extend_from_slice(&covers.to_le_bytes());
            }
            WalRecord::Delete { table, rowids } => {
                out.push(TAG_DELETE);
                put_str(&mut out, table);
                put_u32(&mut out, rowids.len() as u32);
                for &row in rowids {
                    out.extend_from_slice(&row.to_le_bytes());
                }
            }
            WalRecord::Replace { table, rowid, values } => {
                out.push(TAG_REPLACE);
                put_str(&mut out, table);
                out.extend_from_slice(&rowid.to_le_bytes());
                put_values(&mut out, values);
            }
        }
        out
    }

    /// Decode a payload. Every read is bounds-checked: corrupt bytes yield
    /// a typed error, never a panic or a mis-decoded record (the CRC makes
    /// reaching this function with damaged bytes practically impossible;
    /// the checks are defense in depth).
    pub fn decode(payload: &[u8]) -> Result<WalRecord, XdmError> {
        let mut r = Reader { buf: payload, pos: 0 };
        let rec = match r.u8()? {
            TAG_CREATE_TABLE => {
                let name = r.str()?;
                let n = r.u32()? as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let cname = r.str()?;
                    let cty = r.str()?;
                    columns.push((cname, cty));
                }
                WalRecord::CreateTable { name, columns }
            }
            TAG_CREATE_INDEX => WalRecord::CreateIndex {
                name: r.str()?,
                table: r.str()?,
                column: r.str()?,
                pattern: r.str()?,
                ty: r.str()?,
            },
            TAG_INSERT => {
                let table = r.str()?;
                let values = read_values(&mut r)?;
                WalRecord::Insert { table, values }
            }
            TAG_CHECKPOINT => {
                WalRecord::Checkpoint { covers: u64::from_le_bytes(r.bytes8()?) }
            }
            TAG_DELETE => {
                let table = r.str()?;
                let n = r.u32()? as usize;
                let mut rowids = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rowids.push(u64::from_le_bytes(r.bytes8()?));
                }
                WalRecord::Delete { table, rowids }
            }
            TAG_REPLACE => {
                let table = r.str()?;
                let rowid = u64::from_le_bytes(r.bytes8()?);
                let values = read_values(&mut r)?;
                WalRecord::Replace { table, rowid, values }
            }
            t => return Err(XdmError::wal_corrupt(format!("unknown WAL record tag {t}"))),
        };
        if r.pos != payload.len() {
            return Err(XdmError::wal_corrupt(format!(
                "{} trailing bytes after WAL record",
                payload.len() - r.pos
            )));
        }
        Ok(rec)
    }

    /// Encode as a complete frame: `[len][crc][payload]`.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode();
        let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encode a value list as `u32 count` + tagged values (shared by Insert
/// and Replace so both row-image encodings are byte-compatible).
fn put_values(out: &mut Vec<u8>, values: &[WalValue]) {
    put_u32(out, values.len() as u32);
    for v in values {
        match v {
            WalValue::Null => out.push(VTAG_NULL),
            WalValue::Integer(i) => {
                out.push(VTAG_INTEGER);
                out.extend_from_slice(&i.to_le_bytes());
            }
            WalValue::Double(d) => {
                out.push(VTAG_DOUBLE);
                out.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            WalValue::Varchar(s) => {
                out.push(VTAG_VARCHAR);
                put_str(out, s);
            }
            WalValue::Date(s) => {
                out.push(VTAG_DATE);
                put_str(out, s);
            }
            WalValue::Timestamp(s) => {
                out.push(VTAG_TIMESTAMP);
                put_str(out, s);
            }
            WalValue::Xml(s) => {
                out.push(VTAG_XML);
                put_str(out, s);
            }
        }
    }
}

fn read_values(r: &mut Reader<'_>) -> Result<Vec<WalValue>, XdmError> {
    let n = r.u32()? as usize;
    let mut values = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        values.push(match r.u8()? {
            VTAG_NULL => WalValue::Null,
            VTAG_INTEGER => WalValue::Integer(i64::from_le_bytes(r.bytes8()?)),
            VTAG_DOUBLE => WalValue::Double(f64::from_bits(u64::from_le_bytes(r.bytes8()?))),
            VTAG_VARCHAR => WalValue::Varchar(r.str()?),
            VTAG_DATE => WalValue::Date(r.str()?),
            VTAG_TIMESTAMP => WalValue::Timestamp(r.str()?),
            VTAG_XML => WalValue::Xml(r.str()?),
            t => return Err(XdmError::wal_corrupt(format!("unknown WAL value tag {t}"))),
        });
    }
    Ok(values)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], XdmError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            XdmError::wal_corrupt("WAL record truncated mid-field")
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, XdmError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, XdmError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn bytes8(&mut self) -> Result<[u8; 8], XdmError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(a)
    }

    fn str(&mut self) -> Result<String, XdmError> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| XdmError::wal_corrupt("WAL string field is not UTF-8"))
    }
}

/// Outcome of parsing one frame out of a byte stream.
#[derive(Debug)]
pub enum FrameOutcome {
    /// A complete, checksum-valid frame: the record and the total frame
    /// length consumed.
    Record(WalRecord, usize),
    /// The remaining bytes end before the frame does (length field says
    /// more is coming). At the end of the *last* segment this is a torn
    /// tail; anywhere else it is corruption.
    Torn,
    /// The frame is present but damaged: CRC mismatch, absurd length, or
    /// an undecodable payload.
    Corrupt(XdmError),
}

/// Parse the frame starting at `buf[0]`.
pub fn parse_frame(buf: &[u8]) -> FrameOutcome {
    if buf.len() < FRAME_HEADER {
        return FrameOutcome::Torn;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_PAYLOAD {
        return FrameOutcome::Corrupt(XdmError::wal_corrupt(format!(
            "WAL frame claims {len}-byte payload (limit {MAX_PAYLOAD})"
        )));
    }
    let total = FRAME_HEADER + len as usize;
    if buf.len() < total {
        return FrameOutcome::Torn;
    }
    let payload = &buf[FRAME_HEADER..total];
    let actual = crc32(payload);
    if actual != crc {
        return FrameOutcome::Corrupt(XdmError::wal_corrupt(format!(
            "WAL frame CRC mismatch (stored {crc:#010x}, computed {actual:#010x})"
        )));
    }
    match WalRecord::decode(payload) {
        Ok(rec) => FrameOutcome::Record(rec, total),
        Err(e) => FrameOutcome::Corrupt(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::CreateTable {
                name: "ORDERS".into(),
                columns: vec![
                    ("ORDID".into(), "INTEGER".into()),
                    ("ORDDOC".into(), "XML".into()),
                ],
            },
            WalRecord::CreateIndex {
                name: "LI_PRICE".into(),
                table: "ORDERS".into(),
                column: "ORDDOC".into(),
                pattern: "//lineitem/@price".into(),
                ty: "double".into(),
            },
            WalRecord::Insert {
                table: "ORDERS".into(),
                values: vec![
                    WalValue::Integer(-7),
                    WalValue::Double(99.5),
                    WalValue::Varchar("héllo".into()),
                    WalValue::Date("2026-08-05".into()),
                    WalValue::Timestamp("2026-08-05T12:00:00".into()),
                    WalValue::Xml("<order><lineitem price=\"99.50\"/></order>".into()),
                    WalValue::Null,
                ],
            },
            WalRecord::Checkpoint { covers: 12345 },
            WalRecord::Delete { table: "ORDERS".into(), rowids: vec![0, 3, 17, u64::MAX] },
            WalRecord::Replace {
                table: "ORDERS".into(),
                rowid: 42,
                values: vec![
                    WalValue::Integer(42),
                    WalValue::Xml("<order><lineitem price=\"1.25\"/></order>".into()),
                    WalValue::Null,
                ],
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for rec in sample_records() {
            let payload = rec.encode();
            assert_eq!(WalRecord::decode(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn frame_roundtrip_and_boundaries() {
        let rec = sample_records().remove(2);
        let frame = rec.encode_frame();
        match parse_frame(&frame) {
            FrameOutcome::Record(r, consumed) => {
                assert_eq!(r, rec);
                assert_eq!(consumed, frame.len());
            }
            other => panic!("expected record, got {other:?}"),
        }
        // Any strict prefix is torn, never corrupt and never a record.
        for cut in 0..frame.len() {
            match parse_frame(&frame[..cut]) {
                FrameOutcome::Torn => {}
                other => panic!("prefix {cut} should be torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_torn() {
        let mut frame = sample_records()[0].encode_frame();
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(parse_frame(&frame), FrameOutcome::Corrupt(_)));
    }

    #[test]
    fn trailing_garbage_inside_payload_is_corrupt() {
        let rec = WalRecord::Insert { table: "T".into(), values: vec![WalValue::Null] };
        let mut payload = rec.encode();
        payload.push(0xAB); // extra byte, CRC recomputed to match
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        match parse_frame(&frame) {
            FrameOutcome::Corrupt(e) => {
                assert_eq!(e.code, xqdb_xdm::ErrorCode::WalCorrupt);
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }
}
