//! Durability: the mapping between engine state and the write-ahead log.
//!
//! `xqdb-wal` knows only records, frames, segments and manifests; this
//! module gives those records meaning. [`Durability`] implements the
//! storage layer's [`PersistenceHook`] so every catalog mutation is
//! appended to the log **before** it is applied. A checkpoint flushes the
//! dirty pages of the shared page file (`pages.xqp`), freezes them, writes
//! the metadata manifest and cuts the log; [`recover_catalog`] then adopts
//! the checkpointed rows straight from heap pages (a record-header scan)
//! and replays only the WAL *suffix* through the ordinary DDL/DML code
//! paths — indexes are re-derived by the same (parallelizable) back-fill a
//! live `CREATE INDEX` runs, never read from disk.
//!
//! Correctness is judged by the paper's Definition 1 oracle: a recovered
//! catalog must answer every query byte-identically to an in-memory
//! catalog that executed the same durable prefix of statements. The
//! chaos-recovery matrix in `tests/chaos_recovery.rs` asserts exactly
//! that, across crash points, fsync modes and thread counts.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use xqdb_obs::{Counter, Obs, Trace};
use xqdb_pager::{buffer_pages_from_env, discover_heap_pages, Pager};
use xqdb_runtime::RuntimeConfig;
use xqdb_storage::{
    Column, Database, PathSynopsis, PersistenceHook, SqlType, SqlValue, Table,
};
use xqdb_wal::{
    replay, write_manifest, CrashInjector, Manifest, ManifestTable, WalConfig, WalRecord,
    WalValue, WalWriter,
};
use xqdb_xdm::XdmError;

use crate::catalog::Catalog;

/// The page file's name within a data directory (next to the WAL
/// segments and the checkpoint manifest).
pub const PAGES_FILE: &str = "pages.xqp";

// ------------------------------------------------------- value conversion

/// Encode a stored value for the log. Lossless for everything the engine
/// stores: doubles keep their exact bits, temporal values round-trip
/// through their lexical form, XML documents through serialization.
fn to_wal_value(v: &SqlValue) -> WalValue {
    match v {
        SqlValue::Null => WalValue::Null,
        SqlValue::Integer(i) => WalValue::Integer(*i),
        SqlValue::Double(d) => WalValue::Double(*d),
        SqlValue::Varchar(s) => WalValue::Varchar(s.clone()),
        SqlValue::Date(d) => WalValue::Date(d.to_string()),
        SqlValue::Timestamp(t) => WalValue::Timestamp(t.to_string()),
        SqlValue::Xml(n) => WalValue::Xml(xqdb_xmlparse::serialize_node(n)),
    }
}

/// Decode a logged value back into a stored value. XML text is re-parsed
/// into a fresh document tree (node identity is not durable — only
/// content is, which is all Definition 1 observes).
fn from_wal_value(v: &WalValue) -> Result<SqlValue, XdmError> {
    Ok(match v {
        WalValue::Null => SqlValue::Null,
        WalValue::Integer(i) => SqlValue::Integer(*i),
        WalValue::Double(d) => SqlValue::Double(*d),
        WalValue::Varchar(s) => SqlValue::Varchar(s.clone()),
        WalValue::Date(s) => SqlValue::Date(xqdb_xdm::Date::parse(s)?),
        WalValue::Timestamp(s) => SqlValue::Timestamp(xqdb_xdm::DateTime::parse(s)?),
        WalValue::Xml(s) => {
            let doc = xqdb_xmlparse::parse_document(s).map_err(|e| {
                XdmError::wal_corrupt(format!("logged XML document no longer parses: {e}"))
            })?;
            SqlValue::Xml(doc.root())
        }
    })
}

// ------------------------------------------------------------ the hook

/// The persistence hook: owns the [`WalWriter`] and appends one logical
/// record per mutation. Installed on a [`Catalog`]'s database as an
/// `Arc<dyn PersistenceHook>`; an append failure vetoes the mutation, so
/// in-memory state never runs ahead of the log.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    writer: Mutex<WalWriter>,
    /// Observability handle; swapped when the session's handle changes.
    obs: Mutex<Obs>,
}

/// A poisoned lock means a panic mid-append — the writer state is suspect,
/// so refuse further work with a typed error instead of unwrapping.
fn lock_err(what: &str) -> XdmError {
    XdmError::internal(format!("durability {what} lock poisoned by an earlier panic"))
}

impl Durability {
    /// Open (or create) the log in `dir`, continuing after `last_seq` (the
    /// highest sequence a preceding [`recover_catalog`] returned; 0 for a
    /// fresh directory).
    pub fn open(dir: &Path, config: WalConfig, last_seq: u64) -> Result<Durability, XdmError> {
        let writer = WalWriter::open(dir, config, last_seq)?;
        Ok(Durability {
            dir: dir.to_path_buf(),
            writer: Mutex::new(writer),
            obs: Mutex::new(Obs::disabled()),
        })
    }

    /// The data directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Swap the observability handle (sessions install theirs on attach).
    pub fn set_obs(&self, obs: Obs) {
        if let Ok(mut slot) = self.obs.lock() {
            *slot = obs;
        }
    }

    /// Arm (or disarm) deterministic crash simulation on the writer.
    pub fn set_crash_injector(&self, crash: Option<CrashInjector>) -> Result<(), XdmError> {
        self.writer.lock().map_err(|_| lock_err("writer"))?.set_crash_injector(crash);
        Ok(())
    }

    /// Flush any batched appends to the OS (and disk, per the fsync mode).
    pub fn flush(&self) -> Result<(), XdmError> {
        self.writer.lock().map_err(|_| lock_err("writer"))?.flush()
    }

    fn append(&self, rec: &WalRecord) -> Result<(), XdmError> {
        let (_seq, bytes) =
            self.writer.lock().map_err(|_| lock_err("writer"))?.append(rec)?;
        if let Ok(obs) = self.obs.lock() {
            obs.incr(Counter::WalRecordsAppended);
            obs.add(Counter::WalBytes, bytes);
        }
        Ok(())
    }

    /// Checkpoint: flush the log, reclaim tombstoned heap records from
    /// still-mutable pages, flush every dirty page and freeze the page
    /// file, write the metadata manifest, then cut the log — rotate,
    /// append a [`WalRecord::Checkpoint`] marker and prune the covered
    /// segments. Reclamation runs before the freeze so frozen pages never
    /// carry tombstones: only logical deletes (the manifest's per-table
    /// deleted/stale lists) describe dead data below the watermark. No
    /// live row is re-serialized, which keeps checkpoints O(dirty pages)
    /// instead of O(database). Returns the covered sequence (0 when the
    /// log is still empty — nothing to checkpoint).
    pub fn checkpoint(&self, catalog: &mut Catalog) -> Result<u64, XdmError> {
        let mut writer = self.writer.lock().map_err(|_| lock_err("writer"))?;
        writer.flush()?;
        let covers = writer.next_seq().saturating_sub(1);
        if covers == 0 {
            return Ok(0);
        }
        let names: Vec<String> =
            catalog.db.table_names().into_iter().map(String::from).collect();
        let mut reclaimed = 0u64;
        for name in &names {
            if let Some(t) = catalog.db.table_mut(name) {
                reclaimed += t.reclaim_tombstones()?;
            }
        }
        if let Ok(obs) = self.obs.lock() {
            obs.add(Counter::TombstonesReclaimed, reclaimed);
        }
        let pager = catalog.db.pager();
        pager.flush_all()?;
        let frozen_below = pager.freeze()?;
        write_manifest(&self.dir, &build_manifest(catalog, covers, frozen_below))?;
        writer.rotate()?;
        writer.append(&WalRecord::Checkpoint { covers })?;
        writer.prune(covers)?;
        Ok(covers)
    }
}

/// Collect the checkpoint metadata pages don't carry: table DDL + heap
/// table ids + row counts + synopsis dictionaries, and index DDL for
/// back-fill.
fn build_manifest(catalog: &Catalog, covers: u64, frozen_below: u64) -> Manifest {
    let mut tables = Vec::new();
    for name in catalog.db.table_names() {
        let Some(t) = catalog.db.table(name) else { continue };
        tables.push(ManifestTable {
            name: t.name.clone(),
            table_id: t.table_id(),
            columns: t.columns.iter().map(|c| (c.name.clone(), c.ty.to_string())).collect(),
            row_count: t.len() as u64,
            synopsis: t.synopsis().entries(),
            deleted: t.deleted_rows().collect(),
            stale: t.stale_rows().collect(),
        });
    }
    let indexes = catalog
        .all_indexes()
        .into_iter()
        .map(|idx| WalRecord::CreateIndex {
            name: idx.name.clone(),
            table: idx.table.clone(),
            column: idx.column.clone(),
            pattern: idx.pattern.to_string(),
            ty: idx.ty.to_string(),
        })
        .collect();
    Manifest { covers, frozen_below, tables, indexes }
}

impl PersistenceHook for Durability {
    fn log_create_table(&self, table: &Table) -> Result<(), XdmError> {
        self.append(&WalRecord::CreateTable {
            name: table.name.clone(),
            columns: table
                .columns
                .iter()
                .map(|c| (c.name.clone(), c.ty.to_string()))
                .collect(),
        })
    }

    fn log_insert(&self, table: &str, row: &[SqlValue]) -> Result<(), XdmError> {
        self.append(&WalRecord::Insert {
            table: table.to_string(),
            values: row.iter().map(to_wal_value).collect(),
        })
    }

    fn log_delete(&self, table: &str, rowids: &[u64]) -> Result<(), XdmError> {
        self.append(&WalRecord::Delete {
            table: table.to_string(),
            rowids: rowids.to_vec(),
        })
    }

    fn log_replace(&self, table: &str, rowid: u64, row: &[SqlValue]) -> Result<(), XdmError> {
        self.append(&WalRecord::Replace {
            table: table.to_string(),
            rowid,
            values: row.iter().map(to_wal_value).collect(),
        })
    }

    fn log_create_index(
        &self,
        name: &str,
        table: &str,
        column: &str,
        pattern: &str,
        ty: &str,
    ) -> Result<(), XdmError> {
        self.append(&WalRecord::CreateIndex {
            name: name.to_string(),
            table: table.to_string(),
            column: column.to_string(),
            pattern: pattern.to_string(),
            ty: ty.to_string(),
        })
    }
}

// ---------------------------------------------------- snapshot and replay

/// Dump a catalog as the minimal record sequence that rebuilds it:
/// table DDL (name order), then every row (table order, row order), then
/// index DDL last — so replayed `CREATE INDEX` back-fills from the full
/// row set, exactly like a live one. Legacy snapshot format — live
/// checkpoints write manifests instead, but replay still accepts
/// snapshot files from older data directories. Deleted rows are compacted
/// away (survivors renumber), which is content-faithful only because a
/// snapshot is a full-state dump: legacy directories predate DML, so no
/// WAL suffix can reference the old rowids.
pub fn snapshot_records(catalog: &Catalog) -> Result<Vec<WalRecord>, XdmError> {
    let mut out = Vec::new();
    let names: Vec<String> =
        catalog.db.table_names().into_iter().map(String::from).collect();
    for name in &names {
        let Some(t) = catalog.db.table(name) else { continue };
        out.push(WalRecord::CreateTable {
            name: t.name.clone(),
            columns: t.columns.iter().map(|c| (c.name.clone(), c.ty.to_string())).collect(),
        });
    }
    for name in &names {
        let Some(t) = catalog.db.table(name) else { continue };
        for item in t.scan() {
            let (_row, values) = item?;
            out.push(WalRecord::Insert {
                table: t.name.clone(),
                values: values.iter().map(to_wal_value).collect(),
            });
        }
    }
    for idx in catalog.all_indexes() {
        out.push(WalRecord::CreateIndex {
            name: idx.name.clone(),
            table: idx.table.clone(),
            column: idx.column.clone(),
            pattern: idx.pattern.to_string(),
            ty: idx.ty.to_string(),
        });
    }
    Ok(out)
}

/// Apply one logged record through the ordinary catalog code paths.
fn apply_record(catalog: &mut Catalog, rec: &WalRecord) -> Result<(), XdmError> {
    match rec {
        WalRecord::CreateTable { name, columns } => {
            let mut cols = Vec::with_capacity(columns.len());
            for (cname, cty) in columns {
                cols.push(Column::new(cname, SqlType::parse(cty)?));
            }
            catalog.create_table(Table::new(name, cols))
        }
        WalRecord::CreateIndex { name, table, column, pattern, ty } => {
            catalog.create_index(name, table, column, pattern, ty)
        }
        WalRecord::Insert { table, values } => {
            let mut row = Vec::with_capacity(values.len());
            for v in values {
                row.push(from_wal_value(v)?);
            }
            catalog.insert(table, row).map(|_| ())
        }
        WalRecord::Delete { table, rowids } => catalog.delete(table, rowids).map(|_| ()),
        WalRecord::Replace { table, rowid, values } => {
            let mut row = Vec::with_capacity(values.len());
            for v in values {
                row.push(from_wal_value(v)?);
            }
            catalog.replace(table, *rowid, row)
        }
        // Checkpoint markers mutate nothing; recovery counts them to
        // verify the suffix-only property.
        WalRecord::Checkpoint { .. } => Ok(()),
    }
}

/// What recovery found and rebuilt — the `xqdb recover` report.
#[derive(Debug, Default, Clone)]
pub struct RecoveryReport {
    /// Sequence the loaded snapshot covers (0: recovered from the log alone).
    pub snapshot_covers: u64,
    /// Records applied from the snapshot.
    pub snapshot_records: usize,
    /// Sequence the checkpoint manifest covers (0: no manifest — no paged
    /// checkpoint has run in this directory yet).
    pub manifest_covers: u64,
    /// Tables adopted from the page file via the manifest.
    pub manifest_tables: usize,
    /// Rows adopted directly from heap pages (a header scan, no XML
    /// parsing and no replay).
    pub manifest_rows: usize,
    /// Checkpoint markers found in the log suffix (skipped, not applied).
    pub checkpoint_markers: u64,
    /// Records applied from log segments after the snapshot/manifest cover
    /// (suffix-only when a checkpoint ran: excludes markers).
    pub wal_records_replayed: u64,
    /// True when the page file had a torn trailing page (trimmed away; the
    /// WAL suffix re-creates whatever it held).
    pub page_file_torn: bool,
    /// Torn tails truncated away (crash artifacts, self-healed).
    pub torn_tail_truncations: u64,
    /// Segment files scanned.
    pub segments_scanned: usize,
    /// Highest sequence recovered; the writer continues from here.
    pub last_seq: u64,
    /// Wall-clock recovery time.
    pub duration_ns: u64,
    /// Tables in the rebuilt catalog.
    pub tables: usize,
    /// Rows across all tables.
    pub rows: usize,
    /// Indexes rebuilt (by back-fill, not from disk).
    pub indexes: usize,
}

impl RecoveryReport {
    /// Human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::from("RECOVERY\n");
        if self.manifest_covers > 0 {
            out.push_str(&format!(
                "  checkpoint: manifest covers seq {} ({} table(s), {} row(s) from pages)\n",
                self.manifest_covers, self.manifest_tables, self.manifest_rows
            ));
        } else if self.snapshot_covers > 0 {
            out.push_str(&format!(
                "  snapshot: covers seq {} ({} records)\n",
                self.snapshot_covers, self.snapshot_records
            ));
        } else {
            out.push_str("  checkpoint: none (full log replay)\n");
        }
        out.push_str(&format!(
            "  wal: {} record(s) replayed from {} segment(s)\n",
            self.wal_records_replayed, self.segments_scanned
        ));
        if self.checkpoint_markers > 0 {
            out.push_str(&format!(
                "  checkpoint markers skipped: {}\n",
                self.checkpoint_markers
            ));
        }
        if self.page_file_torn {
            out.push_str("  warning: torn trailing page trimmed from the page file\n");
        }
        if self.torn_tail_truncations > 0 {
            out.push_str(&format!(
                "  warning: {} torn tail(s) truncated (unsynced writes lost in a crash)\n",
                self.torn_tail_truncations
            ));
        }
        out.push_str(&format!("  last sequence: {}\n", self.last_seq));
        out.push_str(&format!(
            "  rebuilt: {} table(s), {} row(s), {} index(es) in {:.3} ms\n",
            self.tables,
            self.rows,
            self.indexes,
            self.duration_ns as f64 / 1e6
        ));
        out
    }
}

/// Rebuild a catalog from a data directory. `runtime` governs the index
/// back-fills replay triggers (recovery parallelizes exactly as far as a
/// live build would). The span tree lands under a `recovery` span on
/// `trace`; counters on `obs`.
pub fn recover_catalog(
    dir: &Path,
    runtime: RuntimeConfig,
    trace: &Trace,
    obs: &Obs,
) -> Result<(Catalog, RecoveryReport), XdmError> {
    let t0 = Instant::now();
    let mut root = trace.span("recovery");

    let recovered = {
        let mut span = root.child("scan log");
        let r = replay(dir)?;
        span.add_count(r.wal_records.len() as u64);
        span.tag_with("segments", || r.segments_scanned.to_string());
        r
    };

    // Open the page file under the manifest's freeze watermark: everything
    // below it is immutable checkpointed state; anything damaged above it
    // is a crash artifact the WAL suffix re-creates.
    let frozen_below = recovered.manifest.as_ref().map_or(0, |m| m.frozen_below);
    let (pager, page_file_torn) = {
        let mut span = root.child("open pages");
        std::fs::create_dir_all(dir).map_err(|e| {
            XdmError::storage_fault(format!("create {}: {e}", dir.display()))
        })?;
        let (p, torn) =
            Pager::open_file(&dir.join(PAGES_FILE), buffer_pages_from_env(), frozen_below)?;
        // Drop every page above the watermark before discovery, intact or
        // not: the WAL suffix re-creates that state, and replaying next to
        // a stale partially-flushed copy would duplicate live rowids.
        let dropped = p.discard_unfrozen()?;
        span.tag_with("pages", || p.page_count().to_string());
        span.tag_with("discarded", || dropped.to_string());
        (Arc::new(p), torn)
    };

    let mut catalog = Catalog::new();
    catalog.runtime = runtime;
    catalog.obs = obs.clone();
    catalog.db = Database::with_pager(Arc::clone(&pager));

    // Manifest path: adopt checkpointed tables straight from heap pages (a
    // record-header scan — no XML parsing, no replay), then rebuild the
    // indexes by back-fill, exactly like a live CREATE INDEX.
    let (mut manifest_tables, mut manifest_rows) = (0usize, 0usize);
    if let Some(manifest) = &recovered.manifest {
        let mut span = root.child("adopt pages");
        let mut heap_pages = discover_heap_pages(&pager)?;
        for mt in &manifest.tables {
            let mut cols = Vec::with_capacity(mt.columns.len());
            for (cn, ct) in &mt.columns {
                cols.push(Column::new(cn, SqlType::parse(ct)?));
            }
            let pages = heap_pages.remove(&mt.table_id).unwrap_or_default();
            let mut table = Table::from_pages(
                &mt.name,
                cols,
                Arc::clone(&pager),
                mt.table_id,
                pages,
                mt.row_count,
                &mt.deleted,
                &mt.stale,
            )?;
            table.set_synopsis(PathSynopsis::from_entries(mt.synopsis.iter().cloned()));
            manifest_tables += 1;
            manifest_rows += table.live_len();
            catalog.db.adopt_recovered_table(table)?;
        }
        for rec in &manifest.indexes {
            apply_record(&mut catalog, rec)?;
        }
        span.add_count(manifest_rows as u64);
    }

    {
        let mut span = root.child("apply snapshot");
        for rec in &recovered.snapshot_records {
            apply_record(&mut catalog, rec)?;
        }
        span.add_count(recovered.snapshot_records.len() as u64);
    }
    let mut checkpoint_markers = 0u64;
    let mut replayed = 0u64;
    {
        let mut span = root.child("replay wal");
        for (_seq, rec) in &recovered.wal_records {
            if matches!(rec, WalRecord::Checkpoint { .. }) {
                checkpoint_markers += 1;
                continue;
            }
            apply_record(&mut catalog, rec)?;
            replayed += 1;
        }
        span.add_count(replayed);
    }

    let duration_ns =
        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    obs.add(Counter::WalRecordsReplayed, replayed);
    obs.add(Counter::TornTailTruncations, recovered.torn_tail_truncations);
    obs.add(Counter::RecoveryNanos, duration_ns);
    root.add_count(replayed);

    let tables = catalog.db.table_names().len();
    let rows = catalog
        .db
        .table_names()
        .iter()
        .filter_map(|n| catalog.db.table(n))
        .map(Table::live_len)
        .sum();
    let report = RecoveryReport {
        snapshot_covers: recovered.snapshot_covers,
        snapshot_records: recovered.snapshot_records.len(),
        manifest_covers: recovered.manifest.as_ref().map_or(0, |m| m.covers),
        manifest_tables,
        manifest_rows,
        checkpoint_markers,
        wal_records_replayed: replayed,
        page_file_torn,
        torn_tail_truncations: recovered.torn_tail_truncations,
        segments_scanned: recovered.segments_scanned,
        last_seq: recovered.last_seq,
        duration_ns,
        tables,
        rows,
        indexes: catalog.all_indexes().len(),
    };
    Ok((catalog, report))
}

/// Open a data directory as a durable catalog: recover whatever is there,
/// then attach a fresh [`Durability`] hook continuing the sequence. The
/// common entry point for sessions and tests.
pub fn open_durable_catalog(
    dir: &Path,
    config: WalConfig,
    runtime: RuntimeConfig,
    trace: &Trace,
    obs: &Obs,
) -> Result<(Catalog, Arc<Durability>, RecoveryReport), XdmError> {
    let (mut catalog, report) = recover_catalog(dir, runtime, trace, obs)?;
    let durability = Arc::new(Durability::open(dir, config, report.last_seq)?);
    durability.set_obs(obs.clone());
    catalog.db.set_persistence(Some(durability.clone()));
    Ok((catalog, durability, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(label: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir =
            PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/test-tmp"))
                .join(format!(
                    "dur_{label}_{}_{}",
                    std::process::id(),
                    N.fetch_add(1, Ordering::Relaxed)
                ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> (Catalog, Arc<Durability>, RecoveryReport) {
        open_durable_catalog(
            dir,
            WalConfig::default(),
            RuntimeConfig::default(),
            &Trace::disabled(),
            &Obs::disabled(),
        )
        .unwrap()
    }

    fn populate(catalog: &mut Catalog) {
        catalog
            .create_table(Table::new(
                "orders",
                vec![
                    Column::new("ordid", SqlType::Integer),
                    Column::new("orddoc", SqlType::Xml),
                ],
            ))
            .unwrap();
        for i in 0..4 {
            let doc = xqdb_xmlparse::parse_document(&format!(
                r#"<order><lineitem price="{}"/></order>"#,
                100 + i
            ))
            .unwrap();
            catalog
                .insert("orders", vec![SqlValue::Integer(i), SqlValue::Xml(doc.root())])
                .unwrap();
        }
        catalog
            .create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
            .unwrap();
    }

    #[test]
    fn log_apply_recover_roundtrip() {
        let dir = temp_dir("roundtrip");
        {
            let (mut catalog, durability, report) = open(&dir);
            assert_eq!(report.last_seq, 0);
            populate(&mut catalog);
            durability.flush().unwrap();
        }
        let (catalog, _d, report) = open(&dir);
        assert_eq!(report.wal_records_replayed, 6); // 1 DDL + 4 rows + 1 index
        assert_eq!(report.tables, 1);
        assert_eq!(report.rows, 4);
        assert_eq!(report.indexes, 1);
        // The index was rebuilt by back-fill, not read from disk.
        assert_eq!(catalog.index("li_price").unwrap().len(), 4);
    }

    #[test]
    fn checkpoint_bounds_replay_and_prunes() {
        let dir = temp_dir("checkpoint");
        {
            let (mut catalog, durability, _) = open(&dir);
            populate(&mut catalog);
            let covers = durability.checkpoint(&mut catalog).unwrap();
            assert_eq!(covers, 6);
            // One more row after the checkpoint.
            let doc = xqdb_xmlparse::parse_document("<order/>").unwrap();
            catalog
                .insert("orders", vec![SqlValue::Integer(9), SqlValue::Xml(doc.root())])
                .unwrap();
            durability.flush().unwrap();
        }
        let (catalog, _d, report) = open(&dir);
        assert_eq!(report.snapshot_covers, 0, "paged checkpoints write no snapshot");
        assert_eq!(report.manifest_covers, 6);
        assert_eq!(report.manifest_tables, 1);
        assert_eq!(report.manifest_rows, 4, "checkpointed rows come from pages");
        assert_eq!(report.checkpoint_markers, 1);
        assert_eq!(report.wal_records_replayed, 1, "suffix-only replay");
        assert_eq!(report.rows, 5);
        assert_eq!(catalog.index("li_price").unwrap().len(), 4);
    }

    #[test]
    fn empty_checkpoint_is_a_noop() {
        let dir = temp_dir("empty_ckpt");
        let (mut catalog, durability, _) = open(&dir);
        assert_eq!(durability.checkpoint(&mut catalog).unwrap(), 0);
        let (_, _, report) = open(&dir);
        assert_eq!(report.snapshot_covers, 0);
        assert_eq!(report.manifest_covers, 0);
        assert_eq!(report.last_seq, 0);
    }

    #[test]
    fn repeated_checkpoints_keep_suffix_replay_exact() {
        let dir = temp_dir("re_ckpt");
        {
            let (mut catalog, durability, _) = open(&dir);
            populate(&mut catalog);
            durability.checkpoint(&mut catalog).unwrap();
            for i in 10..13 {
                let doc = xqdb_xmlparse::parse_document(&format!(
                    r#"<order><lineitem price="{i}"/></order>"#
                ))
                .unwrap();
                catalog
                    .insert("orders", vec![SqlValue::Integer(i), SqlValue::Xml(doc.root())])
                    .unwrap();
            }
            durability.checkpoint(&mut catalog).unwrap();
            durability.flush().unwrap();
        }
        let (catalog, _d, report) = open(&dir);
        assert_eq!(report.manifest_rows, 7);
        assert_eq!(report.wal_records_replayed, 0, "second checkpoint covers everything");
        assert_eq!(report.checkpoint_markers, 1, "only the newest marker survives pruning");
        assert_eq!(report.rows, 7);
        assert_eq!(catalog.index("li_price").unwrap().len(), 7);
        let t = catalog.db.table("orders").unwrap();
        let (_rid, row) = t.scan().nth(5).unwrap().unwrap();
        assert!(matches!(row[0], SqlValue::Integer(11)));
    }

    #[test]
    fn wal_values_roundtrip_through_conversion() {
        let doc = xqdb_xmlparse::parse_document(r#"<a b="1">t&amp;x</a>"#).unwrap();
        let vals = vec![
            SqlValue::Null,
            SqlValue::Integer(-7),
            SqlValue::Double(0.1 + 0.2), // bit-exact through to_bits
            SqlValue::Varchar("abc  ".into()),
            SqlValue::Date(xqdb_xdm::Date::parse("2006-09-12").unwrap()),
            SqlValue::Timestamp(xqdb_xdm::DateTime::parse("2006-09-12T10:00:00").unwrap()),
            SqlValue::Xml(doc.root()),
        ];
        for v in &vals {
            let back = from_wal_value(&to_wal_value(v)).unwrap();
            match (v, &back) {
                (SqlValue::Double(a), SqlValue::Double(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits())
                }
                (SqlValue::Xml(a), SqlValue::Xml(b)) => assert_eq!(
                    xqdb_xmlparse::serialize_node(a),
                    xqdb_xmlparse::serialize_node(b)
                ),
                (a, b) => assert_eq!(format!("{a:?}"), format!("{b:?}")),
            }
        }
    }
}
