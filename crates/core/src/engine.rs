//! The XQuery engine: plan → pre-filter via indexes → evaluate.
//!
//! Architecture per Section 2 of the paper: indexes *pre-filter* the
//! collection (Definition 1's `I(P, D)`), and the full query then runs over
//! the surviving documents, so residual predicates, ordering, construction
//! and node identity all behave exactly as in the unoptimized evaluation.
//!
//! # Parallel execution
//!
//! [`ParallelExecutor`] shards the surviving document list of *one*
//! collection across the `xqdb-runtime` worker pool when static analysis
//! proves that per-shard evaluation concatenated in shard order is
//! byte-identical to serial evaluation (see [`partition_plan`] for the
//! exact conditions). Queries outside that fragment — and any run with one
//! thread — take the serial path, which is unchanged from the pre-parallel
//! engine. Definition 1 is the correctness oracle either way: the sharded
//! scan evaluates exactly the documents the serial scan would, in the same
//! document order.

use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use xqdb_obs::{Counter, Gauge, Histogram, Obs, Trace};
use xqdb_runtime::{chunk_ranges, WorkerPool};
use xqdb_xdm::{Budget, ErrorCode, ExpandedName, Item, Limits, Sequence, XdmError};
use xqdb_xmlindex::ProbeStats;
use xqdb_xqeval::{CollectionProvider, DynamicContext};
use xqdb_xquery::ast::{ConstructorContent, Expr, FlworClause, Step};
use xqdb_xquery::Query;
use xqdb_storage::SqlValue;

use crate::catalog::Catalog;
use crate::eligibility::{
    analyze_query_root, compile, diagnose, diagnose_misestimate, restrict_to_source, AnalysisEnv,
    Cond, IndexCond, Note, Rejection,
};
use crate::prefilter::{extract_prefilters, SourcePrefilter};
use crate::twig::{extract_twigs, PreparedTwig, SourceTwig};

/// Per-collection access decision.
#[derive(Debug, Clone)]
pub struct SourceAccess {
    /// Collection key (`TABLE.COLUMN`).
    pub source: String,
    /// The compiled index condition, or `None` for a collection scan.
    pub access: Option<IndexCond>,
}

/// A planned query.
#[derive(Debug)]
pub struct QueryPlan {
    /// The parsed query.
    pub query: Query,
    /// The extracted filtering condition (pre-restriction).
    pub cond: Cond,
    /// Access path per referenced collection.
    pub accesses: Vec<SourceAccess>,
    /// Analyzer diagnostics (non-filtering predicates etc.).
    pub notes: Vec<Note>,
    /// Candidates that found no index, with reasons.
    pub rejections: Vec<Rejection>,
    /// Structural pre-filters per source: conservative required-path groups
    /// checked against stored document signatures before evaluation.
    pub prefilter: HashMap<String, SourcePrefilter>,
    /// Twig patterns per source: branching/descendant path shapes served
    /// by the holistic twig join over structural labels. Resolution
    /// against the table's synopsis happens at execution time, so cached
    /// plans stay valid as collections grow.
    pub twig: HashMap<String, SourceTwig>,
    /// Cost-model metadata: what the planner estimated and why it chose
    /// the accesses it did. Empty/default on rule-based plans.
    pub cost: PlanCost,
}

/// Cost-model metadata attached to a plan.
#[derive(Debug, Clone, Default)]
pub struct PlanCost {
    /// True when the synopsis-backed cost model scored at least one
    /// candidate while planning (statistics were complete and consulted).
    pub costed: bool,
    /// (candidate, eligible index) pairs scored.
    pub candidates: u64,
    /// Estimated rows fetched by index probes, summed over sources that
    /// kept an access. `None` when nothing was estimated.
    pub est_rows: Option<u64>,
    /// Human-readable costing decisions (index choices, declined probes),
    /// rendered by EXPLAIN.
    pub notes: Vec<String>,
}

/// Execution statistics, reported by benches and EXPLAIN.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Index entries scanned across all probes.
    pub index_entries_scanned: usize,
    /// Individual B+Tree range scans executed (a compound condition probes
    /// once per `PROBE` leaf).
    pub index_probes: usize,
    /// B+Tree nodes touched by probes: root-to-leaf descents plus
    /// leaf-chain advances.
    pub btree_nodes_touched: usize,
    /// Documents fetched and evaluated, per source.
    pub docs_evaluated: HashMap<String, usize>,
    /// Collection sizes, per source.
    pub docs_total: HashMap<String, usize>,
    /// Sources whose index probe failed at execution time and fell back to
    /// a full collection scan (correct by Definition 1, just slower).
    pub degraded_sources: Vec<String>,
    /// Number of index probe faults observed during execution.
    pub index_faults: usize,
    /// Evaluator steps charged against the budget.
    pub steps_used: u64,
    /// Worker threads used for evaluation (1 = serial; 0 only from
    /// `ExecStats::default()` on paths that never reach the executor).
    pub parallel_workers: usize,
    /// Shards the surviving document list was split into (1 = serial).
    pub parallel_shards: usize,
    /// Documents skipped by the structural pre-filter (signature lacked a
    /// required path in every requirement group).
    pub prefilter_docs_skipped: usize,
    /// Holistic twig joins executed (one per source the twig phase
    /// actually filtered; declined sources — incomplete labels — don't
    /// count).
    pub twig_joins: u64,
    /// Candidate documents admitted by the twig joins' per-node row-set
    /// intersections and handed to the full structural match.
    pub twig_candidates: usize,
    /// Documents skipped by the twig phase (not a candidate, or the
    /// structural match rejected them).
    pub twig_docs_skipped: usize,
    /// 1 if this run's plan came from the plan cache (set by the front end
    /// that consulted the cache; 0 otherwise).
    pub plan_cache_hits: u64,
    /// 1 if this run parsed and planned from scratch and the front end
    /// consulted a cache first (0 on hits and on cache-less paths).
    pub plan_cache_misses: u64,
    /// Page fetches this run answered from a resident buffer-pool frame,
    /// summed over the row store's page file and every index's node pool.
    /// Physical traffic: distinct from `btree_nodes_touched`, which counts
    /// *logical* node visits whether or not the node's page was resident.
    pub buffer_pool_hits: u64,
    /// Page fetches this run that had to read the backing store.
    pub buffer_pool_misses: u64,
    /// Pages this run evicted from a buffer pool to make room.
    pub pages_evicted: u64,
    /// Rows removed by this statement (DELETE).
    pub rows_deleted: u64,
    /// Documents replaced in place by this statement (UPDATE).
    pub docs_replaced: u64,
    /// Tombstoned heap records physically reclaimed (checkpoint only;
    /// always 0 for a plain statement).
    pub tombstones_reclaimed: u64,
    /// 1 if this run's plan was costed: the synopsis-backed cost model
    /// scored at least one candidate at plan time.
    pub plans_costed: u64,
    /// (candidate, eligible index) pairs the cost model scored when this
    /// run's plan was built (0 on cache hits of rule-based plans and when
    /// costing is off).
    pub index_candidates_costed: u64,
    /// Docid-set intersections performed while AND-combining index probes.
    pub multi_index_intersections: u64,
    /// The plan's estimated probe output in rows (0 when not costed).
    pub cost_est_rows: u64,
    /// Rows actually produced by the probe phase, before the twig and
    /// prefilter passes — the number the estimate predicts.
    pub cost_actual_rows: u64,
}

impl ExecStats {
    /// Stats for a run entering the executor: serial (one worker, one
    /// shard) until the sharded path proves otherwise, all counters zero.
    pub fn new() -> ExecStats {
        ExecStats { parallel_workers: 1, parallel_shards: 1, ..ExecStats::default() }
    }

    /// Documents evaluated, summed over all sources.
    pub fn docs_evaluated_total(&self) -> usize {
        self.docs_evaluated.values().sum()
    }
}

/// Result of executing a planned query.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The query result sequence.
    pub sequence: Sequence,
    /// Statistics.
    pub stats: ExecStats,
    /// The run's span trace (the free disabled trace unless tracing was
    /// requested via [`ExecOptions`] or `EXPLAIN ANALYZE`).
    pub trace: Trace,
}

/// Plan an XQuery against the catalog. `env` carries externally-bound
/// variables (the SQL/XML `PASSING` clause).
pub fn plan_query(catalog: &Catalog, query: Query, env: &AnalysisEnv) -> QueryPlan {
    plan_query_traced(catalog, query, env, &Trace::disabled())
}

/// [`plan_query`] recording a `plan` span with an `eligibility check`
/// child when the trace is live. Costing follows the `XQDB_COST`
/// environment switch.
pub fn plan_query_traced(
    catalog: &Catalog,
    query: Query,
    env: &AnalysisEnv,
    trace: &Trace,
) -> QueryPlan {
    plan_query_costed(catalog, query, env, trace, cost_env_enabled())
}

/// [`plan_query_traced`] with the cost model explicitly enabled or
/// disabled. With `use_cost` false (or when a source's synopsis statistics
/// are incomplete) index choice is the original rule-based
/// first-eligible-wins.
pub fn plan_query_costed(
    catalog: &Catalog,
    query: Query,
    env: &AnalysisEnv,
    trace: &Trace,
    use_cost: bool,
) -> QueryPlan {
    let mut span = trace.span("plan");
    let analysis = analyze_query_root(&query.body, env);
    let mut sources = BTreeSet::new();
    collect_sources(&query.body, &mut sources);
    let mut accesses = Vec::new();
    let mut rejections = Vec::new();
    let mut cost = PlanCost::default();
    {
        let mut elig = span.child("eligibility check");
        for source in sources {
            let restricted = restrict_to_source(&analysis.cond, &source);
            let indexes = catalog.indexes_for_source(&source);
            let model = if use_cost { catalog.cost_model_for(&source) } else { None };
            let compiled = compile(&restricted, &indexes, model.as_ref());
            rejections.extend(compiled.rejections);
            if compiled.candidates_costed > 0 {
                cost.costed = true;
                cost.candidates += compiled.candidates_costed;
            }
            if let Some(est) = compiled.est_rows {
                *cost.est_rows.get_or_insert(0) += est;
            }
            cost.notes.extend(compiled.cost_notes);
            accesses.push(SourceAccess { source, access: compiled.access });
        }
        elig.add_count(accesses.len() as u64);
        elig.tag_with("rejections", || rejections.len().to_string());
    }
    let prefilter = {
        let mut extract = span.child("prefilter extract");
        let prefilter = extract_prefilters(&query.body, env, true);
        extract.add_count(prefilter.len() as u64);
        prefilter
    };
    let twig = {
        let mut extract = span.child("twig compile");
        let twig = extract_twigs(&query.body, env, true);
        extract.add_count(twig.len() as u64);
        twig
    };
    span.add_count(accesses.len() as u64);
    QueryPlan {
        query,
        cond: analysis.cond,
        accesses,
        notes: analysis.notes,
        rejections,
        prefilter,
        twig,
        cost,
    }
}

/// Parse, plan and execute an XQuery string.
pub fn run_xquery(catalog: &Catalog, text: &str) -> Result<ExecOutcome, XdmError> {
    run_xquery_with_limits(catalog, text, Limits::unlimited())
}

/// Parse, plan and execute an XQuery string under resource limits.
pub fn run_xquery_with_limits(
    catalog: &Catalog,
    text: &str,
    limits: Limits,
) -> Result<ExecOutcome, XdmError> {
    run_xquery_with_options(catalog, text, &ExecOptions { limits, ..ExecOptions::default() })
}

/// Execution options: resource limits, the parallelism degree, and the
/// observability handle.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Resource limits for the run.
    pub limits: Limits,
    /// Worker threads. `0` and `1` both select the serial legacy path.
    pub threads: usize,
    /// Observability: metrics registry + tracing configuration. The default
    /// is the free disabled handle.
    pub obs: Obs,
    /// Apply the structural pre-filter (on by default). The
    /// `XQDB_PREFILTER=off` environment variable disables it regardless of
    /// this flag; the flag exists so benches and tests can compare both
    /// paths in-process without racing on the environment.
    pub prefilter: bool,
    /// Apply the holistic twig join over structural labels (on by
    /// default). `XQDB_TWIG=off` disables it regardless of this flag,
    /// same contract as `prefilter`.
    pub twig: bool,
    /// Use the synopsis-backed cost model at plan time (on by default).
    /// `XQDB_COST=off` disables it regardless of this flag. Unlike
    /// `prefilter`/`twig` this is a *planning* switch: with costing off
    /// the planner is the original rule-based first-eligible-index one.
    pub cost: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            limits: Limits::default(),
            threads: 0,
            obs: Obs::default(),
            prefilter: true,
            twig: true,
            cost: true,
        }
    }
}

/// True unless `XQDB_PREFILTER` is set to `off`/`0`/`false` (case-insensitive).
pub fn prefilter_env_enabled() -> bool {
    match std::env::var("XQDB_PREFILTER") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    }
}

/// True unless `XQDB_TWIG` is set to `off`/`0`/`false` (case-insensitive).
/// The same switch gates label *construction* at ingest, so flipping it
/// mid-process also stops twig execution on tables whose labels went
/// incomplete.
pub fn twig_env_enabled() -> bool {
    xqdb_twig::enabled_in_env()
}

/// True unless `XQDB_COST` is set to `off`/`0`/`false` (case-insensitive).
/// Gates the cost model at plan time; results are byte-identical either
/// way (Definition 1 — probes are conservative pre-filters), only the
/// access-path choice changes.
pub fn cost_env_enabled() -> bool {
    match std::env::var("XQDB_COST") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"),
        Err(_) => true,
    }
}

/// Parse, plan and execute an XQuery string under [`ExecOptions`].
pub fn run_xquery_with_options(
    catalog: &Catalog,
    text: &str,
    opts: &ExecOptions,
) -> Result<ExecOutcome, XdmError> {
    let trace = opts.obs.trace();
    run_traced(catalog, text, opts, &trace).map(|(_, outcome)| outcome)
}

/// Parse, plan and execute with per-query metric recording, against the
/// given trace. Returns the plan too, for `EXPLAIN ANALYZE`.
///
/// Plans are cached on the catalog keyed by the exact query text: a hit
/// does zero parse/plan work (no `parse`/`plan` spans are recorded) and is
/// surfaced in the stats and the `PlanCacheHits` counter.
fn run_traced(
    catalog: &Catalog,
    text: &str,
    opts: &ExecOptions,
    trace: &Trace,
) -> Result<(Arc<QueryPlan>, ExecOutcome), XdmError> {
    let obs = &opts.obs;
    let started = obs.metrics_enabled().then(Instant::now);
    obs.incr(Counter::QueriesExecuted);
    let result: Result<(Arc<QueryPlan>, ExecOutcome), XdmError> = (|| {
        // The cost flag is part of the cache key: a costed and a
        // rule-based plan for the same text are different plans, and a
        // cost-off run must never leave a plan a cost-on run reuses.
        let use_cost = opts.cost && cost_env_enabled();
        let key: Cow<str> =
            if use_cost { Cow::Borrowed(text) } else { Cow::Owned(format!("#nocost\n{text}")) };
        let cached = catalog.cached_plan(&key);
        let cache_hit = cached.is_some();
        obs.incr(if cache_hit { Counter::PlanCacheHits } else { Counter::PlanCacheMisses });
        let plan = match cached {
            Some(plan) => plan,
            None => {
                let query = {
                    let _parse = trace.span("parse");
                    xqdb_xquery::parse_query(text).map_err(|e| {
                        XdmError::new(xqdb_xdm::ErrorCode::XPST0003, e.to_string())
                    })?
                };
                let plan = Arc::new(plan_query_costed(
                    catalog,
                    query,
                    &AnalysisEnv::new(),
                    trace,
                    use_cost,
                ));
                if obs.metrics_enabled() {
                    let diagnoses = diagnose(&plan.rejections, &plan.notes);
                    obs.add(Counter::DoctorDiagnoses, diagnoses.len() as u64);
                }
                catalog.cache_plan(&key, Arc::clone(&plan));
                plan
            }
        };
        let budget = Arc::new(Budget::new(opts.limits.clone()));
        let ctx = DynamicContext::new().with_budget(budget);
        let mut outcome = ParallelExecutor::new(opts.threads)
            .with_prefilter(opts.prefilter && prefilter_env_enabled())
            .with_twig(opts.twig && twig_env_enabled())
            .execute_observed(catalog, &plan, &ctx, obs, trace)?;
        outcome.stats.plan_cache_hits = u64::from(cache_hit);
        outcome.stats.plan_cache_misses = u64::from(!cache_hit);
        Ok((plan, outcome))
    })();
    if let Some(t0) = started {
        obs.observe_ns(Histogram::QueryNanos, elapsed_ns(t0));
    }
    match &result {
        Err(e) if e.code == ErrorCode::ResourceExhausted => {
            obs.incr(Counter::BudgetExhaustions)
        }
        Err(e) if e.code == ErrorCode::Cancelled => obs.incr(Counter::QueriesCancelled),
        _ => {}
    }
    result
}

/// `EXPLAIN ANALYZE` for the standalone XQuery path: run the query with
/// tracing forced on and render the plan annotated with actual per-stage
/// timings, execution counters (exactly the returned [`ExecStats`]) and the
/// query doctor's diagnoses. Returns the report and the outcome it
/// describes.
pub fn explain_analyze_xquery(
    catalog: &Catalog,
    text: &str,
    opts: &ExecOptions,
) -> Result<(String, ExecOutcome), XdmError> {
    let trace = Trace::recording();
    let (plan, outcome) = run_traced(catalog, text, opts, &trace)?;
    let report = explain_analyze_report(&plan, &outcome, opts.threads);
    Ok((report, outcome))
}

fn elapsed_ns(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Execute a planned query. The context's budget governs the whole run:
/// probes charge index entries, the evaluator charges steps, and the final
/// result is checked against the cardinality cap.
///
/// If an index probe fails with a `StorageFault` (injected or real), the
/// affected source **degrades to a full collection scan** — by Definition 1
/// the index is only a pre-filter, so scanning everything is always
/// correct. The degradation is recorded in [`ExecStats`]. Budget errors
/// (`ResourceExhausted`, `Cancelled`) are not degradable and propagate.
pub fn execute_plan(
    catalog: &Catalog,
    plan: &QueryPlan,
    ctx: &DynamicContext,
) -> Result<ExecOutcome, XdmError> {
    ParallelExecutor::new(1).execute(catalog, plan, ctx)
}

/// Index probes for every access in the plan, with graceful degradation on
/// `StorageFault`. Runs serially *before* any parallel evaluation, so fault
/// injection on probes fires at the same points whatever the thread count.
fn probe_phase(
    catalog: &Catalog,
    plan: &QueryPlan,
    ctx: &DynamicContext,
    stats: &mut ExecStats,
    obs: &Obs,
    trace: &Trace,
) -> Result<HashMap<String, BTreeSet<u64>>, XdmError> {
    let mut filters: HashMap<String, BTreeSet<u64>> = HashMap::new();
    for access in &plan.accesses {
        let total = catalog
            .db
            .resolve_xml_column(&access.source)
            .map(|(t, _)| t.len())
            .unwrap_or(0);
        stats.docs_total.insert(access.source.clone(), total);
        match &access.access {
            Some(cond) => {
                let mut span = trace.span("index probe");
                span.tag_with("source", || access.source.clone());
                let indexes = catalog.indexes_for_source(&access.source);
                let mut pstats = ProbeStats::default();
                let t0 = obs.metrics_enabled().then(Instant::now);
                let probed = cond.execute(&indexes, &mut pstats, &ctx.budget);
                if let Some(t0) = t0 {
                    obs.observe_ns(Histogram::ProbeNanos, elapsed_ns(t0));
                }
                stats.index_entries_scanned += pstats.entries_scanned;
                stats.index_probes += pstats.probes;
                stats.btree_nodes_touched += pstats.nodes_touched;
                stats.multi_index_intersections += pstats.intersections as u64;
                span.add_count(pstats.entries_scanned as u64);
                match probed {
                    Ok(rows) => {
                        span.tag_str("outcome", "index hit");
                        span.tag_with("survivors", || rows.len().to_string());
                        stats.cost_actual_rows += rows.len() as u64;
                        stats.docs_evaluated.insert(access.source.clone(), rows.len());
                        filters.insert(access.source.clone(), rows);
                    }
                    Err(e) if e.code == ErrorCode::StorageFault => {
                        // Graceful degradation: no filter for this source.
                        span.tag_str("outcome", "degraded to scan");
                        stats.index_faults += 1;
                        stats.degraded_sources.push(access.source.clone());
                        stats.docs_evaluated.insert(access.source.clone(), total);
                    }
                    Err(e) => return Err(e),
                }
            }
            None => {
                stats.docs_evaluated.insert(access.source.clone(), total);
            }
        }
    }
    Ok(filters)
}

/// Executes plans over the worker pool, sharding the partitionable
/// fragment of the language (see [`partition_plan`]) and falling back to
/// the serial path for everything else.
///
/// Output is byte-identical to serial execution by construction; budget
/// counters, the cancellation token and the deadline are shared atomics in
/// [`Budget`], so a single limit governs all workers globally.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    pool: WorkerPool,
    prefilter: bool,
    twig: bool,
}

impl ParallelExecutor {
    /// Executor with the given parallelism degree (0 and 1 mean serial).
    /// The structural pre-filter and the twig join default to their
    /// environment settings (`XQDB_PREFILTER`, `XQDB_TWIG`).
    pub fn new(threads: usize) -> Self {
        ParallelExecutor {
            pool: WorkerPool::new(threads),
            prefilter: prefilter_env_enabled(),
            twig: twig_env_enabled(),
        }
    }

    /// Override whether the structural pre-filter is applied.
    pub fn with_prefilter(mut self, prefilter: bool) -> Self {
        self.prefilter = prefilter;
        self
    }

    /// Override whether the holistic twig join is applied.
    pub fn with_twig(mut self, twig: bool) -> Self {
        self.twig = twig;
        self
    }

    /// The effective degree.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Execute a planned query; see [`execute_plan`] for the semantics.
    pub fn execute(
        &self,
        catalog: &Catalog,
        plan: &QueryPlan,
        ctx: &DynamicContext,
    ) -> Result<ExecOutcome, XdmError> {
        self.execute_observed(catalog, plan, ctx, &Obs::disabled(), &Trace::disabled())
    }

    /// [`ParallelExecutor::execute`] with observability: probe and scan
    /// phases record spans into `trace`, and the finished run's stats are
    /// recorded into `obs`'s metrics registry in one place
    /// ([`record_exec_metrics`]) so a metrics delta reconciles exactly with
    /// the returned [`ExecStats`].
    pub fn execute_observed(
        &self,
        catalog: &Catalog,
        plan: &QueryPlan,
        ctx: &DynamicContext,
        obs: &Obs,
        trace: &Trace,
    ) -> Result<ExecOutcome, XdmError> {
        let mut stats = ExecStats::new();
        if plan.cost.costed {
            stats.plans_costed = 1;
            stats.index_candidates_costed = plan.cost.candidates;
            stats.cost_est_rows = plan.cost.est_rows.unwrap_or(0);
        }
        let pool_baseline = catalog.pool_stats();
        let mut filters = probe_phase(catalog, plan, ctx, &mut stats, obs, trace)?;
        if self.twig {
            // Like the pre-filter below: strictly after the serial probe
            // phase, purely in-memory (label streams never touch the
            // pager), so it adds no fault-injection points and the chaos
            // matrix stays byte-identical with the join on or off.
            twig_phase(catalog, plan, &mut filters, &mut stats, &self.pool, trace);
        }
        if self.prefilter {
            // Runs strictly after the (serial) probe phase so probe-side
            // fault injection fires at the same points with or without the
            // pre-filter, and applies equally to the serial and sharded
            // scans below (both consume `filters`).
            prefilter_phase(catalog, plan, &mut filters, &mut stats, trace);
        }
        if self.pool.threads() > 1 {
            if let Some(part) = partition_plan(&plan.query) {
                if let Some(rows) =
                    monotone_surviving_rows(catalog, &part.source, filters.get(&part.source))
                {
                    if rows.len() > 1 {
                        let scan =
                            ShardedScan { filters: &filters, rows: &rows, part: &part };
                        let mut outcome =
                            self.execute_sharded(catalog, plan, ctx, stats, &scan, trace)?;
                        apply_pool_delta(&mut outcome.stats, catalog, &pool_baseline);
                        record_exec_metrics(obs, &outcome.stats);
                        return Ok(outcome);
                    }
                }
            }
        }
        let mut span = trace.span("scan");
        span.tag_str("mode", "serial");
        let provider = FilteredProvider { catalog, filters: &filters, shard: None };
        let sequence = xqdb_xqeval::eval_query(&plan.query, &provider, ctx)?;
        ctx.budget.check_result_items(sequence.len())?;
        span.add_count(sequence.len() as u64);
        drop(span);
        stats.steps_used = ctx.budget.steps_used();
        apply_pool_delta(&mut stats, catalog, &pool_baseline);
        record_exec_metrics(obs, &stats);
        Ok(ExecOutcome { sequence, stats, trace: trace.clone() })
    }

    /// Sharded evaluation: split the surviving rows of the partition source
    /// into contiguous chunks, evaluate the whole query per chunk on the
    /// pool (each worker sees only its shard of the partition source, and
    /// the full filtered view of every other source), and concatenate the
    /// per-chunk sequences in chunk order.
    fn execute_sharded(
        &self,
        catalog: &Catalog,
        plan: &QueryPlan,
        ctx: &DynamicContext,
        mut stats: ExecStats,
        scan: &ShardedScan<'_>,
        trace: &Trace,
    ) -> Result<ExecOutcome, XdmError> {
        let ShardedScan { filters, rows, part } = *scan;
        let ranges = chunk_ranges(rows.len(), self.pool.default_chunks(rows.len()));
        let mut span = trace.span("scan");
        span.tag_str("mode", "sharded");
        span.tag_with("source", || part.source.clone());
        let parent = span.id();
        let task = |i: usize| {
            let shard = Shard { source: &part.source, rows: &rows[ranges[i].clone()] };
            let provider = FilteredProvider { catalog, filters, shard: Some(shard) };
            xqdb_xqeval::eval_query(&plan.query, &provider, ctx)
        };
        // The disabled path stays on plain `try_run`: no observation
        // plumbing at all when nothing records.
        let chunks = if trace.enabled() {
            self.pool.try_run_observed(ranges.len(), task, |t| {
                trace.record_finished(
                    parent,
                    "worker task",
                    t.started,
                    t.nanos,
                    0,
                    vec![("worker", t.worker.to_string()), ("task", t.task.to_string())],
                );
            })?
        } else {
            self.pool.try_run(ranges.len(), task)?
        };
        let mut sequence: Sequence = Vec::new();
        for chunk in chunks {
            sequence.extend(chunk);
        }
        ctx.budget.check_result_items(sequence.len())?;
        span.add_count(sequence.len() as u64);
        drop(span);
        stats.steps_used = ctx.budget.steps_used();
        stats.parallel_workers = self.pool.threads();
        stats.parallel_shards = ranges.len();
        Ok(ExecOutcome { sequence, stats, trace: trace.clone() })
    }
}

/// Holistic twig-join pass: for each source with compiled twig patterns,
/// drop candidate rows no pattern structurally matches. Labels live
/// entirely in RAM (no heap or page fetches), matching is conservative
/// by construction (see [`crate::twig`]), and the pass composes with the
/// probe filters exactly like [`prefilter_phase`] — it intersects
/// whatever row set survives so far. Sources whose label store cannot
/// vouch for every row (recovery adopted rows without re-parsing, or
/// `XQDB_TWIG=off` at ingest) are declined untouched.
///
/// With more than one worker the row set is sharded over the pool in
/// contiguous chunks and the per-chunk survivor lists are concatenated
/// in chunk order, so the surviving set — and therefore everything
/// downstream — is independent of the thread count.
fn twig_phase(
    catalog: &Catalog,
    plan: &QueryPlan,
    filters: &mut HashMap<String, BTreeSet<u64>>,
    stats: &mut ExecStats,
    pool: &WorkerPool,
    trace: &Trace,
) {
    for (source, twig) in &plan.twig {
        let Ok((table, _col)) = catalog.db.resolve_xml_column(source) else { continue };
        let mut span = trace.span("twig join");
        span.tag_with("source", || source.clone());
        span.tag_with("patterns", || twig.patterns.len().to_string());
        let Some(prepared) = PreparedTwig::prepare(twig, table) else {
            span.tag_str("outcome", "declined: labels incomplete");
            continue;
        };
        let base: Vec<u64> = match filters.get(source) {
            Some(rows) => rows.iter().copied().collect(),
            None => (0..table.len() as u64).collect(),
        };
        let check = |rows: &[u64]| {
            let mut kept = Vec::new();
            let mut candidates = 0usize;
            for &row in rows {
                let candidate = prepared.is_candidate(row);
                candidates += usize::from(candidate);
                if candidate && prepared.accepts(row) {
                    kept.push(row);
                }
            }
            (kept, candidates)
        };
        let (survivors, candidates) = if pool.threads() > 1 && base.len() > 1 {
            let ranges = chunk_ranges(base.len(), pool.default_chunks(base.len()));
            let chunks = pool.run(ranges.len(), |i| check(&base[ranges[i].clone()]));
            let mut kept = Vec::new();
            let mut candidates = 0usize;
            for (chunk, n) in chunks {
                kept.extend(chunk);
                candidates += n;
            }
            (kept, candidates)
        } else {
            check(&base)
        };
        let skipped = base.len() - survivors.len();
        span.add_count(skipped as u64);
        span.tag_with("candidates", || candidates.to_string());
        span.tag_with("survivors", || survivors.len().to_string());
        stats.twig_joins += 1;
        stats.twig_candidates += candidates;
        stats.twig_docs_skipped += skipped;
        stats.docs_evaluated.insert(source.clone(), survivors.len());
        filters.insert(source.clone(), survivors.into_iter().collect());
    }
}

/// Structural pre-filter pass: for each source with required-path groups,
/// drop candidate rows whose stored signature satisfies no group. The
/// check is conservative by construction (see [`crate::prefilter`]), so
/// survivors are a superset of the rows that can contribute — Definition
/// 1's contract, same as the index probes — and it composes with them:
/// it intersects whatever row filter the probe phase produced, including
/// none at all for fault-degraded sources.
fn prefilter_phase(
    catalog: &Catalog,
    plan: &QueryPlan,
    filters: &mut HashMap<String, BTreeSet<u64>>,
    stats: &mut ExecStats,
    trace: &Trace,
) {
    for (source, pf) in &plan.prefilter {
        let Ok((table, _col)) = catalog.db.resolve_xml_column(source) else { continue };
        let mut span = trace.span("prefilter");
        span.tag_with("source", || source.clone());
        span.tag_with("groups", || pf.groups.len().to_string());
        let mut skipped = 0usize;
        let survivors: BTreeSet<u64> = match filters.get(source) {
            Some(rows) => rows
                .iter()
                .copied()
                .filter(|row| {
                    let keep = table
                        .signature(*row as usize)
                        .is_none_or(|sig| pf.accepts(sig));
                    skipped += usize::from(!keep);
                    keep
                })
                .collect(),
            None => (0..table.len() as u64)
                .filter(|row| {
                    let keep = table
                        .signature(*row as usize)
                        .is_none_or(|sig| pf.accepts(sig));
                    skipped += usize::from(!keep);
                    keep
                })
                .collect(),
        };
        span.add_count(skipped as u64);
        span.tag_with("survivors", || survivors.len().to_string());
        stats.prefilter_docs_skipped += skipped;
        stats.docs_evaluated.insert(source.clone(), survivors.len());
        filters.insert(source.clone(), survivors);
    }
}

/// Charge this run's physical page traffic to its stats: the delta of the
/// catalog's aggregated pool counters ([`Catalog::pool_stats`]) since the
/// baseline taken on entry to the executor. Runs after evaluation so the
/// bracket covers probes, pre-filter signature reads, and document scans.
fn apply_pool_delta(
    stats: &mut ExecStats,
    catalog: &Catalog,
    baseline: &xqdb_pager::PoolStats,
) {
    let delta = catalog.pool_stats().delta_since(baseline);
    stats.buffer_pool_hits = delta.hits;
    stats.buffer_pool_misses = delta.misses;
    stats.pages_evicted = delta.evictions;
}

/// Record a finished run's [`ExecStats`] into the metrics registry — the
/// single coupling point between counters and stats, which is what makes a
/// metrics snapshot delta reconcile *exactly* with the stats the query
/// returned (asserted by the observability consistency tests).
pub(crate) fn record_exec_metrics(obs: &Obs, stats: &ExecStats) {
    if !obs.metrics_enabled() {
        return;
    }
    obs.add(Counter::IndexEntriesScanned, stats.index_entries_scanned as u64);
    obs.add(Counter::IndexProbes, stats.index_probes as u64);
    obs.add(Counter::IndexProbeFaults, stats.index_faults as u64);
    obs.add(Counter::DegradationsToScan, stats.degraded_sources.len() as u64);
    obs.add(Counter::DocsEvaluated, stats.docs_evaluated_total() as u64);
    obs.add(Counter::PrefilterDocsSkipped, stats.prefilter_docs_skipped as u64);
    obs.add(Counter::TwigJoinsExecuted, stats.twig_joins);
    obs.add(Counter::TwigCandidates, stats.twig_candidates as u64);
    obs.add(Counter::TwigDocsSkipped, stats.twig_docs_skipped as u64);
    obs.add(Counter::EvalSteps, stats.steps_used);
    obs.add(Counter::BtreeNodeTouches, stats.btree_nodes_touched as u64);
    obs.add(Counter::BufferPoolHits, stats.buffer_pool_hits);
    obs.add(Counter::BufferPoolMisses, stats.buffer_pool_misses);
    obs.add(Counter::PagesEvicted, stats.pages_evicted);
    obs.add(Counter::PlansCosted, stats.plans_costed);
    obs.add(Counter::IndexCandidatesCosted, stats.index_candidates_costed);
    obs.add(Counter::MultiIndexIntersections, stats.multi_index_intersections);
    obs.set_gauge(Gauge::ParallelWorkers, stats.parallel_workers as u64);
    obs.set_gauge(Gauge::ParallelShards, stats.parallel_shards as u64);
    if stats.parallel_workers > 1 {
        obs.incr(Counter::ParallelQueries);
        obs.add(Counter::ParallelShardsExecuted, stats.parallel_shards as u64);
    }
}

/// Everything a sharded scan needs: the probe filters, the surviving rows
/// of the partition source (monotone document ids), and the partition.
#[derive(Clone, Copy)]
struct ShardedScan<'a> {
    filters: &'a HashMap<String, BTreeSet<u64>>,
    rows: &'a [u64],
    part: &'a Partition,
}

/// The partitionable fragment: which source's surviving documents may be
/// sharded across workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The `TABLE.COLUMN` source whose scan is sharded.
    pub source: String,
}

/// Static partitionability analysis.
///
/// Returns the source to shard when concatenating per-shard results in
/// shard order is provably byte-identical to serial evaluation:
///
/// - The query body is a path `xmlcolumn(S)/axis-steps...`, or a FLWOR
///   whose first clause is `for $v in xmlcolumn(S)` / `for $v in
///   xmlcolumn(S)/axis-steps...` without a positional (`at`) variable.
/// - Every step of that path is an **axis** step, so each intermediate
///   result is nodes-only and document-order deduplication never has to
///   compare nodes across shard boundaries (shards own disjoint document
///   id ranges — enforced at runtime by [`monotone_surviving_rows`]).
///   Filter steps are excluded: they can construct nodes or produce
///   atomics, whose global ordering (or type error) is not shard-local.
/// - `S` is referenced exactly once in the whole query, so no shard would
///   see a partial view of a second scan of `S`.
/// - No top-level `order by` (a global sort), and no `position()`/`last()`
///   anywhere (their focus is the global sequence, not the shard's).
///
/// Everything else runs serially — correct by construction, just not
/// sped up. The analysis is deliberately conservative: a false negative
/// costs performance, a false positive would corrupt results.
pub fn partition_plan(query: &Query) -> Option<Partition> {
    let body = &query.body;
    if has_positional_calls(body) {
        return None;
    }
    let source = match body {
        Expr::Path { init, steps } => {
            if !axis_only(steps) {
                return None;
            }
            xmlcolumn_literal(init)?
        }
        Expr::Flwor(f) => {
            if f.clauses.iter().any(|c| matches!(c, FlworClause::OrderBy(_))) {
                return None;
            }
            let FlworClause::For { position: None, expr, .. } = f.clauses.first()? else {
                return None;
            };
            match expr {
                Expr::Path { init, steps } => {
                    if !axis_only(steps) {
                        return None;
                    }
                    xmlcolumn_literal(init)?
                }
                other => xmlcolumn_literal(other)?,
            }
        }
        _ => return None,
    };
    if count_source_refs(body, &source) != 1 {
        return None;
    }
    Some(Partition { source })
}

fn axis_only(steps: &[Step]) -> bool {
    steps.iter().all(|s| matches!(s, Step::Axis { .. }))
}

/// True if the expression calls `position()` or `last()` anywhere. Matched
/// by local name regardless of namespace — conservatively serializing a
/// user-defined `position` costs speed, never correctness.
fn has_positional_calls(expr: &Expr) -> bool {
    let mut found = false;
    visit_exprs(expr, &mut |e| {
        if let Expr::FunctionCall { name, .. } = e {
            if matches!(&*name.local, "position" | "last") {
                found = true;
            }
        }
    });
    found
}

fn count_source_refs(expr: &Expr, source: &str) -> usize {
    let mut n = 0usize;
    visit_exprs(expr, &mut |e| {
        if xmlcolumn_literal(e).as_deref() == Some(source) {
            n += 1;
        }
    });
    n
}

/// The surviving rows of `source` (filter ∩ rows holding an XML document),
/// in row order — provided their document ids are strictly increasing, the
/// property that makes shard-order concatenation equal global document
/// order. Documents get monotone ids at INSERT, so this holds unless a
/// document handle was shared across rows; then we fall back to serial.
fn monotone_surviving_rows(
    catalog: &Catalog,
    source: &str,
    filter: Option<&BTreeSet<u64>>,
) -> Option<Vec<u64>> {
    let (table, col) = catalog.db.resolve_xml_column(source).ok()?;
    let mut rows = Vec::new();
    let mut last_doc: Option<u64> = None;
    for item in table.scan() {
        // A page fault here means the serial path will surface the same
        // typed error; declining the parallel plan is enough.
        let (row, values) = item.ok()?;
        if let Some(f) = filter {
            if !f.contains(&(row as u64)) {
                continue;
            }
        }
        if let SqlValue::Xml(n) = &values[col] {
            let doc = n.doc.id.0;
            if last_doc.is_some_and(|d| d >= doc) {
                return None;
            }
            last_doc = Some(doc);
            rows.push(row as u64);
        }
    }
    Some(rows)
}

/// Render an EXPLAIN report for a plan, including the parallelism section
/// for the given degree.
pub fn explain_with_threads(plan: &QueryPlan, threads: usize) -> String {
    let mut out = explain(plan);
    let threads = threads.max(1);
    if threads == 1 {
        out.push_str("  parallelism: serial (1 thread)\n");
    } else {
        match partition_plan(&plan.query) {
            Some(p) => out.push_str(&format!(
                "  parallelism: {threads} threads, sharded scan over {}\n",
                p.source
            )),
            None => out.push_str(&format!(
                "  parallelism: serial ({threads} threads requested, query is not partitionable)\n"
            )),
        }
    }
    out
}

/// Render an EXPLAIN report for a plan.
pub fn explain(plan: &QueryPlan) -> String {
    let mut out = String::from("XQUERY PLAN\n");
    if plan.accesses.is_empty() {
        out.push_str("  (no stored collections referenced)\n");
    }
    for a in &plan.accesses {
        match &a.access {
            Some(c) => {
                out.push_str(&format!("  source {}: INDEX {}\n", a.source, c.render()));
            }
            None => {
                out.push_str(&format!("  source {}: COLLECTION SCAN\n", a.source));
            }
        }
    }
    if !plan.cost.notes.is_empty() {
        out.push_str("  cost decisions:\n");
        for n in &plan.cost.notes {
            out.push_str(&format!("    - {n}\n"));
        }
    }
    if !plan.prefilter.is_empty() {
        out.push_str("  structural prefilter:\n");
        let mut sources: Vec<&String> = plan.prefilter.keys().collect();
        sources.sort();
        for s in sources {
            out.push_str(&format!("    - {s}: requires {}\n", plan.prefilter[s].render()));
        }
    }
    if !plan.twig.is_empty() {
        out.push_str("  twig join:\n");
        let mut sources: Vec<&String> = plan.twig.keys().collect();
        sources.sort();
        for s in sources {
            out.push_str(&format!("    - {s}: matches {}\n", plan.twig[s].render()));
        }
    }
    if !plan.notes.is_empty() {
        out.push_str("  notes:\n");
        for n in &plan.notes {
            out.push_str(&format!("    - {n}\n"));
        }
    }
    if !plan.rejections.is_empty() {
        out.push_str("  rejected candidates:\n");
        for r in &plan.rejections {
            out.push_str(&format!("    - {}\n", r.candidate));
            for reason in &r.reasons {
                out.push_str(&format!("        {reason}\n"));
            }
        }
    }
    out
}

/// Render an `EXPLAIN ANALYZE` report: the plan, the actual span trace
/// (per-stage wall-clock timings and item counts), the execution counters
/// — verbatim from the outcome's [`ExecStats`], so the report reconciles
/// exactly with what the query returned — and one query-doctor line per
/// eligibility pitfall, naming the paper Tip (or rule) that fired.
pub fn explain_analyze_report(plan: &QueryPlan, outcome: &ExecOutcome, threads: usize) -> String {
    let mut out = explain_with_threads(plan, threads);
    render_execution_sections(&mut out, &outcome.stats, &outcome.trace);
    let mut diagnoses = diagnose(&plan.rejections, &plan.notes);
    if outcome.stats.plans_costed > 0 {
        diagnoses.extend(diagnose_misestimate(
            outcome.stats.cost_est_rows,
            outcome.stats.cost_actual_rows,
        ));
    }
    render_doctor_section(&mut out, &diagnoses);
    out
}

/// The shared `EXECUTION` (trace) and `COUNTERS` (stats, verbatim) sections
/// of an `EXPLAIN ANALYZE` report — used by both the XQuery and the SQL/XML
/// front ends.
pub(crate) fn render_execution_sections(out: &mut String, s: &ExecStats, trace: &Trace) {
    out.push_str("EXECUTION\n");
    let rendered = trace.render();
    if rendered.is_empty() {
        out.push_str("  (trace disabled)\n");
    } else {
        for line in rendered.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out.push_str("COUNTERS\n");
    out.push_str(&format!("  index probes: {}\n", s.index_probes));
    out.push_str(&format!("  index entries scanned: {}\n", s.index_entries_scanned));
    out.push_str(&format!("  btree nodes touched: {}\n", s.btree_nodes_touched));
    out.push_str(&format!(
        "  buffer pool: {} hit(s), {} miss(es), {} eviction(s)\n",
        s.buffer_pool_hits, s.buffer_pool_misses, s.pages_evicted
    ));
    let total: usize = s.docs_total.values().sum();
    out.push_str(&format!(
        "  documents evaluated: {} of {total}\n",
        s.docs_evaluated_total()
    ));
    out.push_str(&format!(
        "  prefilter docs skipped: {}\n",
        s.prefilter_docs_skipped
    ));
    out.push_str(&format!(
        "  twig joins: {} ({} candidate(s), {} skipped)\n",
        s.twig_joins, s.twig_candidates, s.twig_docs_skipped
    ));
    out.push_str(&format!(
        "  plan cache: {} hit(s), {} miss(es)\n",
        s.plan_cache_hits, s.plan_cache_misses
    ));
    if s.plans_costed > 0 {
        out.push_str(&format!(
            "  cost: est {} row(s), actual {} ({} candidate(s) scored, {} intersection(s))\n",
            s.cost_est_rows,
            s.cost_actual_rows,
            s.index_candidates_costed,
            s.multi_index_intersections
        ));
    }
    out.push_str(&format!("  eval steps: {}\n", s.steps_used));
    out.push_str(&format!(
        "  index faults: {} (degraded to scan: {})\n",
        s.index_faults,
        s.degraded_sources.len()
    ));
    out.push_str(&format!(
        "  workers: {}  shards: {}\n",
        s.parallel_workers, s.parallel_shards
    ));
    if s.rows_deleted > 0 || s.docs_replaced > 0 || s.tombstones_reclaimed > 0 {
        out.push_str(&render_dml_line(s));
    }
}

/// The `dml:` counters line of a DML `EXPLAIN ANALYZE` report. Rendered
/// unconditionally by the DML front end and only when non-zero by the
/// shared COUNTERS section (SELECT reports stay byte-identical).
pub(crate) fn render_dml_line(s: &ExecStats) -> String {
    format!(
        "  dml: {} row(s) deleted, {} doc(s) replaced, {} tombstone(s) reclaimed\n",
        s.rows_deleted, s.docs_replaced, s.tombstones_reclaimed
    )
}

/// The `QUERY DOCTOR` section: one line per diagnosis, naming the paper
/// Tip (or rule) that disqualified the index.
pub(crate) fn render_doctor_section(out: &mut String, diagnoses: &[crate::eligibility::Diagnosis]) {
    if diagnoses.is_empty() {
        return;
    }
    out.push_str("QUERY DOCTOR\n");
    for d in diagnoses {
        out.push_str(&format!("  {}\n", d.render()));
    }
}

/// One worker's view of the partition source: a sorted slice of surviving
/// row ids, served via a range-bounded scan so workers never re-walk the
/// whole table.
struct Shard<'a> {
    source: &'a str,
    rows: &'a [u64],
}

/// Collection provider that serves only the rows surviving index
/// pre-filtering — and, on a worker, only the shard's slice of the
/// partition source.
struct FilteredProvider<'a> {
    catalog: &'a Catalog,
    filters: &'a HashMap<String, BTreeSet<u64>>,
    shard: Option<Shard<'a>>,
}

impl<'a> FilteredProvider<'a> {
    /// Fault-injection point shared by both scan shapes: same semantics as
    /// `Database::xmlcolumn`, a document fetch fault has no fallback.
    fn check_fetch_fault(&self, row: usize, key: &str) -> Result<(), XdmError> {
        if let Some(inj) = self.catalog.db.fault_injector() {
            if inj.should_fail() {
                return Err(XdmError::storage_fault(format!(
                    "injected fault fetching document at row {row} of {key}"
                )));
            }
        }
        Ok(())
    }
}

impl<'a> CollectionProvider for FilteredProvider<'a> {
    fn xmlcolumn(&self, name: &str) -> Result<Sequence, XdmError> {
        let key = name.to_ascii_uppercase();
        let (table, col) = self.catalog.db.resolve_xml_column(&key)?;
        if let Some(shard) = self.shard.as_ref().filter(|s| s.source == key) {
            // Sharded scan: decode exactly this worker's surviving rows —
            // a point lookup per row, never the whole range (the shard may
            // be sparse after probes/joins/pre-filters pruned it).
            let mut out = Vec::with_capacity(shard.rows.len());
            for &row in shard.rows {
                self.check_fetch_fault(row as usize, &key)?;
                if let Some(SqlValue::Xml(n)) = table.cell(row as usize, col)? {
                    out.push(Item::Node(n));
                }
            }
            return Ok(out);
        }
        if let Some(f) = self.filters.get(&key) {
            // A filter survived the probe/twig/pre-filter phases: decode
            // only the surviving rows. Skipped documents must cost nothing
            // here, or the filtering phases' savings evaporate in decode
            // work. Fault-injection semantics are unchanged — the full
            // scan below also only fault-checked filter-passing rows.
            let mut out = Vec::with_capacity(f.len());
            for &row in f {
                self.check_fetch_fault(row as usize, &key)?;
                if let Some(SqlValue::Xml(n)) = table.cell(row as usize, col)? {
                    out.push(Item::Node(n));
                }
            }
            return Ok(out);
        }
        let mut out = Vec::new();
        for item in table.scan() {
            let (row, values) = item?;
            self.check_fetch_fault(row, &key)?;
            if let SqlValue::Xml(n) = &values[col] {
                out.push(Item::Node(n.clone()));
            }
        }
        Ok(out)
    }
}

/// Collect every `db2-fn:xmlcolumn` literal referenced by the expression.
pub fn collect_sources(expr: &Expr, out: &mut BTreeSet<String>) {
    visit_exprs(expr, &mut |e| {
        if let Some(src) = xmlcolumn_literal(e) {
            out.insert(src);
        }
    });
}

/// The upper-cased source named by a `db2-fn:xmlcolumn('T.C')` call, if
/// `expr` is exactly such a call with a string-literal argument.
pub(crate) fn xmlcolumn_literal(expr: &Expr) -> Option<String> {
    if let Expr::FunctionCall { name, args } = expr {
        if &*name.local == "xmlcolumn" && name.ns.as_deref() == Some(xqdb_xdm::qname::DB2_FN_NS) {
            if let [Expr::Literal(xqdb_xdm::AtomicValue::String(s))] = args.as_slice() {
                return Some(s.to_ascii_uppercase());
            }
        }
    }
    None
}

/// Pre-order visit of every sub-expression, including step predicates,
/// filter-step expressions and constructor content. The single walker
/// behind [`collect_sources`] and the partitionability checks, so new
/// `Expr` variants fail compilation here instead of silently escaping one
/// of several hand-rolled traversals.
pub(crate) fn visit_exprs(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::FunctionCall { args, .. } => {
            for a in args {
                visit_exprs(a, f);
            }
        }
        Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem | Expr::Root => {}
        Expr::Sequence(items) => {
            for e in items {
                visit_exprs(e, f);
            }
        }
        Expr::Range(a, b)
        | Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::GeneralCmp(_, a, b)
        | Expr::ValueCmp(_, a, b)
        | Expr::NodeCmp(_, a, b)
        | Expr::Arith(_, a, b)
        | Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b) => {
            visit_exprs(a, f);
            visit_exprs(b, f);
        }
        Expr::UnaryMinus(e)
        | Expr::Paren(e)
        | Expr::InstanceOf(e, _)
        | Expr::TreatAs(e, _)
        | Expr::CastAs { expr: e, .. }
        | Expr::CastableAs { expr: e, .. } => visit_exprs(e, f),
        Expr::Flwor(fl) => {
            for c in &fl.clauses {
                match c {
                    FlworClause::For { expr, .. } | FlworClause::Let { expr, .. } => {
                        visit_exprs(expr, f)
                    }
                    FlworClause::Where(e) => visit_exprs(e, f),
                    FlworClause::OrderBy(specs) => {
                        for s in specs {
                            visit_exprs(&s.expr, f);
                        }
                    }
                }
            }
            visit_exprs(&fl.ret, f);
        }
        Expr::Quantified { bindings, satisfies, .. } => {
            for (_, e) in bindings {
                visit_exprs(e, f);
            }
            visit_exprs(satisfies, f);
        }
        Expr::If { cond, then, els } => {
            visit_exprs(cond, f);
            visit_exprs(then, f);
            visit_exprs(els, f);
        }
        Expr::Filter { expr, predicates } => {
            visit_exprs(expr, f);
            for p in predicates {
                visit_exprs(p, f);
            }
        }
        Expr::Path { init, steps } => {
            visit_exprs(init, f);
            for s in steps {
                match s {
                    Step::Axis { predicates, .. } => {
                        for p in predicates {
                            visit_exprs(p, f);
                        }
                    }
                    Step::Filter { expr, predicates } => {
                        visit_exprs(expr, f);
                        for p in predicates {
                            visit_exprs(p, f);
                        }
                    }
                }
            }
        }
        Expr::DirectElement(d) => visit_direct(d, f),
        Expr::ComputedElement { content, .. }
        | Expr::ComputedAttribute { content, .. }
        | Expr::ComputedText(content)
        | Expr::ComputedDocument(content) => {
            if let Some(c) = content {
                visit_exprs(c, f);
            }
        }
    }
}

fn visit_direct(d: &xqdb_xquery::ast::DirectElement, f: &mut impl FnMut(&Expr)) {
    for (_, parts) in &d.attributes {
        for p in parts {
            if let ConstructorContent::Expr(e) = p {
                visit_exprs(e, f);
            }
        }
    }
    for part in &d.content {
        match part {
            ConstructorContent::Expr(e) => visit_exprs(e, f),
            ConstructorContent::Element(inner) => visit_direct(inner, f),
            _ => {}
        }
    }
}

/// External variable bindings that also inform the analyzer (used by the
/// SQL/XML layer's PASSING clause).
pub fn bound_context(
    bindings: Vec<(ExpandedName, Sequence)>,
) -> DynamicContext {
    let mut map = HashMap::new();
    for (name, value) in bindings {
        map.insert(name, value);
    }
    DynamicContext::with_variables(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(q: &str) -> Option<Partition> {
        partition_plan(&xqdb_xquery::parse_query(q).unwrap())
    }

    #[test]
    fn partition_analysis_accepts_the_shardable_fragment() {
        // Top-level axis-only path over one collection.
        let p = part("db2-fn:xmlcolumn('T.C')//order[lineitem/@price > 100]").unwrap();
        assert_eq!(p.source, "T.C");
        // For-headed FLWOR over the bare collection or an axis-only path.
        assert!(part("for $o in db2-fn:xmlcolumn('T.C') return $o/a").is_some());
        let p = part(
            "for $o in db2-fn:xmlcolumn('T.C')/order where $o/a > 1 return $o/b",
        )
        .unwrap();
        assert_eq!(p.source, "T.C");
    }

    #[test]
    fn partition_analysis_serializes_everything_else() {
        // A let-binding sees the whole collection at once.
        assert!(part("let $a := db2-fn:xmlcolumn('T.C') return $a").is_none());
        // Two references to the source (self-join): one shard would need
        // the other shards' documents.
        assert!(part(
            "for $o in db2-fn:xmlcolumn('T.C')/order \
             for $p in db2-fn:xmlcolumn('T.C')/order \
             where $o/id = $p/ref return $o"
        )
        .is_none());
        // position()/last() observe the global sequence.
        assert!(part("db2-fn:xmlcolumn('T.C')/order[position() = 1]").is_none());
        assert!(
            part("for $o in db2-fn:xmlcolumn('T.C') return $o[last()]").is_none()
        );
        // A positional `at` variable is global too.
        assert!(
            part("for $o at $i in db2-fn:xmlcolumn('T.C') return $i").is_none()
        );
        // A filter step (function-call step) can produce atomics whose
        // ordering rules are not shard-local.
        assert!(part("db2-fn:xmlcolumn('T.C')/order/xs:double(.)").is_none());
        // Joins against a second collection are fine as long as the
        // *partitioned* source is referenced once.
        let p = part(
            "for $o in db2-fn:xmlcolumn('T.C')/order \
             for $c in db2-fn:xmlcolumn('U.D')/customer \
             where $o/custid = $c/id return $o"
        );
        assert_eq!(p.unwrap().source, "T.C");
    }
}
