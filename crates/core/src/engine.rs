//! The XQuery engine: plan → pre-filter via indexes → evaluate.
//!
//! Architecture per Section 2 of the paper: indexes *pre-filter* the
//! collection (Definition 1's `I(P, D)`), and the full query then runs over
//! the surviving documents, so residual predicates, ordering, construction
//! and node identity all behave exactly as in the unoptimized evaluation.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use xqdb_xdm::{Budget, ErrorCode, ExpandedName, Item, Limits, Sequence, XdmError};
use xqdb_xmlindex::ProbeStats;
use xqdb_xqeval::{CollectionProvider, DynamicContext};
use xqdb_xquery::ast::{ConstructorContent, Expr, FlworClause, Step};
use xqdb_xquery::Query;
use xqdb_storage::SqlValue;

use crate::catalog::Catalog;
use crate::eligibility::{
    analyze_query_root, compile, restrict_to_source, AnalysisEnv, Cond, IndexCond, Note, Rejection,
};

/// Per-collection access decision.
#[derive(Debug, Clone)]
pub struct SourceAccess {
    /// Collection key (`TABLE.COLUMN`).
    pub source: String,
    /// The compiled index condition, or `None` for a collection scan.
    pub access: Option<IndexCond>,
}

/// A planned query.
#[derive(Debug)]
pub struct QueryPlan {
    /// The parsed query.
    pub query: Query,
    /// The extracted filtering condition (pre-restriction).
    pub cond: Cond,
    /// Access path per referenced collection.
    pub accesses: Vec<SourceAccess>,
    /// Analyzer diagnostics (non-filtering predicates etc.).
    pub notes: Vec<Note>,
    /// Candidates that found no index, with reasons.
    pub rejections: Vec<Rejection>,
}

/// Execution statistics, reported by benches and EXPLAIN.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Index entries scanned across all probes.
    pub index_entries_scanned: usize,
    /// Documents fetched and evaluated, per source.
    pub docs_evaluated: HashMap<String, usize>,
    /// Collection sizes, per source.
    pub docs_total: HashMap<String, usize>,
    /// Sources whose index probe failed at execution time and fell back to
    /// a full collection scan (correct by Definition 1, just slower).
    pub degraded_sources: Vec<String>,
    /// Number of index probe faults observed during execution.
    pub index_faults: usize,
    /// Evaluator steps charged against the budget.
    pub steps_used: u64,
}

/// Result of executing a planned query.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The query result sequence.
    pub sequence: Sequence,
    /// Statistics.
    pub stats: ExecStats,
}

/// Plan an XQuery against the catalog. `env` carries externally-bound
/// variables (the SQL/XML `PASSING` clause).
pub fn plan_query(catalog: &Catalog, query: Query, env: &AnalysisEnv) -> QueryPlan {
    let analysis = analyze_query_root(&query.body, env);
    let mut sources = BTreeSet::new();
    collect_sources(&query.body, &mut sources);
    let mut accesses = Vec::new();
    let mut rejections = Vec::new();
    for source in sources {
        let restricted = restrict_to_source(&analysis.cond, &source);
        let indexes = catalog.indexes_for_source(&source);
        let compiled = compile(&restricted, &indexes);
        rejections.extend(compiled.rejections);
        accesses.push(SourceAccess { source, access: compiled.access });
    }
    QueryPlan {
        query,
        cond: analysis.cond,
        accesses,
        notes: analysis.notes,
        rejections,
    }
}

/// Parse, plan and execute an XQuery string.
pub fn run_xquery(catalog: &Catalog, text: &str) -> Result<ExecOutcome, XdmError> {
    run_xquery_with_limits(catalog, text, Limits::unlimited())
}

/// Parse, plan and execute an XQuery string under resource limits.
pub fn run_xquery_with_limits(
    catalog: &Catalog,
    text: &str,
    limits: Limits,
) -> Result<ExecOutcome, XdmError> {
    let query = xqdb_xquery::parse_query(text).map_err(|e| {
        XdmError::new(xqdb_xdm::ErrorCode::XPST0003, e.to_string())
    })?;
    let plan = plan_query(catalog, query, &AnalysisEnv::new());
    let budget = Arc::new(Budget::new(limits));
    execute_plan(catalog, &plan, &DynamicContext::new().with_budget(budget))
}

/// Execute a planned query. The context's budget governs the whole run:
/// probes charge index entries, the evaluator charges steps, and the final
/// result is checked against the cardinality cap.
///
/// If an index probe fails with a `StorageFault` (injected or real), the
/// affected source **degrades to a full collection scan** — by Definition 1
/// the index is only a pre-filter, so scanning everything is always
/// correct. The degradation is recorded in [`ExecStats`]. Budget errors
/// (`ResourceExhausted`, `Cancelled`) are not degradable and propagate.
pub fn execute_plan(
    catalog: &Catalog,
    plan: &QueryPlan,
    ctx: &DynamicContext,
) -> Result<ExecOutcome, XdmError> {
    let mut stats = ExecStats::default();
    let mut filters: HashMap<String, BTreeSet<u64>> = HashMap::new();
    for access in &plan.accesses {
        let total = catalog
            .db
            .resolve_xml_column(&access.source)
            .map(|(t, _)| t.len())
            .unwrap_or(0);
        stats.docs_total.insert(access.source.clone(), total);
        match &access.access {
            Some(cond) => {
                let indexes = catalog.indexes_for_source(&access.source);
                let mut pstats = ProbeStats::default();
                match cond.execute(&indexes, &mut pstats, &ctx.budget) {
                    Ok(rows) => {
                        stats.index_entries_scanned += pstats.entries_scanned;
                        stats.docs_evaluated.insert(access.source.clone(), rows.len());
                        filters.insert(access.source.clone(), rows);
                    }
                    Err(e) if e.code == ErrorCode::StorageFault => {
                        // Graceful degradation: no filter for this source.
                        stats.index_entries_scanned += pstats.entries_scanned;
                        stats.index_faults += 1;
                        stats.degraded_sources.push(access.source.clone());
                        stats.docs_evaluated.insert(access.source.clone(), total);
                    }
                    Err(e) => return Err(e),
                }
            }
            None => {
                stats.docs_evaluated.insert(access.source.clone(), total);
            }
        }
    }
    let provider = FilteredProvider { catalog, filters };
    let sequence = xqdb_xqeval::eval_query(&plan.query, &provider, ctx)?;
    ctx.budget.check_result_items(sequence.len())?;
    stats.steps_used = ctx.budget.steps_used();
    Ok(ExecOutcome { sequence, stats })
}

/// Render an EXPLAIN report for a plan.
pub fn explain(plan: &QueryPlan) -> String {
    let mut out = String::from("XQUERY PLAN\n");
    if plan.accesses.is_empty() {
        out.push_str("  (no stored collections referenced)\n");
    }
    for a in &plan.accesses {
        match &a.access {
            Some(c) => {
                out.push_str(&format!("  source {}: INDEX {}\n", a.source, c.render()));
            }
            None => {
                out.push_str(&format!("  source {}: COLLECTION SCAN\n", a.source));
            }
        }
    }
    if !plan.notes.is_empty() {
        out.push_str("  notes:\n");
        for n in &plan.notes {
            out.push_str(&format!("    - {n}\n"));
        }
    }
    if !plan.rejections.is_empty() {
        out.push_str("  rejected candidates:\n");
        for r in &plan.rejections {
            out.push_str(&format!("    - {}\n", r.candidate));
            for reason in &r.reasons {
                out.push_str(&format!("        {reason}\n"));
            }
        }
    }
    out
}

/// Collection provider that serves only the rows surviving index
/// pre-filtering.
struct FilteredProvider<'a> {
    catalog: &'a Catalog,
    filters: HashMap<String, BTreeSet<u64>>,
}

impl<'a> CollectionProvider for FilteredProvider<'a> {
    fn xmlcolumn(&self, name: &str) -> Result<Sequence, XdmError> {
        let key = name.to_ascii_uppercase();
        let (table, col) = self.catalog.db.resolve_xml_column(&key)?;
        let filter = self.filters.get(&key);
        let mut out = Vec::new();
        for (row, values) in table.scan() {
            if let Some(f) = filter {
                if !f.contains(&(row as u64)) {
                    continue;
                }
            }
            // Same storage injection point as Database::xmlcolumn: a
            // document fetch fault has no fallback and surfaces typed.
            if let Some(inj) = self.catalog.db.fault_injector() {
                if inj.should_fail() {
                    return Err(XdmError::storage_fault(format!(
                        "injected fault fetching document at row {row} of {key}"
                    )));
                }
            }
            if let SqlValue::Xml(n) = &values[col] {
                out.push(Item::Node(n.clone()));
            }
        }
        Ok(out)
    }
}

/// Collect every `db2-fn:xmlcolumn` literal referenced by the expression.
pub fn collect_sources(expr: &Expr, out: &mut BTreeSet<String>) {
    match expr {
        Expr::FunctionCall { name, args } => {
            if &*name.local == "xmlcolumn"
                && name.ns.as_deref() == Some(xqdb_xdm::qname::DB2_FN_NS)
            {
                if let [Expr::Literal(xqdb_xdm::AtomicValue::String(s))] = args.as_slice() {
                    out.insert(s.to_ascii_uppercase());
                }
            }
            for a in args {
                collect_sources(a, out);
            }
        }
        Expr::Literal(_) | Expr::VarRef(_) | Expr::ContextItem | Expr::Root => {}
        Expr::Sequence(items) => {
            for e in items {
                collect_sources(e, out);
            }
        }
        Expr::Range(a, b)
        | Expr::Or(a, b)
        | Expr::And(a, b)
        | Expr::GeneralCmp(_, a, b)
        | Expr::ValueCmp(_, a, b)
        | Expr::NodeCmp(_, a, b)
        | Expr::Arith(_, a, b)
        | Expr::Union(a, b)
        | Expr::Intersect(a, b)
        | Expr::Except(a, b) => {
            collect_sources(a, out);
            collect_sources(b, out);
        }
        Expr::UnaryMinus(e)
        | Expr::Paren(e)
        | Expr::InstanceOf(e, _)
        | Expr::TreatAs(e, _)
        | Expr::CastAs { expr: e, .. }
        | Expr::CastableAs { expr: e, .. } => collect_sources(e, out),
        Expr::Flwor(f) => {
            for c in &f.clauses {
                match c {
                    FlworClause::For { expr, .. } | FlworClause::Let { expr, .. } => {
                        collect_sources(expr, out)
                    }
                    FlworClause::Where(e) => collect_sources(e, out),
                    FlworClause::OrderBy(specs) => {
                        for s in specs {
                            collect_sources(&s.expr, out);
                        }
                    }
                }
            }
            collect_sources(&f.ret, out);
        }
        Expr::Quantified { bindings, satisfies, .. } => {
            for (_, e) in bindings {
                collect_sources(e, out);
            }
            collect_sources(satisfies, out);
        }
        Expr::If { cond, then, els } => {
            collect_sources(cond, out);
            collect_sources(then, out);
            collect_sources(els, out);
        }
        Expr::Filter { expr, predicates } => {
            collect_sources(expr, out);
            for p in predicates {
                collect_sources(p, out);
            }
        }
        Expr::Path { init, steps } => {
            collect_sources(init, out);
            for s in steps {
                match s {
                    Step::Axis { predicates, .. } => {
                        for p in predicates {
                            collect_sources(p, out);
                        }
                    }
                    Step::Filter { expr, predicates } => {
                        collect_sources(expr, out);
                        for p in predicates {
                            collect_sources(p, out);
                        }
                    }
                }
            }
        }
        Expr::DirectElement(d) => collect_sources_direct(d, out),
        Expr::ComputedElement { content, .. }
        | Expr::ComputedAttribute { content, .. }
        | Expr::ComputedText(content)
        | Expr::ComputedDocument(content) => {
            if let Some(c) = content {
                collect_sources(c, out);
            }
        }
    }
}

fn collect_sources_direct(d: &xqdb_xquery::ast::DirectElement, out: &mut BTreeSet<String>) {
    for (_, parts) in &d.attributes {
        for p in parts {
            if let ConstructorContent::Expr(e) = p {
                collect_sources(e, out);
            }
        }
    }
    for part in &d.content {
        match part {
            ConstructorContent::Expr(e) => collect_sources(e, out),
            ConstructorContent::Element(inner) => collect_sources_direct(inner, out),
            _ => {}
        }
    }
}

/// External variable bindings that also inform the analyzer (used by the
/// SQL/XML layer's PASSING clause).
pub fn bound_context(
    bindings: Vec<(ExpandedName, Sequence)>,
) -> DynamicContext {
    let mut map = HashMap::new();
    for (name, value) in bindings {
        map.insert(name, value);
    }
    DynamicContext::with_variables(map)
}
