//! The SQL/XML layer: `XMLQUERY`, `XMLEXISTS`, `XMLTABLE`, `XMLCAST` over
//! the storage engine, with XML-index planning for filtering contexts.

pub mod ast;
pub mod exec;
pub mod parser;

pub use exec::{render_plan, xmlcast, Scalar, SqlPlan, SqlResult, SqlSession};
pub use parser::{parse_sql, SqlParseError};
