//! SQL/XML parser: tokenizer + recursive descent over the statement subset
//! the paper's examples use.

use std::fmt;

use xqdb_xdm::compare::CompareOp;
use xqdb_xquery::parse_query;
use xqdb_storage::SqlType;

use super::ast::*;

/// SQL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlParseError {
    /// Offending token position (token index).
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error near token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for SqlParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Identifier or keyword (upper-cased) — original case kept separately
    /// for delimited identifiers.
    Word(String),
    /// 'single-quoted string' ('' escapes).
    Str(String),
    /// "double-quoted identifier".
    Quoted(String),
    Num(String),
    Punct(char),
    /// Two-char operators: `<=`, `>=`, `<>`, `!=`.
    Op(&'static str),
}

fn tokenize(sql: &str) -> Result<Vec<Tok>, SqlParseError> {
    let mut toks = Vec::new();
    let bytes: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '-' && bytes.get(i + 1) == Some(&'-') {
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                i += 1;
            }
            let w: String = bytes[start..i].iter().collect();
            toks.push(Tok::Word(w.to_ascii_uppercase()));
            continue;
        }
        if c.is_ascii_digit()
            || (c == '.' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            while i < bytes.len()
                && (bytes[i].is_ascii_digit()
                    || bytes[i] == '.'
                    || bytes[i] == 'e'
                    || bytes[i] == 'E'
                    || ((bytes[i] == '+' || bytes[i] == '-')
                        && matches!(bytes.get(i.wrapping_sub(1)), Some('e' | 'E'))))
            {
                i += 1;
            }
            toks.push(Tok::Num(bytes[start..i].iter().collect()));
            continue;
        }
        if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(SqlParseError {
                            position: toks.len(),
                            message: "unterminated string literal".into(),
                        })
                    }
                    Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                        s.push('\'');
                        i += 2;
                    }
                    Some('\'') => {
                        i += 1;
                        break;
                    }
                    Some(&ch) => {
                        s.push(ch);
                        i += 1;
                    }
                }
            }
            toks.push(Tok::Str(s));
            continue;
        }
        if c == '"' {
            i += 1;
            let start = i;
            while i < bytes.len() && bytes[i] != '"' {
                i += 1;
            }
            if i >= bytes.len() {
                return Err(SqlParseError {
                    position: toks.len(),
                    message: "unterminated delimited identifier".into(),
                });
            }
            let s: String = bytes[start..i].iter().collect();
            i += 1;
            toks.push(Tok::Quoted(s));
            continue;
        }
        // Two-char operators.
        let two: String = bytes[i..bytes.len().min(i + 2)].iter().collect();
        let op = match two.as_str() {
            "<=" => Some("<="),
            ">=" => Some(">="),
            "<>" => Some("<>"),
            "!=" => Some("!="),
            _ => None,
        };
        if let Some(op) = op {
            toks.push(Tok::Op(op));
            i += 2;
            continue;
        }
        if "(),.*=<>;".contains(c) {
            toks.push(Tok::Punct(c));
            i += 1;
            continue;
        }
        return Err(SqlParseError {
            position: toks.len(),
            message: format!("unexpected character {c:?}"),
        });
    }
    Ok(toks)
}

/// Parse one SQL statement.
pub fn parse_sql(sql: &str) -> Result<SqlStmt, SqlParseError> {
    let toks = tokenize(sql)?;
    let mut p = P { toks, pos: 0 };
    let stmt = p.statement()?;
    p.eat_punct(';');
    if !p.at_end() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(stmt)
}

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn error(&self, msg: impl Into<String>) -> SqlParseError {
        SqlParseError { position: self.pos, message: msg.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_word(&self, w: &str) -> bool {
        matches!(self.peek(), Some(Tok::Word(s)) if s == w)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word(w) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), SqlParseError> {
        if self.eat_word(w) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {w}")))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Tok::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), SqlParseError> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(self.error(format!("expected {c:?}")))
        }
    }

    /// An identifier (bare word or delimited).
    fn identifier(&mut self) -> Result<String, SqlParseError> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            Some(Tok::Quoted(q)) => Ok(q.to_ascii_uppercase()),
            other => Err(self.error(format!("expected an identifier, found {other:?}"))),
        }
    }

    fn string_literal(&mut self) -> Result<String, SqlParseError> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            other => Err(self.error(format!("expected a string literal, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<SqlStmt, SqlParseError> {
        if self.eat_word("CREATE") {
            if self.eat_word("TABLE") {
                return self.create_table();
            }
            if self.eat_word("INDEX") {
                return self.create_index();
            }
            return Err(self.error("expected TABLE or INDEX after CREATE"));
        }
        if self.eat_word("INSERT") {
            return self.insert();
        }
        if self.eat_word("DELETE") {
            return self.delete();
        }
        if self.eat_word("UPDATE") {
            return self.update();
        }
        if self.peek_word("SELECT") {
            return Ok(SqlStmt::Select(self.select()?));
        }
        if self.eat_word("EXPLAIN") {
            if self.eat_word("ANALYZE") {
                if self.eat_word("DELETE") {
                    return Ok(SqlStmt::ExplainAnalyzeDml(Box::new(self.delete()?)));
                }
                if self.eat_word("UPDATE") {
                    return Ok(SqlStmt::ExplainAnalyzeDml(Box::new(self.update()?)));
                }
                return Ok(SqlStmt::ExplainAnalyze(self.select()?));
            }
            return Ok(SqlStmt::Explain(self.select()?));
        }
        if self.eat_word("VALUES") {
            self.expect_punct('(')?;
            let mut values = vec![self.expr()?];
            while self.eat_punct(',') {
                values.push(self.expr()?);
            }
            self.expect_punct(')')?;
            return Ok(SqlStmt::Values(values));
        }
        Err(self.error("expected CREATE, INSERT, DELETE, UPDATE, SELECT, EXPLAIN or VALUES"))
    }

    fn sql_type(&mut self) -> Result<SqlType, SqlParseError> {
        let w = self.identifier()?;
        match w.as_str() {
            "INTEGER" | "INT" | "BIGINT" => Ok(SqlType::Integer),
            "DOUBLE" | "FLOAT" => Ok(SqlType::Double),
            "DECIMAL" | "NUMERIC" => {
                if self.eat_punct('(') {
                    let p = self.number_u8()?;
                    self.expect_punct(',')?;
                    let s = self.number_u8()?;
                    self.expect_punct(')')?;
                    Ok(SqlType::Decimal(p, s))
                } else {
                    Ok(SqlType::Decimal(31, 6))
                }
            }
            "VARCHAR" | "CHAR" => {
                self.expect_punct('(')?;
                let n = self.number_usize()?;
                self.expect_punct(')')?;
                Ok(SqlType::Varchar(n))
            }
            "DATE" => Ok(SqlType::Date),
            "TIMESTAMP" => Ok(SqlType::Timestamp),
            "XML" => Ok(SqlType::Xml),
            other => Err(self.error(format!("unknown SQL type {other}"))),
        }
    }

    fn number_u8(&mut self) -> Result<u8, SqlParseError> {
        match self.next() {
            Some(Tok::Num(n)) => n.parse().map_err(|_| self.error("expected a small integer")),
            other => Err(self.error(format!("expected a number, found {other:?}"))),
        }
    }

    fn number_usize(&mut self) -> Result<usize, SqlParseError> {
        match self.next() {
            Some(Tok::Num(n)) => n.parse().map_err(|_| self.error("expected an integer")),
            other => Err(self.error(format!("expected a number, found {other:?}"))),
        }
    }

    fn create_table(&mut self) -> Result<SqlStmt, SqlParseError> {
        let name = self.identifier()?;
        self.expect_punct('(')?;
        let mut columns = Vec::new();
        loop {
            let col = self.identifier()?;
            let ty = self.sql_type()?;
            columns.push((col, ty));
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_punct(')')?;
        Ok(SqlStmt::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<SqlStmt, SqlParseError> {
        let name = self.identifier()?;
        self.expect_word("ON")?;
        let table = self.identifier()?;
        self.expect_punct('(')?;
        let column = self.identifier()?;
        self.expect_punct(')')?;
        self.expect_word("USING")?;
        self.expect_word("XMLPATTERN")?;
        let pattern = self.string_literal()?;
        self.expect_word("AS")?;
        let ty = self.identifier()?;
        Ok(SqlStmt::CreateIndex { name, table, column, pattern, ty: ty.to_ascii_lowercase() })
    }

    fn insert(&mut self) -> Result<SqlStmt, SqlParseError> {
        self.expect_word("INTO")?;
        let table = self.identifier()?;
        self.expect_word("VALUES")?;
        self.expect_punct('(')?;
        let mut values = vec![self.expr()?];
        while self.eat_punct(',') {
            values.push(self.expr()?);
        }
        self.expect_punct(')')?;
        Ok(SqlStmt::Insert { table, values })
    }

    fn delete(&mut self) -> Result<SqlStmt, SqlParseError> {
        self.expect_word("FROM")?;
        let table = self.identifier()?;
        let where_cond = if self.eat_word("WHERE") { Some(self.cond()?) } else { None };
        Ok(SqlStmt::Delete { table, where_cond })
    }

    fn update(&mut self) -> Result<SqlStmt, SqlParseError> {
        let table = self.identifier()?;
        self.expect_word("SET")?;
        let mut set = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect_punct('=')?;
            set.push((col, self.expr()?));
            if !self.eat_punct(',') {
                break;
            }
        }
        let where_cond = if self.eat_word("WHERE") { Some(self.cond()?) } else { None };
        Ok(SqlStmt::Update { table, set, where_cond })
    }

    fn select(&mut self) -> Result<SelectStmt, SqlParseError> {
        self.expect_word("SELECT")?;
        let mut items = Vec::new();
        loop {
            if self.eat_punct('*') {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_word("AS") {
                    Some(self.identifier()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_punct(',') {
                break;
            }
        }
        self.expect_word("FROM")?;
        let mut from = vec![self.from_item()?];
        while self.eat_punct(',') {
            from.push(self.from_item()?);
        }
        let where_cond = if self.eat_word("WHERE") {
            Some(self.cond()?)
        } else {
            None
        };
        Ok(SelectStmt { items, from, where_cond })
    }

    // Parses one FROM-clause item (the name mirrors the grammar production).
    #[allow(clippy::wrong_self_convention)]
    fn from_item(&mut self) -> Result<FromItem, SqlParseError> {
        if self.peek_word("XMLTABLE") {
            return self.xmltable();
        }
        let name = self.identifier()?;
        let alias = if self.eat_word("AS") {
            self.identifier()?
        } else if let Some(Tok::Word(w)) = self.peek() {
            // bare alias, unless it's a clause keyword
            if matches!(w.as_str(), "WHERE" | "ORDER" | "GROUP") {
                name.clone()
            } else {
                self.identifier()?
            }
        } else {
            name.clone()
        };
        Ok(FromItem::Table { name, alias })
    }

    fn xquery_string(&mut self) -> Result<xqdb_xquery::Query, SqlParseError> {
        let pos = self.pos;
        let text = self.string_literal()?;
        parse_query(&text).map_err(|e| SqlParseError {
            position: pos,
            message: format!("embedded XQuery: {e}"),
        })
    }

    fn passing_clause(&mut self) -> Result<Vec<(String, SqlExpr)>, SqlParseError> {
        let mut out = Vec::new();
        if self.eat_word("PASSING") {
            loop {
                let expr = self.expr()?;
                self.expect_word("AS")?;
                let var = match self.next() {
                    Some(Tok::Quoted(q)) => q,
                    Some(Tok::Word(w)) => w.to_ascii_lowercase(),
                    other => {
                        return Err(self.error(format!(
                            "expected a variable name after AS, found {other:?}"
                        )))
                    }
                };
                out.push((var, expr));
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        Ok(out)
    }

    fn xmltable(&mut self) -> Result<FromItem, SqlParseError> {
        self.expect_word("XMLTABLE")?;
        self.expect_punct('(')?;
        let row_query = self.xquery_string()?;
        let passing = self.passing_clause()?;
        let mut columns = Vec::new();
        if self.eat_word("COLUMNS") {
            loop {
                let name = match self.next() {
                    Some(Tok::Quoted(q)) => q.to_ascii_uppercase(),
                    Some(Tok::Word(w)) => w,
                    other => {
                        return Err(self
                            .error(format!("expected a column name, found {other:?}")))
                    }
                };
                let ty = if self.eat_word("XML") {
                    None
                } else {
                    Some(self.sql_type()?)
                };
                let by_ref = if self.eat_word("BY") {
                    if self.eat_word("REF") {
                        true
                    } else {
                        self.expect_word("VALUE")?;
                        false
                    }
                } else {
                    false
                };
                self.expect_word("PATH")?;
                let path = self.xquery_string()?;
                columns.push(XmlTableColumn { name, ty, by_ref, path });
                if !self.eat_punct(',') {
                    break;
                }
            }
        }
        self.expect_punct(')')?;
        let mut alias = "XMLTABLE".to_string();
        let mut column_aliases = Vec::new();
        if self.eat_word("AS") || matches!(self.peek(), Some(Tok::Word(_))) {
            alias = self.identifier()?;
            if self.eat_punct('(') {
                loop {
                    column_aliases.push(self.identifier()?);
                    if !self.eat_punct(',') {
                        break;
                    }
                }
                self.expect_punct(')')?;
            }
        }
        Ok(FromItem::XmlTable { row_query, passing, columns, alias, column_aliases })
    }

    fn expr(&mut self) -> Result<SqlExpr, SqlParseError> {
        match self.peek().cloned() {
            Some(Tok::Word(w)) if w == "XMLQUERY" => {
                self.pos += 1;
                self.expect_punct('(')?;
                let query = self.xquery_string()?;
                let passing = self.passing_clause()?;
                self.expect_punct(')')?;
                Ok(SqlExpr::XmlQuery { query, passing })
            }
            Some(Tok::Word(w)) if w == "XMLCAST" => {
                self.pos += 1;
                self.expect_punct('(')?;
                let inner = self.expr()?;
                self.expect_word("AS")?;
                let ty = self.sql_type()?;
                self.expect_punct(')')?;
                Ok(SqlExpr::XmlCast { expr: Box::new(inner), ty })
            }
            Some(Tok::Word(w)) if w == "NULL" => {
                self.pos += 1;
                Ok(SqlExpr::Null)
            }
            Some(Tok::Word(_)) | Some(Tok::Quoted(_)) => {
                let first = self.identifier()?;
                if self.eat_punct('.') {
                    let name = self.identifier()?;
                    Ok(SqlExpr::Column { qualifier: Some(first), name })
                } else {
                    Ok(SqlExpr::Column { qualifier: None, name: first })
                }
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    n.parse()
                        .map(SqlExpr::Double)
                        .map_err(|_| self.error(format!("bad number {n}")))
                } else {
                    n.parse()
                        .map(SqlExpr::Integer)
                        .map_err(|_| self.error(format!("bad number {n}")))
                }
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Varchar(s))
            }
            other => Err(self.error(format!("expected an expression, found {other:?}"))),
        }
    }

    fn cond(&mut self) -> Result<SqlCond, SqlParseError> {
        let mut lhs = self.cond_and()?;
        while self.eat_word("OR") {
            let rhs = self.cond_and()?;
            lhs = SqlCond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_and(&mut self) -> Result<SqlCond, SqlParseError> {
        let mut lhs = self.cond_primary()?;
        while self.eat_word("AND") {
            let rhs = self.cond_primary()?;
            lhs = SqlCond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cond_primary(&mut self) -> Result<SqlCond, SqlParseError> {
        if self.eat_word("NOT") {
            let inner = self.cond_primary()?;
            return Ok(SqlCond::Not(Box::new(inner)));
        }
        if self.peek_word("XMLEXISTS") {
            self.pos += 1;
            self.expect_punct('(')?;
            let query = self.xquery_string()?;
            let passing = self.passing_clause()?;
            self.expect_punct(')')?;
            return Ok(SqlCond::XmlExists { query, passing });
        }
        if self.eat_punct('(') {
            let inner = self.cond()?;
            self.expect_punct(')')?;
            return Ok(inner);
        }
        // Scalar comparison.
        let lhs = self.expr()?;
        let op = match self.next() {
            Some(Tok::Punct('=')) => CompareOp::Eq,
            Some(Tok::Punct('<')) => CompareOp::Lt,
            Some(Tok::Punct('>')) => CompareOp::Gt,
            Some(Tok::Op("<=")) => CompareOp::Le,
            Some(Tok::Op(">=")) => CompareOp::Ge,
            Some(Tok::Op("<>")) | Some(Tok::Op("!=")) => CompareOp::Ne,
            other => return Err(self.error(format!("expected a comparison, found {other:?}"))),
        };
        let rhs = self.expr()?;
        Ok(SqlCond::Cmp(op, lhs, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_schema() {
        let s = parse_sql("create table customer (cid integer, cdoc XML)").unwrap();
        match s {
            SqlStmt::CreateTable { name, columns } => {
                assert_eq!(name, "CUSTOMER");
                assert_eq!(columns.len(), 2);
                assert_eq!(columns[1].1, SqlType::Xml);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_create_index() {
        let s = parse_sql(
            "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
        )
        .unwrap();
        match s {
            SqlStmt::CreateIndex { name, table, column, pattern, ty } => {
                assert_eq!(name, "LI_PRICE");
                assert_eq!(table, "ORDERS");
                assert_eq!(column, "ORDDOC");
                assert_eq!(pattern, "//lineitem/@price");
                assert_eq!(ty, "double");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_query_5_xmlquery_in_select() {
        let s = parse_sql(
            "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as \"order\") FROM orders",
        )
        .unwrap();
        match s {
            SqlStmt::Select(sel) => {
                assert_eq!(sel.items.len(), 1);
                assert_eq!(sel.from.len(), 1);
                assert!(sel.where_cond.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_query_8_xmlexists() {
        let s = parse_sql(
            "SELECT ordid, orddoc FROM orders \
             WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as \"order\")",
        )
        .unwrap();
        match s {
            SqlStmt::Select(sel) => {
                assert!(matches!(sel.where_cond, Some(SqlCond::XmlExists { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_query_11_xmltable() {
        let s = parse_sql(
            "SELECT o.ordid, t.lineitem \
             FROM orders o, XMLTable('$order//lineitem[@price > 100]' \
                passing o.orddoc as \"order\" \
                COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)",
        )
        .unwrap();
        match s {
            SqlStmt::Select(sel) => {
                assert_eq!(sel.from.len(), 2);
                match &sel.from[1] {
                    FromItem::XmlTable { columns, alias, column_aliases, .. } => {
                        assert_eq!(alias, "T");
                        assert_eq!(columns.len(), 1);
                        assert!(columns[0].by_ref);
                        assert!(columns[0].ty.is_none());
                        assert_eq!(column_aliases, &vec!["LINEITEM".to_string()]);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_query_12_xmltable_with_decimal_column() {
        let s = parse_sql(
            "SELECT o.ordid, t.lineitem, t.price \
             FROM orders o, XMLTable('$order//lineitem' passing o.orddoc as \"order\" \
                COLUMNS \"lineitem\" XML BY REF PATH '.', \
                        \"price\" DECIMAL(6,3) PATH '@price[. > 100]') as t(lineitem, price)",
        )
        .unwrap();
        match s {
            SqlStmt::Select(sel) => match &sel.from[1] {
                FromItem::XmlTable { columns, .. } => {
                    assert_eq!(columns.len(), 2);
                    assert_eq!(columns[1].ty, Some(SqlType::Decimal(6, 3)));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_query_14_xmlcast() {
        let s = parse_sql(
            "SELECT p.name FROM products p, orders o \
             WHERE p.id = XMLCast(XMLQuery('$order//lineitem/product/id' \
                passing o.orddoc as \"order\") as VARCHAR(13))",
        )
        .unwrap();
        match s {
            SqlStmt::Select(sel) => match sel.where_cond {
                Some(SqlCond::Cmp(CompareOp::Eq, _, SqlExpr::XmlCast { ty, .. })) => {
                    assert_eq!(ty, SqlType::Varchar(13));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_values_statement() {
        let s = parse_sql(
            "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")//lineitem[@price > 100]'))",
        )
        .unwrap();
        assert!(matches!(s, SqlStmt::Values(v) if v.len() == 1));
    }

    #[test]
    fn parses_insert() {
        let s = parse_sql("INSERT INTO orders VALUES (1, '<order/>')").unwrap();
        match s {
            SqlStmt::Insert { table, values } => {
                assert_eq!(table, "ORDERS");
                assert_eq!(values.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_delete_and_update() {
        let s = parse_sql("DELETE FROM orders WHERE ordid = 3").unwrap();
        match s {
            SqlStmt::Delete { table, where_cond } => {
                assert_eq!(table, "ORDERS");
                assert!(matches!(where_cond, Some(SqlCond::Cmp(..))));
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_sql("DELETE FROM orders").unwrap();
        assert!(matches!(s, SqlStmt::Delete { where_cond: None, .. }));
        let s = parse_sql("UPDATE orders SET orddoc = '<order/>' WHERE ordid = 3").unwrap();
        match s {
            SqlStmt::Update { table, set, where_cond } => {
                assert_eq!(table, "ORDERS");
                assert_eq!(set.len(), 1);
                assert_eq!(set[0].0, "ORDDOC");
                assert!(where_cond.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_sql("EXPLAIN ANALYZE DELETE FROM orders WHERE ordid = 3").unwrap();
        match s {
            SqlStmt::ExplainAnalyzeDml(inner) => {
                assert!(matches!(*inner, SqlStmt::Delete { .. }))
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = parse_sql("EXPLAIN ANALYZE UPDATE orders SET orddoc = NULL").unwrap();
        assert!(matches!(s, SqlStmt::ExplainAnalyzeDml(_)));
        // Malformed DML is rejected with a parse error, never a panic.
        assert!(parse_sql("DELETE orders").is_err());
        assert!(parse_sql("UPDATE orders WHERE ordid = 1").is_err());
        assert!(parse_sql("UPDATE orders SET").is_err());
    }

    #[test]
    fn parses_and_or_not() {
        let s = parse_sql(
            "SELECT * FROM t WHERE a = 1 AND (b > 2 OR NOT c < 3)",
        )
        .unwrap();
        match s {
            SqlStmt::Select(sel) => {
                assert!(matches!(sel.where_cond, Some(SqlCond::And(..))));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_sql("SELECT FROM").is_err());
        assert!(parse_sql("CREATE VIEW x").is_err());
        assert!(parse_sql("SELECT * FROM t WHERE").is_err());
        assert!(parse_sql("SELECT * FROM t extra garbage !!!").is_err());
        // Embedded XQuery must parse.
        assert!(parse_sql("SELECT XMLQuery('for $x in') FROM t").is_err());
    }

    #[test]
    fn explain_prefix() {
        let s = parse_sql("EXPLAIN SELECT * FROM orders").unwrap();
        assert!(matches!(s, SqlStmt::Explain(_)));
    }
}
