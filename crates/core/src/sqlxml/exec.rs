//! SQL/XML execution, with XML-index pre-filtering of base tables.
//!
//! Index planning hooks (the paper's Section 3.2):
//!
//! * `XMLEXISTS` conjuncts in WHERE whose PASSING arguments come from a
//!   single base table are analyzed with [`analyze_filtering`] — they
//!   eliminate rows, so their predicates are index-eligible;
//! * the `XMLTABLE` **row producer** likewise (an empty row set eliminates
//!   the outer row — the inner-join semantics of the lateral call);
//! * `XMLQUERY` select-list items and `XMLTABLE` column expressions are
//!   analyzed with [`analyze_non_filtering`]: their predicates never
//!   eliminate rows, so candidates found there surface as EXPLAIN notes
//!   (Queries 5 and 12), never as index probes.

use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use xqdb_obs::{Counter, Histogram, Obs, Trace};
use xqdb_runtime::{chunk_ranges, WorkerPool};
use xqdb_xdm::{cast, AtomicType, AtomicValue, ErrorCode, ExpandedName, Item, Sequence, XdmError};
use xqdb_xmlindex::ProbeStats;
use xqdb_xqeval::{eval_query, DynamicContext};
use xqdb_xquery::Query;
use xqdb_storage::{sql_compare, SqlType, SqlValue};

use crate::catalog::Catalog;
use crate::durability::{open_durable_catalog, Durability, RecoveryReport};
use crate::eligibility::{
    analyze_filtering, analyze_non_filtering, compile, diagnose, diagnose_misestimate,
    restrict_to_source, AnalysisEnv, Cond, IndexCond, Note, Rejection,
};
use crate::engine::{
    cost_env_enabled, prefilter_env_enabled, record_exec_metrics, render_doctor_section,
    render_execution_sections, twig_env_enabled, ExecStats, PlanCost,
};
use crate::plancache::PlanCache;
use crate::prefilter::{extract_prefilters, SourcePrefilter};
use crate::twig::{extract_twigs, PreparedTwig, SourceTwig};

use super::ast::*;
use super::parser::parse_sql;

/// A runtime SQL value (extends stored values with XML *sequences*, which
/// `XMLQUERY` produces).
#[derive(Debug, Clone)]
pub enum Scalar {
    /// SQL NULL.
    Null,
    /// INTEGER.
    Integer(i64),
    /// DOUBLE / DECIMAL.
    Double(f64),
    /// VARCHAR.
    Varchar(String),
    /// DATE.
    Date(xqdb_xdm::Date),
    /// TIMESTAMP.
    Timestamp(xqdb_xdm::DateTime),
    /// An XML value — an XDM sequence.
    Xml(Sequence),
}

impl Scalar {
    /// Render for display, following the paper's output conventions
    /// (an empty XML sequence prints as `()`).
    pub fn render(&self) -> String {
        match self {
            Scalar::Null => "NULL".into(),
            Scalar::Integer(i) => i.to_string(),
            Scalar::Double(d) => d.to_string(),
            Scalar::Varchar(s) => s.clone(),
            Scalar::Date(d) => d.to_string(),
            Scalar::Timestamp(t) => t.to_string(),
            Scalar::Xml(seq) if seq.is_empty() => "()".into(),
            Scalar::Xml(seq) => xqdb_xmlparse::serialize_sequence(seq),
        }
    }

    fn from_stored(v: &SqlValue) -> Scalar {
        match v {
            SqlValue::Null => Scalar::Null,
            SqlValue::Integer(i) => Scalar::Integer(*i),
            SqlValue::Double(d) => Scalar::Double(*d),
            SqlValue::Varchar(s) => Scalar::Varchar(s.clone()),
            SqlValue::Date(d) => Scalar::Date(*d),
            SqlValue::Timestamp(t) => Scalar::Timestamp(*t),
            SqlValue::Xml(n) => Scalar::Xml(vec![Item::Node(n.clone())]),
        }
    }

    /// Convert to an XDM sequence for a PASSING binding. SQL typed values
    /// become typed atomics (so `$pid` inherits `xs:string` from a VARCHAR
    /// column — the paper's Query 13 note).
    fn to_sequence(&self) -> Result<Sequence, XdmError> {
        Ok(match self {
            Scalar::Null => vec![],
            Scalar::Integer(i) => vec![Item::Atomic(AtomicValue::Integer(*i))],
            Scalar::Double(d) => vec![Item::Atomic(AtomicValue::Double(*d))],
            Scalar::Varchar(s) => vec![Item::Atomic(AtomicValue::String(s.clone()))],
            Scalar::Date(d) => vec![Item::Atomic(AtomicValue::Date(*d))],
            Scalar::Timestamp(t) => vec![Item::Atomic(AtomicValue::DateTime(*t))],
            Scalar::Xml(seq) => seq.clone(),
        })
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Result of executing one SQL statement.
#[derive(Debug, Default)]
pub struct SqlResult {
    /// Column names (empty for DDL).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Scalar>>,
    /// DDL/DML confirmation or EXPLAIN text.
    pub message: Option<String>,
    /// Execution statistics (index effort, rows scanned).
    pub stats: ExecStats,
    /// The query trace (disabled unless the session's [`Obs`] traces).
    pub trace: Trace,
}

impl SqlResult {
    /// Render rows the way the paper prints them (`row 1: ...`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(m) = &self.message {
            out.push_str(m);
            out.push('\n');
        }
        for (i, row) in self.rows.iter().enumerate() {
            let vals: Vec<String> = row.iter().map(Scalar::render).collect();
            out.push_str(&format!("row {}: {}\n", i + 1, vals.join(" | ")));
        }
        out
    }
}

/// A SQL/XML session: a catalog plus statement execution.
#[derive(Debug)]
pub struct SqlSession {
    /// The underlying catalog.
    pub catalog: Catalog,
    /// Limits applied when INSERT parses document text (XMLPARSE).
    pub parse_limits: xqdb_xmlparse::ParseLimits,
    /// Observability handle shared by every statement of the session.
    pub obs: Obs,
    /// Apply the structural pre-filter to row selection (on by default;
    /// `XQDB_PREFILTER=off` in the environment also disables it).
    pub prefilter: bool,
    /// Apply the holistic twig join to row selection (on by default;
    /// `XQDB_TWIG=off` in the environment also disables it).
    pub twig: bool,
    /// Cost index choices against synopsis statistics (on by default;
    /// `XQDB_COST=off` in the environment also disables it). Off, the
    /// planner takes the first eligible index in catalog order.
    pub cost: bool,
    /// The durability layer, when the session is backed by a data
    /// directory (see [`SqlSession::open_durable`]).
    durability: Option<Arc<Durability>>,
    /// LRU cache of parsed + planned SELECT statements, keyed by the raw
    /// statement text plus the cost mode and invalidated by the
    /// catalog's plan epoch (DDL + statistics clocks).
    stmt_cache: Mutex<PlanCache<CachedSql>>,
}

impl Default for SqlSession {
    fn default() -> Self {
        SqlSession {
            catalog: Catalog::default(),
            parse_limits: xqdb_xmlparse::ParseLimits::default(),
            obs: Obs::default(),
            prefilter: true,
            twig: true,
            cost: true,
            durability: None,
            stmt_cache: Mutex::new(PlanCache::default()),
        }
    }
}

/// A cached SELECT-family statement: the parsed AST plus its compiled plan
/// (access paths, notes, pre-filters). A cache hit replays both without
/// touching the parser or the eligibility analyzer.
#[derive(Debug)]
struct CachedSql {
    stmt: SqlStmt,
    plan: Arc<SqlPlan>,
}

impl SqlSession {
    /// Fresh session. In-memory by default; when `XQDB_DATA_DIR` is set in
    /// the environment the session transparently becomes durable in a
    /// unique subdirectory (fsync mode from `XQDB_FSYNC`, default `off` —
    /// the fast mode, fitting the test-harness use this hook exists for).
    /// Any failure to attach falls back to in-memory silently: an env
    /// knob must not break programs that never asked for durability.
    pub fn new() -> Self {
        Self::from_env().unwrap_or_default()
    }

    /// In-memory session over an already-populated catalog (benches and
    /// tools build the catalog directly, then want SQL over it). Never
    /// durable, regardless of environment.
    pub fn from_catalog(catalog: Catalog) -> Self {
        SqlSession { catalog, ..SqlSession::default() }
    }

    fn from_env() -> Option<SqlSession> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let base = std::env::var("XQDB_DATA_DIR").ok()?;
        if base.trim().is_empty() {
            return None;
        }
        let fsync = std::env::var("XQDB_FSYNC")
            .ok()
            .and_then(|s| xqdb_wal::FsyncMode::parse(&s))
            .unwrap_or(xqdb_wal::FsyncMode::Off);
        let dir = Path::new(&base).join(format!(
            "session-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let config = xqdb_wal::WalConfig { fsync, ..Default::default() };
        SqlSession::open_durable(&dir, config).ok().map(|(s, _)| s)
    }

    /// Open a data directory as a durable session: recover whatever state
    /// is there (tables, rows, indexes — the latter rebuilt by back-fill),
    /// then log every further mutation write-ahead. Returns the session
    /// and a report of what recovery found.
    pub fn open_durable(
        dir: &Path,
        config: xqdb_wal::WalConfig,
    ) -> Result<(SqlSession, RecoveryReport), XdmError> {
        let mut session = SqlSession::default();
        let (catalog, durability, report) = open_durable_catalog(
            dir,
            config,
            session.catalog.runtime,
            &session.obs.trace(),
            &session.obs,
        )?;
        session.catalog = catalog;
        session.durability = Some(durability);
        Ok((session, report))
    }

    /// The durability layer, when this session has one.
    pub fn durability(&self) -> Option<&Arc<Durability>> {
        self.durability.as_ref()
    }

    /// Checkpoint a durable session: reclaim tombstones, flush and freeze
    /// pages, write the manifest and prune the log it covers. `Ok(None)`
    /// for in-memory sessions.
    pub fn checkpoint(&mut self) -> Result<Option<u64>, XdmError> {
        match &self.durability {
            Some(d) => Arc::clone(d).checkpoint(&mut self.catalog).map(Some),
            None => Ok(None),
        }
    }

    /// Install one observability handle on the session, its catalog and
    /// its durability layer, so statement execution, index maintenance and
    /// WAL appends record into one registry.
    pub fn set_obs(&mut self, obs: Obs) {
        self.catalog.obs = obs.clone();
        if let Some(d) = &self.durability {
            d.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Execute one SQL statement with no resource limits — the interactive
    /// single-session default.
    pub fn execute(&mut self, sql: &str) -> Result<SqlResult, XdmError> {
        self.execute_with_limits(sql, &xqdb_xdm::Limits::unlimited())
    }

    /// Does this statement mutate the catalog? The server routes writes
    /// through the session's exclusive write path and everything else
    /// through the shared read path, so the classifier is deliberately a
    /// leading-keyword check over the closed statement grammar (`CREATE
    /// TABLE`, `CREATE INDEX`, `INSERT`, `DELETE`, `UPDATE`, and `EXPLAIN
    /// ANALYZE` over a DML statement); anything unrecognized is treated
    /// as a read and rejected by the parser with a typed error.
    pub fn is_write_statement(sql: &str) -> bool {
        let mut words = sql.split_whitespace();
        let first = words.next().unwrap_or("");
        if first.eq_ignore_ascii_case("create")
            || first.eq_ignore_ascii_case("insert")
            || first.eq_ignore_ascii_case("delete")
            || first.eq_ignore_ascii_case("update")
        {
            return true;
        }
        // `EXPLAIN ANALYZE DELETE|UPDATE` executes the DML it reports on.
        first.eq_ignore_ascii_case("explain")
            && words.next().is_some_and(|w| w.eq_ignore_ascii_case("analyze"))
            && words.next().is_some_and(|w| {
                w.eq_ignore_ascii_case("delete") || w.eq_ignore_ascii_case("update")
            })
    }

    /// Execute one SQL statement under the given resource limits. The
    /// limits become the statement's [`xqdb_xdm::Budget`]: a deadline
    /// cancels mid-evaluation at the next budget checkpoint, a step cap
    /// bounds total work.
    pub fn execute_with_limits(
        &mut self,
        sql: &str,
        limits: &xqdb_xdm::Limits,
    ) -> Result<SqlResult, XdmError> {
        if !Self::is_write_statement(sql) {
            return self.execute_read(sql, limits);
        }
        self.obs.incr(Counter::SqlStatements);
        let stmt = parse_sql(sql)
            .map_err(|e| XdmError::new(ErrorCode::XPST0003, e.to_string()))?;
        match stmt {
            SqlStmt::CreateTable { name, columns } => {
                let cols = columns
                    .into_iter()
                    .map(|(n, t)| xqdb_storage::Column::new(n, t))
                    .collect();
                self.catalog.create_table(xqdb_storage::Table::new(&name, cols))?;
                Ok(SqlResult {
                    message: Some(format!("table {name} created")),
                    ..Default::default()
                })
            }
            SqlStmt::CreateIndex { name, table, column, pattern, ty } => {
                self.catalog.create_index(&name, &table, &column, &pattern, &ty)?;
                Ok(SqlResult {
                    message: Some(format!("index {name} created")),
                    ..Default::default()
                })
            }
            SqlStmt::Insert { table, values } => {
                let row = self.eval_insert_row(&table, values)?;
                self.catalog.insert(&table, row)?;
                Ok(SqlResult { message: Some("1 row inserted".into()), ..Default::default() })
            }
            stmt @ (SqlStmt::Delete { .. } | SqlStmt::Update { .. }) => {
                let trace = self.obs.trace();
                self.run_dml(&stmt, limits, &trace)
            }
            SqlStmt::ExplainAnalyzeDml(inner) => {
                let trace = Trace::recording();
                let result = self.run_dml(&inner, limits, &trace)?;
                let mut report = String::from("SQL/XML DML\n");
                report.push_str(&format!("  statement: {}\n", dml_headline(&inner)));
                render_execution_sections(&mut report, &result.stats, &trace);
                // The shared COUNTERS section prints the dml line only when
                // non-zero; a DML report must always carry one.
                let s = &result.stats;
                if s.rows_deleted == 0 && s.docs_replaced == 0 && s.tombstones_reclaimed == 0 {
                    report.push_str(&crate::engine::render_dml_line(s));
                }
                report.push_str(&format!(
                    "-- executed: {}\n",
                    result.message.as_deref().unwrap_or("0 row(s)")
                ));
                Ok(SqlResult { message: Some(report), stats: result.stats, ..Default::default() })
            }
            // is_write_statement admits only the arms above.
            _ => Err(XdmError::internal("write classifier admitted a read statement")),
        }
    }

    /// Execute a DELETE or UPDATE: resolve the WHERE clause over the
    /// target table exactly as a SELECT would (three-valued logic; only
    /// rows where it is TRUE match), then apply the mutation through the
    /// catalog so every derived structure — indexes, synopsis, signatures,
    /// label streams — is maintained incrementally and the change is
    /// logged write-ahead (DELETE batches all matching rows into one WAL
    /// record; UPDATE logs one replace per row).
    fn run_dml(
        &mut self,
        stmt: &SqlStmt,
        limits: &xqdb_xdm::Limits,
        trace: &Trace,
    ) -> Result<SqlResult, XdmError> {
        let budget = Arc::new(xqdb_xdm::Budget::new(limits.clone()));
        let (table, where_cond) = match stmt {
            SqlStmt::Delete { table, where_cond } => (table, where_cond),
            SqlStmt::Update { table, where_cond, .. } => (table, where_cond),
            other => {
                return Err(XdmError::internal(format!("run_dml on non-DML {other:?}")))
            }
        };
        let mut stats = ExecStats::new();
        let matches = self.dml_matching_rows(table, where_cond, &mut stats, trace, &budget)?;
        let message = match stmt {
            SqlStmt::Delete { .. } => {
                let rowids: Vec<u64> = matches.iter().map(|(rid, _)| *rid).collect();
                let mut span = trace.span("delete");
                let n = if rowids.is_empty() {
                    0 // no matches: nothing to log, nothing to apply
                } else {
                    self.catalog.delete(table, &rowids)?
                };
                span.add_count(n);
                stats.rows_deleted = n;
                format!("{n} row(s) deleted")
            }
            SqlStmt::Update { set, .. } => {
                let mut span = trace.span("replace");
                let mut n = 0u64;
                for (rid, old) in &matches {
                    let row = self.eval_update_row(table, set, *rid, old, &budget)?;
                    self.catalog.replace(table, *rid, row)?;
                    n += 1;
                }
                span.add_count(n);
                stats.docs_replaced = n;
                format!("{n} row(s) updated")
            }
            _ => unreachable!(),
        };
        record_exec_metrics(&self.obs, &stats);
        Ok(SqlResult { message: Some(message), stats, trace: trace.clone(), ..Default::default() })
    }

    /// The rows of `table` whose WHERE evaluation is TRUE, as
    /// `(rowid, stored values)` pairs in row order. `None` matches every
    /// live row (SQL semantics of a missing WHERE).
    fn dml_matching_rows(
        &self,
        table: &str,
        where_cond: &Option<SqlCond>,
        stats: &mut ExecStats,
        trace: &Trace,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<Vec<(u64, Vec<SqlValue>)>, XdmError> {
        let t = self.catalog.db.table(table).ok_or_else(|| {
            XdmError::new(ErrorCode::SqlType, format!("unknown table {table:?}"))
        })?;
        let alias = t.name.clone();
        let mut span = trace.span("scan");
        stats.docs_total.insert(t.name.clone(), t.len());
        let mut scanned = 0usize;
        let mut out = Vec::new();
        for item in t.scan() {
            let (rid, values) = item?;
            scanned += 1;
            let pass = match where_cond {
                None => true,
                Some(cond) => {
                    let mut ctx = RowCtx::default();
                    for (ci, col) in t.columns.iter().enumerate() {
                        ctx.values.insert(
                            (alias.clone(), col.name.clone()),
                            Scalar::from_stored(&values[ci]),
                        );
                        ctx.order.push((alias.clone(), col.name.clone()));
                    }
                    self.eval_cond(cond, &ctx, budget)? == Some(true)
                }
            };
            if pass {
                out.push((rid as u64, values));
            }
        }
        stats.docs_evaluated.insert(t.name.clone(), scanned);
        span.add_count(out.len() as u64);
        Ok(out)
    }

    /// Build the replacement row for one UPDATE target: unlisted columns
    /// carry over from the old row, listed columns take their SET
    /// expression evaluated against the *old* row (so `SET a = b` reads
    /// the pre-update value, per SQL). Strings assigned to XML columns are
    /// parsed as documents (XMLPARSE), mirroring INSERT.
    fn eval_update_row(
        &self,
        table: &str,
        set: &[(String, SqlExpr)],
        rowid: u64,
        old: &[SqlValue],
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<Vec<SqlValue>, XdmError> {
        let t = self.catalog.db.table(table).ok_or_else(|| {
            XdmError::new(ErrorCode::SqlType, format!("unknown table {table:?}"))
        })?;
        let alias = t.name.clone();
        let mut ctx = RowCtx::default();
        for (ci, col) in t.columns.iter().enumerate() {
            ctx.values
                .insert((alias.clone(), col.name.clone()), Scalar::from_stored(&old[ci]));
            ctx.order.push((alias.clone(), col.name.clone()));
        }
        let mut row = old.to_vec();
        for (col, expr) in set {
            let upper = col.to_ascii_uppercase();
            let ci = t.column_index(&upper).ok_or_else(|| {
                XdmError::new(
                    ErrorCode::SqlType,
                    format!("UPDATE {}: unknown column {upper} (row {rowid})", t.name),
                )
            })?;
            let ty = &t.columns[ci].ty;
            row[ci] = match (expr, ty) {
                // String literal into an XML column: XMLPARSE, as INSERT.
                (SqlExpr::Varchar(s), SqlType::Xml) => {
                    let doc = xqdb_xmlparse::parse_document_with(s, &self.parse_limits)
                        .map_err(|pe| {
                            let code = if pe.limit_exceeded {
                                ErrorCode::ParseLimit
                            } else {
                                ErrorCode::XPST0003
                            };
                            XdmError::new(code, format!("XMLPARSE: {pe}"))
                        })?;
                    SqlValue::Xml(doc.root())
                }
                (SqlExpr::Varchar(s), SqlType::Date) => {
                    SqlValue::Date(xqdb_xdm::Date::parse(s)?)
                }
                (SqlExpr::Varchar(s), SqlType::Timestamp) => {
                    SqlValue::Timestamp(xqdb_xdm::DateTime::parse(s)?)
                }
                (expr, ty) => {
                    let v = self.eval_expr(expr, &ctx, budget)?;
                    scalar_to_stored(&v, ty)?
                }
            };
        }
        Ok(row)
    }

    /// Execute a read-only (SELECT-family) statement through `&self`: many
    /// server sessions run these concurrently under a shared read lock
    /// while writes serialize through [`SqlSession::execute_with_limits`].
    /// Write statements are rejected with a typed error rather than
    /// executed.
    pub fn execute_read(
        &self,
        sql: &str,
        limits: &xqdb_xdm::Limits,
    ) -> Result<SqlResult, XdmError> {
        self.obs.incr(Counter::SqlStatements);
        let budget = Arc::new(xqdb_xdm::Budget::new(limits.clone()));
        let result = self.execute_read_budgeted(sql, &budget);
        if let Err(e) = &result {
            match e.code {
                ErrorCode::ResourceExhausted => self.obs.incr(Counter::BudgetExhaustions),
                ErrorCode::Cancelled => self.obs.incr(Counter::QueriesCancelled),
                _ => {}
            }
        }
        result
    }

    fn execute_read_budgeted(
        &self,
        sql: &str,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<SqlResult, XdmError> {
        // Statement cache: SELECT-family statements are cached (parsed AST +
        // compiled plan) keyed by the raw statement text plus the cost
        // mode (a costed and a rule-based plan are different plans),
        // invalidated by the catalog's plan epoch (DDL clock +
        // statistics-drift clock). A hit replays the stored plan with
        // zero parse or planning work. The epoch is read from the
        // *shared* catalog, so a DDL — or heavy DML drift — committed by
        // any other session of a server invalidates this session's
        // cached plans on the next lookup.
        let use_cost = self.cost && cost_env_enabled();
        let key: Cow<str> =
            if use_cost { Cow::Borrowed(sql) } else { Cow::Owned(format!("#nocost\n{sql}")) };
        let epoch = self.catalog.plan_epoch();
        let cached = match self.stmt_cache.lock() {
            Ok(mut cache) => cache.get(&key, epoch),
            Err(_) => None,
        };
        if let Some(entry) = cached {
            self.obs.incr(Counter::PlanCacheHits);
            return match &entry.stmt {
                SqlStmt::Select(sel) => {
                    let trace = self.obs.trace();
                    self.run_select_planned(sel, &entry.plan, true, &trace, budget)
                }
                SqlStmt::Explain(_) => Ok(SqlResult {
                    message: Some(render_plan(&entry.plan)),
                    ..Default::default()
                }),
                SqlStmt::ExplainAnalyze(sel) => {
                    let trace = Trace::recording();
                    self.explain_analyze_planned(sel, &entry.plan, true, &trace, budget)
                }
                // Only SELECT-family statements are ever inserted.
                _ => Err(XdmError::internal(
                    "non-SELECT statement in plan cache".to_string(),
                )),
            };
        }
        let stmt = parse_sql(sql)
            .map_err(|e| XdmError::new(ErrorCode::XPST0003, e.to_string()))?;
        match stmt {
            SqlStmt::Values(exprs) => {
                let empty = RowCtx::default();
                let mut row = Vec::new();
                for e in exprs {
                    row.push(self.eval_expr(&e, &empty, budget)?);
                }
                Ok(SqlResult {
                    columns: (1..=row.len()).map(|i| format!("C{i}")).collect(),
                    rows: vec![row],
                    ..Default::default()
                })
            }
            SqlStmt::Select(sel) => {
                self.obs.incr(Counter::PlanCacheMisses);
                let trace = self.obs.trace();
                let plan = self.plan_select_traced(&sel, &trace)?;
                let result = self.run_select_planned(&sel, &plan, false, &trace, budget)?;
                self.cache_stmt(&key, SqlStmt::Select(sel), plan);
                Ok(result)
            }
            SqlStmt::Explain(sel) => {
                self.obs.incr(Counter::PlanCacheMisses);
                let plan = Arc::new(self.plan_select(&sel)?);
                let message = render_plan(&plan);
                self.cache_stmt(&key, SqlStmt::Explain(sel), plan);
                Ok(SqlResult { message: Some(message), ..Default::default() })
            }
            SqlStmt::ExplainAnalyze(sel) => {
                self.obs.incr(Counter::PlanCacheMisses);
                let trace = Trace::recording();
                let plan = self.plan_select_traced(&sel, &trace)?;
                let result = self.explain_analyze_planned(&sel, &plan, false, &trace, budget)?;
                self.cache_stmt(&key, SqlStmt::ExplainAnalyze(sel), plan);
                Ok(result)
            }
            SqlStmt::CreateTable { .. }
            | SqlStmt::CreateIndex { .. }
            | SqlStmt::Insert { .. }
            | SqlStmt::Delete { .. }
            | SqlStmt::Update { .. }
            | SqlStmt::ExplainAnalyzeDml(_) => Err(XdmError::new(
                ErrorCode::SqlType,
                "write statement in a read-only execution context",
            )),
        }
    }

    /// Store a SELECT-family statement in the statement cache under the
    /// current plan epoch (DDL + statistics clocks). `key` is the raw
    /// statement text, prefixed by the caller when cost is off.
    fn cache_stmt(&self, key: &str, stmt: SqlStmt, plan: Arc<SqlPlan>) {
        let epoch = self.catalog.plan_epoch();
        if let Ok(mut cache) = self.stmt_cache.lock() {
            cache.insert(key.to_string(), Arc::new(CachedSql { stmt, plan }), epoch);
        }
    }

    /// `EXPLAIN ANALYZE SELECT ...`: run the statement with tracing forced
    /// on, then report the plan annotated with actual per-stage timings,
    /// the execution counters (verbatim from the run's [`ExecStats`]), and
    /// the query doctor's diagnoses. The result rows are discarded — the
    /// report is the result.
    fn explain_analyze_planned(
        &self,
        sel: &SelectStmt,
        plan: &SqlPlan,
        cache_hit: bool,
        trace: &Trace,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<SqlResult, XdmError> {
        let result = self.run_select_planned(sel, plan, cache_hit, trace, budget)?;
        let mut report = render_plan(plan);
        render_execution_sections(&mut report, &result.stats, trace);
        let mut diagnoses = diagnose(&plan.rejections, &plan.notes);
        if result.stats.plans_costed > 0 {
            diagnoses.extend(diagnose_misestimate(
                result.stats.cost_est_rows,
                result.stats.cost_actual_rows,
            ));
        }
        render_doctor_section(&mut report, &diagnoses);
        report.push_str(&format!("-- executed: {} row(s) produced\n", result.rows.len()));
        Ok(SqlResult { message: Some(report), stats: result.stats, ..Default::default() })
    }

    /// INSERT values: strings targeting XML columns are parsed as XML.
    fn eval_insert_row(
        &self,
        table: &str,
        values: Vec<SqlExpr>,
    ) -> Result<Vec<SqlValue>, XdmError> {
        let t = self.catalog.db.table(table).ok_or_else(|| {
            XdmError::new(ErrorCode::SqlType, format!("unknown table {table:?}"))
        })?;
        let mut out = Vec::with_capacity(values.len());
        for (i, e) in values.into_iter().enumerate() {
            let target = t.columns.get(i).map(|c| &c.ty);
            let v = match (e, target) {
                (SqlExpr::Varchar(s), Some(SqlType::Xml)) => {
                    let doc = xqdb_xmlparse::parse_document_with(&s, &self.parse_limits)
                        .map_err(|pe| {
                            let code = if pe.limit_exceeded {
                                ErrorCode::ParseLimit
                            } else {
                                ErrorCode::XPST0003
                            };
                            XdmError::new(code, format!("XMLPARSE: {pe}"))
                        })?;
                    SqlValue::Xml(doc.root())
                }
                (SqlExpr::Varchar(s), Some(SqlType::Date)) => {
                    SqlValue::Date(xqdb_xdm::Date::parse(&s)?)
                }
                (SqlExpr::Varchar(s), Some(SqlType::Timestamp)) => {
                    SqlValue::Timestamp(xqdb_xdm::DateTime::parse(&s)?)
                }
                (SqlExpr::Varchar(s), _) => SqlValue::Varchar(s),
                (SqlExpr::Integer(i), _) => SqlValue::Integer(i),
                (SqlExpr::Double(d), _) => SqlValue::Double(d),
                (SqlExpr::Null, _) => SqlValue::Null,
                (other, _) => {
                    return Err(XdmError::new(
                        ErrorCode::SqlType,
                        format!("unsupported INSERT expression {other:?}"),
                    ))
                }
            };
            out.push(v);
        }
        Ok(out)
    }

    // ------------------------------------------------------------- planning

    fn plan_select(&self, sel: &SelectStmt) -> Result<SqlPlan, XdmError> {
        let mut plan = SqlPlan::default();
        // Map alias → (table, xml columns).
        for item in &sel.from {
            if let FromItem::Table { name, alias } = item {
                let t = self.catalog.db.table(name).ok_or_else(|| {
                    XdmError::new(ErrorCode::SqlType, format!("unknown table {name:?}"))
                })?;
                plan.tables.insert(alias.clone(), t.name.clone());
            }
        }
        // Analyze XMLEXISTS conjuncts.
        if let Some(cond) = &sel.where_cond {
            let mut conjuncts = Vec::new();
            flatten_and(cond, &mut conjuncts);
            for c in conjuncts {
                if let SqlCond::XmlExists { query, passing } = c {
                    self.plan_xquery_filter(query, passing, &plan.tables.clone(), &mut plan, true);
                }
            }
        }
        // Analyze XMLTABLE row producers and column paths.
        for item in &sel.from {
            if let FromItem::XmlTable { row_query, passing, columns, .. } = item {
                self.plan_xquery_filter(
                    row_query,
                    passing,
                    &plan.tables.clone(),
                    &mut plan,
                    true,
                );
                let env = self.passing_env(passing, &plan.tables);
                let row_ctx =
                    crate::eligibility::resolve_docs_path(&row_query.body, &env);
                for col in columns {
                    let analysis = crate::eligibility::analyze_non_filtering_with_ctx(
                        &col.path.body,
                        &env,
                        "XMLTABLE column expression",
                        row_ctx.clone(),
                    );
                    plan.notes.extend(analysis.notes);
                }
            }
        }
        // Scavenge XMLQUERY select-list items for diagnostics.
        for item in &sel.items {
            if let SelectItem::Expr { expr: SqlExpr::XmlQuery { query, passing }, .. } = item {
                let env = self.passing_env(passing, &plan.tables);
                let analysis =
                    analyze_non_filtering(&query.body, &env, "XMLQUERY select list");
                plan.notes.extend(analysis.notes);
            }
        }
        // Compile per-source access conditions, costed against the table's
        // synopsis statistics when the session (and environment) allow it.
        // Sources are visited in sorted order so cost notes and candidate
        // tallies are deterministic across runs.
        let use_cost = self.cost && cost_env_enabled();
        let mut all_conds: Vec<_> = plan.conds.clone().into_iter().collect();
        all_conds.sort_by(|a, b| a.0.cmp(&b.0));
        for (source, conds) in all_conds {
            let cond = Cond::And(conds);
            let restricted = restrict_to_source(&cond, &source);
            let indexes = self.catalog.indexes_for_source(&source);
            let model = if use_cost { self.catalog.cost_model_for(&source) } else { None };
            let compiled = compile(&restricted, &indexes, model.as_ref());
            plan.rejections.extend(compiled.rejections);
            if compiled.candidates_costed > 0 {
                plan.cost.costed = true;
                plan.cost.candidates += compiled.candidates_costed;
            }
            if let Some(est) = compiled.est_rows {
                *plan.cost.est_rows.get_or_insert(0) += est;
            }
            plan.cost.notes.extend(compiled.cost_notes);
            if let Some(access) = compiled.access {
                plan.accesses.insert(source, access);
            }
        }
        Ok(plan)
    }

    /// Build an analysis env for a PASSING clause: variables bound to a
    /// table's XML column become document sources.
    fn passing_env(
        &self,
        passing: &[(String, SqlExpr)],
        tables: &HashMap<String, String>,
    ) -> AnalysisEnv {
        let mut env = AnalysisEnv::new();
        for (var, expr) in passing {
            if let SqlExpr::Column { qualifier, name } = expr {
                let table = match qualifier {
                    Some(q) => tables.get(q).cloned(),
                    None => {
                        // Unqualified: unique table holding that column.
                        let mut found = None;
                        for t in tables.values() {
                            if let Some(tt) = self.catalog.db.table(t) {
                                if tt.column_index(name).is_some() {
                                    found = Some(t.clone());
                                    break;
                                }
                            }
                        }
                        found
                    }
                };
                if let Some(tname) = table {
                    env.bind_docs(
                        ExpandedName::local(var.as_str()),
                        format!("{}.{}", tname, name.to_ascii_uppercase()),
                    );
                }
            }
        }
        env
    }

    fn plan_xquery_filter(
        &self,
        query: &Query,
        passing: &[(String, SqlExpr)],
        tables: &HashMap<String, String>,
        plan: &mut SqlPlan,
        filtering: bool,
    ) {
        let env = self.passing_env(passing, tables);
        let analysis = if filtering {
            analyze_filtering(&query.body, &env)
        } else {
            analyze_non_filtering(&query.body, &env, "non-filtering")
        };
        plan.notes.extend(analysis.notes);
        if filtering {
            // Structural pre-filter requirements for this conjunct.
            // `db2-fn:xmlcolumn` is NOT recognized here: inside XMLEXISTS it
            // ranges over the whole collection, not the candidate row, so
            // only PASSING-variable uses may narrow the row set.
            for (source, pf) in extract_prefilters(&query.body, &env, false) {
                plan.prefilters.entry(source).or_default().push(pf);
            }
            // Twig patterns for this conjunct, same PASSING-variable-only
            // recognition: a row must satisfy every filtering conjunct, so
            // per source the conjuncts' twigs are AND'd at execution.
            for (source, tw) in extract_twigs(&query.body, &env, false) {
                plan.twigs.entry(source).or_default().push(tw);
            }
        }
        // Attribute conditions to their sources.
        let mut sources = BTreeSet::new();
        collect_cond_sources(&analysis.cond, &mut sources);
        // Also sources referenced directly via db2-fn:xmlcolumn.
        crate::engine::collect_sources(&query.body, &mut sources);
        for s in sources {
            plan.conds.entry(s).or_default().push(analysis.cond.clone());
        }
    }

    // ------------------------------------------------------------ execution

    /// Compile a SELECT under a "plan" span.
    fn plan_select_traced(
        &self,
        sel: &SelectStmt,
        trace: &Trace,
    ) -> Result<Arc<SqlPlan>, XdmError> {
        let mut span = trace.span("plan");
        let plan = self.plan_select(sel)?;
        span.add_count(plan.accesses.len() as u64);
        Ok(Arc::new(plan))
    }

    /// Execute a SELECT against an already-compiled plan. `cache_hit`
    /// records whether the plan came from the statement cache (the matching
    /// counter was incremented by the caller).
    fn run_select_planned(
        &self,
        sel: &SelectStmt,
        plan: &SqlPlan,
        cache_hit: bool,
        trace: &Trace,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<SqlResult, XdmError> {
        let mut stats = ExecStats::new();
        stats.plan_cache_hits = u64::from(cache_hit);
        stats.plan_cache_misses = u64::from(!cache_hit);
        if plan.cost.costed {
            stats.plans_costed = 1;
            stats.index_candidates_costed = plan.cost.candidates;
            stats.cost_est_rows = plan.cost.est_rows.unwrap_or(0);
        }
        // Resolve per-table row filters from compiled accesses. Iterate in
        // source order so spans and degradations are deterministic.
        let mut row_filters: HashMap<String, BTreeSet<u64>> = HashMap::new();
        let mut sources: Vec<_> = plan.accesses.iter().collect();
        sources.sort_by_key(|(s, _)| s.as_str());
        for (source, access) in sources {
            let mut span = trace.span("index probe");
            span.tag_with("source", || source.clone());
            let indexes = self.catalog.indexes_for_source(source);
            let mut pstats = ProbeStats::default();
            let t0 = self.obs.metrics_enabled().then(Instant::now);
            let probed = access.execute(&indexes, &mut pstats, budget);
            if let Some(t0) = t0 {
                self.obs.observe_ns(Histogram::ProbeNanos, elapsed_ns(t0));
            }
            stats.index_entries_scanned += pstats.entries_scanned;
            stats.index_probes += pstats.probes;
            stats.btree_nodes_touched += pstats.nodes_touched;
            stats.multi_index_intersections += pstats.intersections as u64;
            span.add_count(pstats.entries_scanned as u64);
            let rows = match probed {
                Ok(rows) => rows,
                Err(e) if e.code == xqdb_xdm::ErrorCode::StorageFault => {
                    // Degrade to an unfiltered scan of this source (correct
                    // by Definition 1); record it for observability.
                    span.tag_str("outcome", "degraded to scan");
                    stats.index_faults += 1;
                    stats.degraded_sources.push(source.clone());
                    continue;
                }
                Err(e) => return Err(e),
            };
            span.tag_str("outcome", "index hit");
            span.tag_with("survivors", || rows.len().to_string());
            stats.cost_actual_rows += rows.len() as u64;
            let table = source.split('.').next().unwrap_or("").to_string();
            // Intersect if several XML columns of one table are filtered.
            row_filters
                .entry(table)
                .and_modify(|r| *r = r.intersection(&rows).copied().collect())
                .or_insert(rows);
        }

        // Holistic twig join: drop rows no conjunct's twig patterns can
        // structurally match (conservative per Definition 1 — survivors
        // are still re-checked by the WHERE phase). Runs strictly after
        // the index-probe loop, before the signature pre-filter; label
        // streams live in RAM, so the pass adds no fault points. Tables
        // whose labels cannot vouch for every row are declined untouched.
        if self.twig && twig_env_enabled() {
            let mut tw_sources: Vec<_> = plan.twigs.keys().collect();
            tw_sources.sort();
            for source in tw_sources {
                let tws = &plan.twigs[source];
                if tws.is_empty() {
                    continue;
                }
                let Some(t) = source
                    .split('.')
                    .next()
                    .and_then(|name| self.catalog.db.table(name))
                else {
                    continue;
                };
                let table = t.name.clone();
                let mut span = trace.span("twig join");
                span.tag_with("source", || source.clone());
                let prepared: Vec<PreparedTwig<'_>> = match tws
                    .iter()
                    .map(|tw| PreparedTwig::prepare(tw, t))
                    .collect::<Option<Vec<_>>>()
                {
                    Some(p) => p,
                    None => {
                        span.tag_str("outcome", "declined: labels incomplete");
                        continue;
                    }
                };
                let mut skipped = 0usize;
                let mut candidates = 0usize;
                // Each filtering conjunct must hold, so a row survives
                // only if every conjunct's twig matches it.
                let mut keep = |rid: u64| {
                    let candidate = prepared.iter().all(|p| p.is_candidate(rid));
                    candidates += usize::from(candidate);
                    let ok = candidate && prepared.iter().all(|p| p.accepts(rid));
                    skipped += usize::from(!ok);
                    ok
                };
                let survivors: BTreeSet<u64> = match row_filters.get(&table) {
                    Some(rows) => rows.iter().copied().filter(|r| keep(*r)).collect(),
                    None => (0..t.len() as u64).filter(|r| keep(*r)).collect(),
                };
                span.add_count(skipped as u64);
                span.tag_with("candidates", || candidates.to_string());
                span.tag_with("survivors", || survivors.len().to_string());
                stats.twig_joins += 1;
                stats.twig_candidates += candidates;
                stats.twig_docs_skipped += skipped;
                row_filters.insert(table, survivors);
            }
        }

        // Structural pre-filter: drop rows whose path signature cannot
        // satisfy some filtering conjunct (conservative per Definition 1 —
        // false positives only, so survivors are still re-checked by the
        // WHERE phase). Runs strictly after the index-probe loop so probe
        // spans and fault degradations are unchanged by the filter.
        if self.prefilter && prefilter_env_enabled() {
            let mut pf_sources: Vec<_> = plan.prefilters.keys().collect();
            pf_sources.sort();
            for source in pf_sources {
                let pfs = &plan.prefilters[source];
                if pfs.is_empty() {
                    continue;
                }
                let Some(t) = source
                    .split('.')
                    .next()
                    .and_then(|name| self.catalog.db.table(name))
                else {
                    continue;
                };
                let table = t.name.clone();
                let mut span = trace.span("prefilter");
                span.tag_with("source", || source.clone());
                let mut skipped = 0usize;
                // Each filtering conjunct must hold, so a row survives only
                // if its signature satisfies every conjunct's pre-filter.
                // Rows without a signature (no XML cell) are kept: the
                // residual WHERE decides them, never the pre-filter.
                let mut keep = |rid: u64| {
                    let ok = t
                        .signature(rid as usize)
                        .is_none_or(|sig| pfs.iter().all(|pf| pf.accepts(sig)));
                    if !ok {
                        skipped += 1;
                    }
                    ok
                };
                let survivors: BTreeSet<u64> = match row_filters.get(&table) {
                    Some(rows) => rows.iter().copied().filter(|r| keep(*r)).collect(),
                    None => (0..t.len() as u64).filter(|r| keep(*r)).collect(),
                };
                span.add_count(skipped as u64);
                span.tag_with("survivors", || survivors.len().to_string());
                stats.prefilter_docs_skipped += skipped;
                row_filters.insert(table, survivors);
            }
        }

        let mut scan_span = trace.span("scan");
        // Build the row stream via nested loops.
        let mut rows: Vec<RowCtx> = vec![RowCtx::default()];
        for item in &sel.from {
            let mut next = Vec::new();
            match item {
                FromItem::Table { name, alias } => {
                    let t = self.catalog.db.table(name).ok_or_else(|| {
                        XdmError::new(ErrorCode::SqlType, format!("unknown table {name:?}"))
                    })?;
                    let filter = row_filters.get(&t.name);
                    stats.docs_total.insert(t.name.clone(), t.len());
                    let mut scanned = 0usize;
                    for item in t.scan() {
                        let (rid, values) = item?;
                        if let Some(f) = filter {
                            if !f.contains(&(rid as u64)) {
                                continue;
                            }
                        }
                        scanned += 1;
                        for base in &rows {
                            let mut ctx = base.clone();
                            for (ci, col) in t.columns.iter().enumerate() {
                                ctx.values.insert(
                                    (alias.clone(), col.name.clone()),
                                    Scalar::from_stored(&values[ci]),
                                );
                                ctx.order.push((alias.clone(), col.name.clone()));
                            }
                            next.push(ctx);
                        }
                    }
                    stats.docs_evaluated.insert(t.name.clone(), scanned);
                }
                FromItem::XmlTable { row_query, passing, columns, alias, column_aliases } => {
                    for base in &rows {
                        let produced = self.expand_xmltable(
                            row_query,
                            passing,
                            columns,
                            alias,
                            column_aliases,
                            base,
                            budget,
                        )?;
                        next.extend(produced);
                    }
                }
            }
            rows = next;
        }

        // WHERE. Row conditions are independent of one another, so with a
        // pool configured the predicate phase (each row runs its XMLEXISTS
        // residuals) evaluates in row chunks across workers; the kept set
        // is rebuilt in row order, identical to the serial loop.
        let threads = self.catalog.runtime.effective_threads();
        let kept = match &sel.where_cond {
            Some(cond) if threads > 1 && rows.len() > 1 => {
                let pool = WorkerPool::new(threads);
                let ranges = chunk_ranges(rows.len(), pool.default_chunks(rows.len()));
                let rows_ref = &rows;
                let parent = scan_span.id();
                let task = |i: usize| {
                    let mut out = Vec::with_capacity(ranges[i].len());
                    for ctx in &rows_ref[ranges[i].clone()] {
                        out.push(self.eval_cond(cond, ctx, budget)? == Some(true));
                    }
                    Ok::<_, XdmError>(out)
                };
                let flags = if trace.enabled() {
                    pool.try_run_observed(ranges.len(), task, |t| {
                        trace.record_finished(
                            parent,
                            "worker task",
                            t.started,
                            t.nanos,
                            0,
                            vec![
                                ("worker", t.worker.to_string()),
                                ("task", t.task.to_string()),
                            ],
                        );
                    })?
                } else {
                    pool.try_run(ranges.len(), task)?
                };
                stats.parallel_workers = pool.threads();
                stats.parallel_shards = ranges.len();
                let mut pass = flags.into_iter().flatten();
                rows.into_iter().filter(|_| pass.next() == Some(true)).collect()
            }
            _ => {
                let mut kept = Vec::new();
                for ctx in rows {
                    let pass = match &sel.where_cond {
                        None => true,
                        Some(c) => self.eval_cond(c, &ctx, budget)? == Some(true),
                    };
                    if pass {
                        kept.push(ctx);
                    }
                }
                kept
            }
        };
        scan_span.add_count(kept.len() as u64);
        drop(scan_span);

        // Projection.
        let mut project_span = trace.span("serialize");
        let mut columns = Vec::new();
        let mut out_rows = Vec::new();
        for (ri, ctx) in kept.iter().enumerate() {
            let mut row = Vec::new();
            for (ii, item) in sel.items.iter().enumerate() {
                match item {
                    SelectItem::Star => {
                        for key in &ctx.order {
                            if ri == 0 {
                                columns.push(key.1.clone());
                            }
                            row.push(
                                ctx.values
                                    .get(key)
                                    .cloned()
                                    .unwrap_or(Scalar::Null),
                            );
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        if ri == 0 {
                            columns.push(alias.clone().unwrap_or_else(|| default_name(expr, ii)));
                        }
                        row.push(self.eval_expr(expr, ctx, budget)?);
                    }
                }
            }
            out_rows.push(row);
        }
        if kept.is_empty() {
            // Still produce column headers.
            for (ii, item) in sel.items.iter().enumerate() {
                match item {
                    SelectItem::Star => {}
                    SelectItem::Expr { expr, alias } => {
                        columns.push(alias.clone().unwrap_or_else(|| default_name(expr, ii)));
                    }
                }
            }
        }
        project_span.add_count(out_rows.len() as u64);
        drop(project_span);
        record_exec_metrics(&self.obs, &stats);
        Ok(SqlResult { columns, rows: out_rows, message: None, stats, trace: trace.clone() })
    }

    #[allow(clippy::too_many_arguments)]
    fn expand_xmltable(
        &self,
        row_query: &Query,
        passing: &[(String, SqlExpr)],
        columns: &[XmlTableColumn],
        alias: &str,
        column_aliases: &[String],
        base: &RowCtx,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<Vec<RowCtx>, XdmError> {
        let ctx = self.passing_context(passing, base, budget)?;
        let items = eval_query(row_query, &self.catalog.db, &ctx)?;
        let mut out = Vec::new();
        for item in items {
            let mut row = base.clone();
            for (ci, col) in columns.iter().enumerate() {
                let cname = column_aliases
                    .get(ci)
                    .cloned()
                    .unwrap_or_else(|| col.name.clone());
                let col_ctx = DynamicContext::with_variables(HashMap::new())
                    .with_budget(budget.clone())
                    .with_focus(item.clone(), 1, 1);
                let seq = eval_query(&col.path, &self.catalog.db, &col_ctx)?;
                let value = match &col.ty {
                    None => Scalar::Xml(seq),
                    Some(ty) => {
                        // Column expressions NULL on empty (Section 3.2:
                        // "the result value of the corresponding column is
                        // the NULL value").
                        if seq.is_empty() {
                            Scalar::Null
                        } else {
                            sequence_to_scalar(&seq, ty)?
                        }
                    }
                };
                row.values.insert((alias.to_string(), cname.clone()), value);
                row.order.push((alias.to_string(), cname));
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Evaluate the PASSING clause into a dynamic context carrying the
    /// statement's budget, so embedded XQuery evaluation observes the
    /// deadline, step cap, and cancellation token.
    fn passing_context(
        &self,
        passing: &[(String, SqlExpr)],
        row: &RowCtx,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<DynamicContext, XdmError> {
        let mut vars = HashMap::new();
        for (name, expr) in passing {
            let v = self.eval_expr(expr, row, budget)?;
            vars.insert(ExpandedName::local(name.as_str()), v.to_sequence()?);
        }
        Ok(DynamicContext::with_variables(vars).with_budget(budget.clone()))
    }

    fn eval_expr(
        &self,
        expr: &SqlExpr,
        row: &RowCtx,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<Scalar, XdmError> {
        match expr {
            SqlExpr::Integer(i) => Ok(Scalar::Integer(*i)),
            SqlExpr::Double(d) => Ok(Scalar::Double(*d)),
            SqlExpr::Varchar(s) => Ok(Scalar::Varchar(s.clone())),
            SqlExpr::Null => Ok(Scalar::Null),
            SqlExpr::Column { qualifier, name } => row.lookup(qualifier.as_deref(), name),
            SqlExpr::XmlQuery { query, passing } => {
                let ctx = self.passing_context(passing, row, budget)?;
                let seq = eval_query(query, &self.catalog.db, &ctx)?;
                Ok(Scalar::Xml(seq))
            }
            SqlExpr::XmlCast { expr, ty } => {
                let v = self.eval_expr(expr, row, budget)?;
                xmlcast(&v, ty)
            }
        }
    }

    /// Three-valued condition evaluation (`None` = UNKNOWN). Each row
    /// condition ticks the statement budget so a deadline interrupts even
    /// pure-SQL scans that never enter XQuery evaluation.
    fn eval_cond(
        &self,
        cond: &SqlCond,
        row: &RowCtx,
        budget: &Arc<xqdb_xdm::Budget>,
    ) -> Result<Option<bool>, XdmError> {
        budget.tick()?;
        match cond {
            SqlCond::Cmp(op, a, b) => {
                let l = self.eval_expr(a, row, budget)?;
                let r = self.eval_expr(b, row, budget)?;
                let ord = sql_compare(&to_stored_for_cmp(&l)?, &to_stored_for_cmp(&r)?)?;
                Ok(ord.map(|o| op.test(Some(o))))
            }
            SqlCond::XmlExists { query, passing } => {
                let ctx = self.passing_context(passing, row, budget)?;
                let seq = eval_query(query, &self.catalog.db, &ctx)?;
                // XMLEXISTS is a pure non-emptiness test — NOT the EBV.
                // `false()` is a non-empty sequence, so it passes (Query 9).
                Ok(Some(!seq.is_empty()))
            }
            SqlCond::And(a, b) => {
                let l = self.eval_cond(a, row, budget)?;
                if l == Some(false) {
                    return Ok(Some(false));
                }
                let r = self.eval_cond(b, row, budget)?;
                Ok(match (l, r) {
                    (Some(true), Some(true)) => Some(true),
                    (_, Some(false)) => Some(false),
                    _ => None,
                })
            }
            SqlCond::Or(a, b) => {
                let l = self.eval_cond(a, row, budget)?;
                if l == Some(true) {
                    return Ok(Some(true));
                }
                let r = self.eval_cond(b, row, budget)?;
                Ok(match (l, r) {
                    (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                })
            }
            SqlCond::Not(c) => Ok(self.eval_cond(c, row, budget)?.map(|b| !b)),
        }
    }
}

/// One row of the in-flight join: (alias, column) → value.
#[derive(Debug, Clone, Default)]
struct RowCtx {
    values: HashMap<(String, String), Scalar>,
    order: Vec<(String, String)>,
}

impl RowCtx {
    fn lookup(&self, qualifier: Option<&str>, name: &str) -> Result<Scalar, XdmError> {
        let name = name.to_ascii_uppercase();
        match qualifier {
            Some(q) => {
                let q = q.to_ascii_uppercase();
                self.values
                    .get(&(q.clone(), name.clone()))
                    .cloned()
                    .ok_or_else(|| {
                        XdmError::new(
                            ErrorCode::SqlType,
                            format!("unknown column {q}.{name}"),
                        )
                    })
            }
            None => {
                let mut found = None;
                for ((_, n), v) in &self.values {
                    if *n == name {
                        if found.is_some() {
                            return Err(XdmError::new(
                                ErrorCode::SqlType,
                                format!("ambiguous column {name}"),
                            ));
                        }
                        found = Some(v.clone());
                    }
                }
                found.ok_or_else(|| {
                    XdmError::new(ErrorCode::SqlType, format!("unknown column {name}"))
                })
            }
        }
    }
}

/// The planned access paths and diagnostics of a SELECT.
#[derive(Debug, Default)]
pub struct SqlPlan {
    /// alias → table name.
    pub tables: HashMap<String, String>,
    /// Source → extracted conditions (one per filtering XQuery).
    pub conds: HashMap<String, Vec<Cond>>,
    /// Compiled access per source.
    pub accesses: HashMap<String, IndexCond>,
    /// Analyzer notes.
    pub notes: Vec<Note>,
    /// Rejected candidates.
    pub rejections: Vec<Rejection>,
    /// Structural pre-filter per source, one entry per filtering conjunct
    /// (all must hold for a row to survive).
    pub prefilters: HashMap<String, Vec<SourcePrefilter>>,
    /// Twig patterns per source, one entry per filtering conjunct (all
    /// must hold for a row to survive). Resolved against the table's
    /// synopsis at execution time, so cached plans stay valid as
    /// collections grow.
    pub twigs: HashMap<String, Vec<SourceTwig>>,
    /// Cost decisions made while compiling accesses (candidates scored,
    /// estimated rows, human-readable choice notes).
    pub cost: PlanCost,
}

/// Render the EXPLAIN output.
pub fn render_plan(plan: &SqlPlan) -> String {
    let mut out = String::from("SQL/XML PLAN\n");
    let mut aliases: Vec<_> = plan.tables.iter().collect();
    aliases.sort();
    for (alias, table) in aliases {
        // Find accesses on this table's sources.
        let mut printed = false;
        let mut sources: Vec<_> = plan.accesses.iter().collect();
        sources.sort_by_key(|(s, _)| s.as_str());
        for (source, access) in sources {
            if source.starts_with(&format!("{table}.")) {
                out.push_str(&format!(
                    "  table {table} (alias {alias}): INDEX {}\n",
                    access.render()
                ));
                printed = true;
            }
        }
        if !printed {
            out.push_str(&format!("  table {table} (alias {alias}): TABLE SCAN\n"));
        }
    }
    if !plan.cost.notes.is_empty() {
        out.push_str("  cost decisions:\n");
        for n in &plan.cost.notes {
            out.push_str(&format!("    - {n}\n"));
        }
    }
    if !plan.prefilters.is_empty() {
        out.push_str("  structural prefilter:\n");
        let mut sources: Vec<_> = plan.prefilters.iter().collect();
        sources.sort_by_key(|(s, _)| s.as_str());
        for (source, pfs) in sources {
            let reqs: Vec<String> = pfs.iter().map(|pf| pf.render()).collect();
            out.push_str(&format!("    - {source}: requires {}\n", reqs.join(" AND ")));
        }
    }
    if !plan.twigs.is_empty() {
        out.push_str("  twig join:\n");
        let mut sources: Vec<_> = plan.twigs.iter().collect();
        sources.sort_by_key(|(s, _)| s.as_str());
        for (source, tws) in sources {
            let reqs: Vec<String> = tws.iter().map(SourceTwig::render).collect();
            out.push_str(&format!("    - {source}: matches {}\n", reqs.join(" AND ")));
        }
    }
    if !plan.notes.is_empty() {
        out.push_str("  notes:\n");
        for n in &plan.notes {
            out.push_str(&format!("    - {n}\n"));
        }
    }
    if !plan.rejections.is_empty() {
        out.push_str("  rejected candidates:\n");
        for r in &plan.rejections {
            out.push_str(&format!("    - {}\n", r.candidate));
            for reason in &r.reasons {
                out.push_str(&format!("        {reason}\n"));
            }
        }
    }
    out
}

fn elapsed_ns(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn default_name(expr: &SqlExpr, i: usize) -> String {
    match expr {
        SqlExpr::Column { name, .. } => name.clone(),
        SqlExpr::XmlQuery { .. } => format!("XMLQUERY_{}", i + 1),
        SqlExpr::XmlCast { .. } => format!("XMLCAST_{}", i + 1),
        _ => format!("C{}", i + 1),
    }
}

fn flatten_and<'a>(cond: &'a SqlCond, out: &mut Vec<&'a SqlCond>) {
    match cond {
        SqlCond::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

fn collect_cond_sources(cond: &Cond, out: &mut BTreeSet<String>) {
    match cond {
        Cond::Any => {}
        Cond::Pred(c) => {
            out.insert(c.source.clone());
        }
        Cond::Exists { source, .. } => {
            out.insert(source.clone());
        }
        Cond::And(cs) | Cond::Or(cs) => {
            for c in cs {
                collect_cond_sources(c, out);
            }
        }
    }
}

/// `XMLCAST`: singleton enforcement and SQL-typed conversion — the Query 14
/// failure modes (cardinality and VARCHAR length) live here.
pub fn xmlcast(v: &Scalar, ty: &SqlType) -> Result<Scalar, XdmError> {
    let seq = match v {
        Scalar::Xml(seq) => seq.clone(),
        // Casting a non-XML scalar: route through its sequence form.
        other => other.to_sequence()?,
    };
    if seq.is_empty() {
        return Ok(Scalar::Null);
    }
    if seq.len() > 1 {
        return Err(XdmError::new(
            ErrorCode::SqlCardinality,
            format!("XMLCAST requires a singleton sequence, got {} items", seq.len()),
        ));
    }
    let atom = seq[0].atomize()?;
    match ty {
        SqlType::Integer => match cast::cast(&atom, AtomicType::Integer)? {
            AtomicValue::Integer(i) => Ok(Scalar::Integer(i)),
            other => Err(XdmError::internal(format!("integer cast yielded {other:?}"))),
        },
        SqlType::Double | SqlType::Decimal(..) => match cast::cast(&atom, AtomicType::Double)? {
            AtomicValue::Double(d) => Ok(Scalar::Double(d)),
            other => Err(XdmError::internal(format!("double cast yielded {other:?}"))),
        },
        SqlType::Varchar(n) => {
            let s = atom.lexical();
            if s.chars().count() > *n {
                return Err(XdmError::new(
                    ErrorCode::SqlLength,
                    format!("XMLCAST value of length {} exceeds VARCHAR({n})", s.chars().count()),
                ));
            }
            Ok(Scalar::Varchar(s))
        }
        SqlType::Date => match cast::cast(&atom, AtomicType::Date)? {
            AtomicValue::Date(d) => Ok(Scalar::Date(d)),
            other => Err(XdmError::internal(format!("date cast yielded {other:?}"))),
        },
        SqlType::Timestamp => match cast::cast(&atom, AtomicType::DateTime)? {
            AtomicValue::DateTime(t) => Ok(Scalar::Timestamp(t)),
            other => Err(XdmError::internal(format!("dateTime cast yielded {other:?}"))),
        },
        SqlType::Xml => Ok(Scalar::Xml(seq)),
    }
}

/// Convert a column XDM sequence to a scalar of the declared type
/// (XMLTABLE column semantics: caller handles the empty case).
fn sequence_to_scalar(seq: &Sequence, ty: &SqlType) -> Result<Scalar, XdmError> {
    xmlcast(&Scalar::Xml(seq.clone()), ty)
}

/// The one-line description of a DML statement for its EXPLAIN ANALYZE
/// report header.
fn dml_headline(stmt: &SqlStmt) -> String {
    match stmt {
        SqlStmt::Delete { table, where_cond } => format!(
            "DELETE FROM {table}{}",
            if where_cond.is_some() { " WHERE ..." } else { "" }
        ),
        SqlStmt::Update { table, set, where_cond } => {
            let cols: Vec<&str> = set.iter().map(|(c, _)| c.as_str()).collect();
            format!(
                "UPDATE {table} SET {}{}",
                cols.join(", "),
                if where_cond.is_some() { " WHERE ..." } else { "" }
            )
        }
        other => format!("{other:?}"),
    }
}

/// Convert a runtime scalar into a stored value for an UPDATE assignment
/// targeting a column of type `ty`. XML columns accept a singleton node
/// sequence (an XMLQUERY result); everything else stores its natural
/// stored form, with NULL always allowed.
fn scalar_to_stored(v: &Scalar, ty: &SqlType) -> Result<SqlValue, XdmError> {
    match (v, ty) {
        (Scalar::Null, _) => Ok(SqlValue::Null),
        (Scalar::Xml(seq), SqlType::Xml) => match seq.as_slice() {
            [Item::Node(n)] => Ok(SqlValue::Xml(n.clone())),
            _ => Err(XdmError::new(
                ErrorCode::SqlCardinality,
                format!(
                    "UPDATE of an XML column requires a single node, got {} item(s)",
                    seq.len()
                ),
            )),
        },
        (Scalar::Xml(_), _) => Err(XdmError::new(
            ErrorCode::SqlType,
            "XML value assigned to a non-XML column; use XMLCAST",
        )),
        (other, _) => to_stored_for_cmp(other),
    }
}

/// Convert a runtime scalar into a stored value for SQL comparison; XML
/// values are rejected (Section 3.3: use XMLCAST).
fn to_stored_for_cmp(v: &Scalar) -> Result<SqlValue, XdmError> {
    Ok(match v {
        Scalar::Null => SqlValue::Null,
        Scalar::Integer(i) => SqlValue::Integer(*i),
        Scalar::Double(d) => SqlValue::Double(*d),
        Scalar::Varchar(s) => SqlValue::Varchar(s.clone()),
        Scalar::Date(d) => SqlValue::Date(*d),
        Scalar::Timestamp(t) => SqlValue::Timestamp(*t),
        Scalar::Xml(_) => {
            return Err(XdmError::new(
                ErrorCode::SqlType,
                "XML values cannot be compared with SQL operators; use XMLCAST \
                 or move the comparison into XQuery (Tip 6)",
            ))
        }
    })
}
