//! SQL/XML abstract syntax.

use xqdb_xdm::compare::CompareOp;
use xqdb_xquery::Query;
use xqdb_storage::SqlType;

/// A SQL statement.
#[derive(Debug, Clone)]
pub enum SqlStmt {
    /// `CREATE TABLE name (col type, ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, SqlType)>,
    },
    /// `CREATE INDEX name ON table(column) USING XMLPATTERN '...' AS type`
    CreateIndex {
        /// Index name.
        name: String,
        /// Table.
        table: String,
        /// XML column.
        column: String,
        /// Pattern source text.
        pattern: String,
        /// Index type keyword.
        ty: String,
    },
    /// `INSERT INTO table VALUES (...)`
    Insert {
        /// Target table.
        table: String,
        /// Row values.
        values: Vec<SqlExpr>,
    },
    /// `DELETE FROM table [WHERE cond]` — row deletion. The WHERE clause
    /// is evaluated over the table exactly as a SELECT's would be; every
    /// matching row is removed in one statement (one WAL record).
    Delete {
        /// Target table.
        table: String,
        /// WHERE condition (`None` deletes every row).
        where_cond: Option<SqlCond>,
    },
    /// `UPDATE table SET col = expr, ... [WHERE cond]` — document REPLACE.
    /// Each matching row keeps its rowid; listed columns take their new
    /// values, unlisted columns carry over.
    Update {
        /// Target table.
        table: String,
        /// `SET` assignments in source order.
        set: Vec<(String, SqlExpr)>,
        /// WHERE condition (`None` updates every row).
        where_cond: Option<SqlCond>,
    },
    /// `SELECT ...`
    Select(SelectStmt),
    /// `VALUES (expr, ...)` — single-row values statement (Query 6).
    Values(Vec<SqlExpr>),
    /// `EXPLAIN SELECT ...`
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE SELECT ...` — execute, then report the plan with
    /// actual timings, counters and doctor diagnoses.
    ExplainAnalyze(SelectStmt),
    /// `EXPLAIN ANALYZE DELETE|UPDATE ...` — execute the DML, then report
    /// what it did (rows touched, derived-state maintenance counters).
    ExplainAnalyzeDml(Box<SqlStmt>),
}

/// A `SELECT` statement.
#[derive(Debug, Clone)]
pub struct SelectStmt {
    /// Select list.
    pub items: Vec<SelectItem>,
    /// FROM items, in order (later items may reference earlier aliases —
    /// the implied lateral join of `XMLTABLE`).
    pub from: Vec<FromItem>,
    /// WHERE condition.
    pub where_cond: Option<SqlCond>,
}

/// One select-list entry.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with optional alias.
    Expr {
        /// The expression.
        expr: SqlExpr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// One FROM item.
#[derive(Debug, Clone)]
pub enum FromItem {
    /// A base table with alias.
    Table {
        /// Table name.
        name: String,
        /// Alias (defaults to the table name).
        alias: String,
    },
    /// An `XMLTABLE(...)` invocation.
    XmlTable {
        /// The row-producing XQuery.
        row_query: Query,
        /// `PASSING expr AS "var"` bindings.
        passing: Vec<(String, SqlExpr)>,
        /// COLUMNS definitions.
        columns: Vec<XmlTableColumn>,
        /// Result alias.
        alias: String,
        /// Optional column aliases `as t(a, b)`.
        column_aliases: Vec<String>,
    },
}

/// One `COLUMNS` entry of XMLTABLE.
#[derive(Debug, Clone)]
pub struct XmlTableColumn {
    /// Column name.
    pub name: String,
    /// Declared type (`None` = XML).
    pub ty: Option<SqlType>,
    /// `BY REF` was specified (node references are our only representation,
    /// so this is informational).
    pub by_ref: bool,
    /// The `PATH` XQuery.
    pub path: Query,
}

/// A scalar-valued SQL expression.
#[derive(Debug, Clone)]
pub enum SqlExpr {
    /// `[qualifier.]column`
    Column {
        /// Table alias qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Integer literal.
    Integer(i64),
    /// Floating literal.
    Double(f64),
    /// String literal.
    Varchar(String),
    /// `NULL`
    Null,
    /// `XMLQUERY('...' PASSING expr AS "var", ...)`
    XmlQuery {
        /// The embedded XQuery.
        query: Query,
        /// Passing bindings.
        passing: Vec<(String, SqlExpr)>,
    },
    /// `XMLCAST(expr AS type)`
    XmlCast {
        /// Operand (usually an XMLQUERY).
        expr: Box<SqlExpr>,
        /// SQL target type.
        ty: SqlType,
    },
}

/// A WHERE condition.
#[derive(Debug, Clone)]
pub enum SqlCond {
    /// Scalar comparison.
    Cmp(CompareOp, SqlExpr, SqlExpr),
    /// `XMLEXISTS('...' PASSING ...)`
    XmlExists {
        /// The embedded XQuery.
        query: Query,
        /// Passing bindings.
        passing: Vec<(String, SqlExpr)>,
    },
    /// `AND`
    And(Box<SqlCond>, Box<SqlCond>),
    /// `OR`
    Or(Box<SqlCond>, Box<SqlCond>),
    /// `NOT`
    Not(Box<SqlCond>),
}
