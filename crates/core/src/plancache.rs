//! A small LRU cache for compiled query plans, keyed by query text.
//!
//! Both front ends pay a parse + eligibility-analysis + pre-filter
//! extraction cost per statement; for the common case of re-submitted
//! query text that work is identical, so each catalog/session keeps a
//! bounded cache of `Arc`'d plans. Entries are validated against the
//! catalog's [`CacheEpoch`]: any `CREATE TABLE` / `CREATE INDEX` bumps the
//! DDL half, and a stale entry is dropped on lookup instead of being served
//! (an old plan could name the wrong index or miss a new one). Plain
//! inserts do *not* invalidate — plans hold no row data, only the parsed
//! AST and per-source decisions, and probes/filters re-execute per run —
//! but *heavy* DML does: once a table's live row count drifts ≥25% from
//! where it sat at plan time, the catalog bumps the statistics half of the
//! epoch and costed plans are re-costed against the shifted synopsis
//! histograms rather than served stale.

use std::collections::HashMap;
use std::sync::Arc;

/// Default capacity: large enough for a realistic statement working set,
/// small enough that the O(capacity) LRU eviction scan is irrelevant.
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// The pair of invalidation clocks a cached plan was built under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheEpoch {
    /// Bumped by CREATE TABLE / CREATE INDEX — the plan shape is stale.
    pub ddl: u64,
    /// Bumped when a table's row count drifts ≥25% since its baseline —
    /// the plan's cost decisions are stale.
    pub stats: u64,
}

impl CacheEpoch {
    /// Construct from both clocks.
    pub fn new(ddl: u64, stats: u64) -> Self {
        CacheEpoch { ddl, stats }
    }
}

#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    /// Epoch pair the plan was built under.
    epoch: CacheEpoch,
    /// Logical access clock for LRU eviction.
    used: u64,
}

/// Bounded LRU map from statement text to a shared plan.
#[derive(Debug)]
pub struct PlanCache<V> {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, Entry<V>>,
}

impl<V> Default for PlanCache<V> {
    fn default() -> Self {
        PlanCache::new(PLAN_CACHE_CAPACITY)
    }
}

impl<V> PlanCache<V> {
    /// A cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PlanCache { capacity: capacity.max(1), tick: 0, entries: HashMap::new() }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a plan built under the current `epoch`. A hit refreshes the
    /// entry's LRU position; an entry from an older epoch (either clock) is
    /// removed and reported as a miss.
    pub fn get(&mut self, key: &str, epoch: CacheEpoch) -> Option<Arc<V>> {
        match self.entries.get_mut(key) {
            Some(e) if e.epoch == epoch => {
                self.tick += 1;
                e.used = self.tick;
                Some(Arc::clone(&e.value))
            }
            Some(_) => {
                self.entries.remove(key);
                None
            }
            None => None,
        }
    }

    /// Insert (or replace) a plan built under `epoch`, evicting the least
    /// recently used entry when at capacity.
    pub fn insert(&mut self, key: String, value: Arc<V>, epoch: CacheEpoch) {
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries
            .insert(key, Entry { value, epoch, used: self.tick });
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn ep(ddl: u64) -> CacheEpoch {
        CacheEpoch::new(ddl, 0)
    }

    #[test]
    fn hit_miss_and_epoch_invalidation() {
        let mut c: PlanCache<String> = PlanCache::new(4);
        assert!(c.get("q1", ep(0)).is_none());
        c.insert("q1".into(), Arc::new("p1".into()), ep(0));
        assert_eq!(*c.get("q1", ep(0)).unwrap(), "p1");
        // A DDL bump invalidates: the stale entry is dropped, not served.
        assert!(c.get("q1", ep(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn stats_epoch_invalidates_independently() {
        let mut c: PlanCache<String> = PlanCache::new(4);
        c.insert("q1".into(), Arc::new("p1".into()), CacheEpoch::new(3, 7));
        assert!(c.get("q1", CacheEpoch::new(3, 7)).is_some());
        // Statistics drift alone (same DDL epoch) drops the entry.
        assert!(c.get("q1", CacheEpoch::new(3, 8)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn lru_eviction_is_bounded_and_keeps_recent() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        c.insert("a".into(), Arc::new(1), ep(0));
        c.insert("b".into(), Arc::new(2), ep(0));
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get("a", ep(0)).is_some());
        c.insert("c".into(), Arc::new(3), ep(0));
        assert_eq!(c.len(), 2);
        assert!(c.get("a", ep(0)).is_some());
        assert!(c.get("b", ep(0)).is_none());
        assert!(c.get("c", ep(0)).is_some());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: PlanCache<u32> = PlanCache::new(2);
        c.insert("a".into(), Arc::new(1), ep(0));
        c.insert("b".into(), Arc::new(2), ep(0));
        c.insert("a".into(), Arc::new(9), ep(0));
        assert_eq!(c.len(), 2);
        assert_eq!(*c.get("a", ep(0)).unwrap(), 9);
        assert_eq!(*c.get("b", ep(0)).unwrap(), 2);
    }
}
