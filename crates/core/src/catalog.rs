//! The catalog: tables plus their XML indexes, with index maintenance on
//! insert, delete and replace.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xqdb_obs::{Counter, Obs};
use xqdb_runtime::{chunk_ranges, RuntimeConfig, WorkerPool};
use xqdb_xdm::{ErrorCode, FaultInjector, NodeHandle, XdmError};
use xqdb_xmlindex::XmlIndex;
use xqdb_storage::{Database, RowId, SqlValue, Table};

use crate::eligibility::CostModel;
use crate::engine::QueryPlan;
use crate::plancache::{CacheEpoch, PlanCache};

/// A database plus its XML indexes.
#[derive(Debug, Default)]
pub struct Catalog {
    /// The row store.
    pub db: Database,
    /// Indexes by name.
    indexes: HashMap<String, XmlIndex>,
    /// Parallel-execution configuration: governs index back-fills here and
    /// the scan/WHERE phases in the engine and SQL layers. Defaults to
    /// serial.
    pub runtime: RuntimeConfig,
    /// Observability handle for index-maintenance counters (entries built on
    /// back-fill and insert). Defaults to the free disabled handle.
    pub obs: Obs,
    /// Monotone DDL epoch: bumped by `CREATE TABLE` / `CREATE INDEX`, read
    /// by the plan caches to invalidate plans built against older schema.
    ddl_epoch: AtomicU64,
    /// Monotone statistics epoch: bumped when a table's live row count
    /// drifts ≥25% from its baseline, so costed plans are re-costed
    /// against the shifted synopsis histograms instead of served stale.
    stats_epoch: AtomicU64,
    /// Per-table live row count at the last stats-epoch bump (or first
    /// sighting) — the drift baseline.
    stats_baseline: Mutex<HashMap<String, u64>>,
    /// LRU cache of compiled XQuery plans, keyed by query text.
    plan_cache: Mutex<PlanCache<QueryPlan>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// `CREATE TABLE`.
    pub fn create_table(&mut self, table: Table) -> Result<(), XdmError> {
        self.db.create_table(table)?;
        self.bump_ddl_epoch();
        Ok(())
    }

    /// The current DDL epoch (see the field docs).
    pub fn ddl_epoch(&self) -> u64 {
        self.ddl_epoch.load(Ordering::Acquire)
    }

    fn bump_ddl_epoch(&self) {
        self.ddl_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// The current statistics epoch (see the field docs).
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch.load(Ordering::Acquire)
    }

    /// The full plan-validation epoch pair (DDL shape + statistics).
    pub fn plan_epoch(&self) -> CacheEpoch {
        CacheEpoch::new(self.ddl_epoch(), self.stats_epoch())
    }

    /// Record post-DML row-count drift for `table`: a ≥25% move from the
    /// baseline bumps the stats epoch (invalidating costed cached plans)
    /// and resets the baseline to the current count.
    fn note_stats_drift(&self, table_upper: &str) {
        let Some(t) = self.db.table(table_upper) else { return };
        let cur = t.live_len() as u64;
        let Ok(mut base) = self.stats_baseline.lock() else { return };
        let entry = base.entry(table_upper.to_string()).or_insert(cur);
        let drift = cur.abs_diff(*entry);
        if drift > 0 && drift * 4 >= (*entry).max(1) {
            *entry = cur;
            self.stats_epoch.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Planning-time statistics for one `TABLE.COLUMN` source, or `None`
    /// when the table is unknown or its synopsis lacks complete value
    /// statistics (e.g. rows adopted from a manifest without re-parsing —
    /// the planner then falls back to rule-based index choice).
    pub fn cost_model_for(&self, source: &str) -> Option<CostModel<'_>> {
        let (t, _) = self.db.resolve_xml_column(source).ok()?;
        let synopsis = t.synopsis();
        if !synopsis.stats_complete() {
            return None;
        }
        Some(CostModel {
            docs: t.live_len() as u64,
            pages: t.heap_pages().len() as u64,
            synopsis,
        })
    }

    /// Look up a cached plan for this exact query text, if one was built
    /// under the current epoch pair.
    pub fn cached_plan(&self, text: &str) -> Option<Arc<QueryPlan>> {
        let epoch = self.plan_epoch();
        match self.plan_cache.lock() {
            Ok(mut cache) => cache.get(text, epoch),
            Err(_) => None,
        }
    }

    /// Cache a plan under the current epoch pair.
    pub fn cache_plan(&self, text: &str, plan: Arc<QueryPlan>) {
        let epoch = self.plan_epoch();
        if let Ok(mut cache) = self.plan_cache.lock() {
            cache.insert(text.to_string(), plan, epoch);
        }
    }

    /// `CREATE INDEX name ON table(column) USING XMLPATTERN 'p' AS type` —
    /// also back-fills the index from existing rows.
    pub fn create_index(
        &mut self,
        name: &str,
        table: &str,
        column: &str,
        xmlpattern: &str,
        ty: &str,
    ) -> Result<(), XdmError> {
        let upper = name.to_ascii_uppercase();
        if self.indexes.contains_key(&upper) {
            return Err(XdmError::new(
                ErrorCode::SqlType,
                format!("index {upper} already exists"),
            ));
        }
        let t = self.db.table(table).ok_or_else(|| {
            XdmError::new(ErrorCode::SqlType, format!("unknown table {table:?}"))
        })?;
        let col = t.column_index(column).ok_or_else(|| {
            XdmError::new(
                ErrorCode::SqlType,
                format!("unknown column {column:?} on table {table:?}"),
            )
        })?;
        let mut index = XmlIndex::create(name, table, column, xmlpattern, ty)?;
        // Write-ahead: with a persistence hook installed the DDL is logged
        // (in canonical spelling, so replay reproduces it exactly) after
        // validation but before the index becomes visible. A log failure
        // vetoes the creation.
        if let Some(hook) = self.db.persistence() {
            hook.log_create_index(
                &upper,
                &index.table,
                &index.column,
                &index.pattern.to_string(),
                &index.ty.to_string(),
            )?;
        }
        // Back-fill. Entry extraction (the document walk) is read-only and
        // parallelizes across documents; the merge into the B+Tree stays
        // serial and in row order, so the built tree is identical to a
        // serial build whatever the thread count.
        let mut docs: Vec<(u64, NodeHandle)> = Vec::new();
        for item in t.scan() {
            let (row, values) = item?;
            if let SqlValue::Xml(doc) = &values[col] {
                docs.push((row as u64, doc.clone()));
            }
        }
        let pool = WorkerPool::new(self.runtime.effective_threads());
        if pool.threads() > 1 && docs.len() > 1 {
            let ranges = chunk_ranges(docs.len(), pool.default_chunks(docs.len()));
            let extractor = &index;
            let extracted = pool.run(ranges.len(), |i| {
                docs[ranges[i].clone()]
                    .iter()
                    .map(|(row, doc)| extractor.extract_entries(*row, doc))
                    .collect::<Vec<_>>()
            });
            for chunk in extracted {
                for entries in chunk {
                    index.insert_entries(entries);
                }
            }
        } else {
            for (row, doc) in &docs {
                index.insert_document(*row, doc);
            }
        }
        self.obs.add(Counter::IndexEntriesBuilt, index.len() as u64);
        self.indexes.insert(upper, index);
        self.bump_ddl_epoch();
        Ok(())
    }

    /// Install (or clear) a fault injector on every index probe path. New
    /// indexes created afterwards do NOT inherit it; chaos tests install
    /// injectors after schema setup.
    pub fn set_index_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        for idx in self.indexes.values_mut() {
            idx.set_fault_injector(injector.clone());
        }
    }

    /// `INSERT`, maintaining every index on the table.
    pub fn insert(&mut self, table: &str, values: Vec<SqlValue>) -> Result<RowId, XdmError> {
        let row = self.db.insert(table, values)?;
        let t = self.db.table(table).ok_or_else(|| {
            XdmError::internal(format!("table {table} vanished between insert and lookup"))
        })?;
        let table_upper = table.to_ascii_uppercase();
        // Collect the XML values of this row per column name.
        let mut xml_cells: Vec<(String, NodeHandle)> = Vec::new();
        if let Some(r) = t.row(row)? {
            for (i, v) in r.iter().enumerate() {
                if let SqlValue::Xml(n) = v {
                    xml_cells.push((t.columns[i].name.clone(), n.clone()));
                }
            }
        }
        for idx in self.indexes.values_mut() {
            if idx.table != table_upper {
                continue;
            }
            for (col, doc) in &xml_cells {
                if idx.column == *col {
                    let before = idx.len();
                    idx.insert_document(row as u64, doc);
                    self.obs.add(Counter::IndexEntriesBuilt, (idx.len() - before) as u64);
                }
            }
        }
        self.note_stats_drift(&table_upper);
        Ok(row)
    }

    /// `DELETE`, maintaining every index on the table. Each rowid must
    /// name a live row (validated inside [`Database::delete`] before the
    /// statement is logged). The doomed rows' XML cells are collected
    /// *first* — once the rows are gone they can no longer tell the
    /// indexes which entries to drop. Index removal re-extracts entries
    /// from the stored document, which yields exactly the keys insertion
    /// built: node ids are per-document pre-order positions, deterministic
    /// across re-parses of the same stored bytes. Returns rows deleted.
    pub fn delete(&mut self, table: &str, rowids: &[u64]) -> Result<u64, XdmError> {
        let table_upper = table.to_ascii_uppercase();
        let t = self.db.table(&table_upper).ok_or_else(|| {
            XdmError::new(ErrorCode::SqlType, format!("unknown table {table}"))
        })?;
        let mut xml_cells: Vec<(u64, String, NodeHandle)> = Vec::new();
        for &id in rowids {
            if let Some(r) = t.row(id as RowId)? {
                for (i, v) in r.iter().enumerate() {
                    if let SqlValue::Xml(n) = v {
                        xml_cells.push((id, t.columns[i].name.clone(), n.clone()));
                    }
                }
            }
        }
        let n = self.db.delete(&table_upper, rowids)?;
        for idx in self.indexes.values_mut() {
            if idx.table != table_upper {
                continue;
            }
            for (row, col, doc) in &xml_cells {
                if idx.column == *col {
                    idx.remove_document(*row, doc);
                }
            }
        }
        self.obs.add(Counter::RowsDeleted, n);
        self.note_stats_drift(&table_upper);
        Ok(n)
    }

    /// Document REPLACE (`UPDATE t SET … WHERE …`, resolved to one rowid),
    /// maintaining every index: the old document's entries are removed and
    /// the new document's inserted under the same rowid.
    pub fn replace(
        &mut self,
        table: &str,
        rowid: u64,
        values: Vec<SqlValue>,
    ) -> Result<(), XdmError> {
        let table_upper = table.to_ascii_uppercase();
        let t = self.db.table(&table_upper).ok_or_else(|| {
            XdmError::new(ErrorCode::SqlType, format!("unknown table {table}"))
        })?;
        let mut old_cells: Vec<(String, NodeHandle)> = Vec::new();
        if let Some(r) = t.row(rowid as RowId)? {
            for (i, v) in r.iter().enumerate() {
                if let SqlValue::Xml(n) = v {
                    old_cells.push((t.columns[i].name.clone(), n.clone()));
                }
            }
        }
        self.db.replace(&table_upper, rowid, values)?;
        let t = self.db.table(&table_upper).ok_or_else(|| {
            XdmError::internal(format!("table {table} vanished during replace"))
        })?;
        let mut new_cells: Vec<(String, NodeHandle)> = Vec::new();
        if let Some(r) = t.row(rowid as RowId)? {
            for (i, v) in r.iter().enumerate() {
                if let SqlValue::Xml(n) = v {
                    new_cells.push((t.columns[i].name.clone(), n.clone()));
                }
            }
        }
        for idx in self.indexes.values_mut() {
            if idx.table != table_upper {
                continue;
            }
            for (col, doc) in &old_cells {
                if idx.column == *col {
                    idx.remove_document(rowid, doc);
                }
            }
            for (col, doc) in &new_cells {
                if idx.column == *col {
                    let before = idx.len();
                    idx.insert_document(rowid, doc);
                    self.obs.add(Counter::IndexEntriesBuilt, (idx.len() - before) as u64);
                }
            }
        }
        self.obs.incr(Counter::DocsReplaced);
        self.note_stats_drift(&table_upper);
        Ok(())
    }

    /// Indexes on a given `TABLE.COLUMN` source key, sorted by name so
    /// the rule-based "first eligible" choice is deterministic and
    /// matches the catalog-listing order (`all_indexes`, EXPLAIN).
    pub fn indexes_for_source(&self, source: &str) -> Vec<&XmlIndex> {
        let mut v: Vec<&XmlIndex> = self
            .indexes
            .values()
            .filter(|i| format!("{}.{}", i.table, i.column) == source)
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// All indexes (for EXPLAIN/catalog listings), sorted by name.
    pub fn all_indexes(&self) -> Vec<&XmlIndex> {
        let mut v: Vec<&XmlIndex> = self.indexes.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Look up one index.
    pub fn index(&self, name: &str) -> Option<&XmlIndex> {
        self.indexes.get(&name.to_ascii_uppercase())
    }

    /// Aggregate buffer-pool counters across every pool this catalog owns:
    /// the row store's shared page file plus each index's private node pool.
    /// Monotone, so two snapshots bracket a query's physical page traffic
    /// (`PoolStats::delta_since`).
    pub fn pool_stats(&self) -> xqdb_pager::PoolStats {
        let mut total = self.db.pager().pool_stats();
        for idx in self.indexes.values() {
            total.add(&idx.pool_stats());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdb_storage::{Column, SqlType};

    fn orders_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(Table::new(
            "orders",
            vec![Column::new("ordid", SqlType::Integer), Column::new("orddoc", SqlType::Xml)],
        ))
        .unwrap();
        c
    }

    fn insert_order(c: &mut Catalog, id: i64, xml: &str) {
        let doc = xqdb_xmlparse::parse_document(xml).unwrap();
        c.insert("orders", vec![SqlValue::Integer(id), SqlValue::Xml(doc.root())])
            .unwrap();
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut c = orders_catalog();
        c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
            .unwrap();
        insert_order(&mut c, 1, r#"<order><lineitem price="250"/></order>"#);
        insert_order(&mut c, 2, r#"<order><lineitem price="50"/></order>"#);
        assert_eq!(c.index("LI_PRICE").unwrap().len(), 2);
    }

    #[test]
    fn index_backfilled_on_create() {
        let mut c = orders_catalog();
        insert_order(&mut c, 1, r#"<order><lineitem price="250"/></order>"#);
        c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
            .unwrap();
        assert_eq!(c.index("li_price").unwrap().len(), 1);
    }

    #[test]
    fn parallel_backfill_builds_identical_index() {
        let mut docs = Vec::new();
        for i in 0..50 {
            docs.push(format!(
                r#"<order><lineitem price="{}"/><lineitem price="bad"/></order>"#,
                i * 7 % 100
            ));
        }
        let build = |threads: usize| {
            let mut c = orders_catalog();
            c.runtime = xqdb_runtime::RuntimeConfig::with_threads(threads);
            for (i, d) in docs.iter().enumerate() {
                insert_order(&mut c, i as i64, d);
            }
            c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
                .unwrap();
            c
        };
        let serial = build(1);
        for threads in [2, 4, 8] {
            let parallel = build(threads);
            let (s, p) = (serial.index("li_price").unwrap(), parallel.index("li_price").unwrap());
            assert_eq!(s.len(), p.len(), "entry count diverged at {threads} threads");
            assert_eq!(s.skipped_nodes, p.skipped_nodes);
            // The probes must agree too, not just the counts.
            let range = xqdb_xmlindex::ProbeRange {
                lo: std::ops::Bound::Excluded(xqdb_xdm::AtomicValue::Double(30.0)),
                hi: std::ops::Bound::Unbounded,
            };
            assert_eq!(s.probe(&range).0, p.probe(&range).0);
        }
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut c = orders_catalog();
        c.create_index("i1", "orders", "orddoc", "//a", "double").unwrap();
        assert!(c.create_index("I1", "orders", "orddoc", "//b", "double").is_err());
    }

    #[test]
    fn unknown_table_or_column_rejected() {
        let mut c = orders_catalog();
        assert!(c.create_index("x", "nope", "orddoc", "//a", "double").is_err());
        assert!(c.create_index("x", "orders", "nope", "//a", "double").is_err());
    }

    #[test]
    fn invalid_xml_through_production_insert_is_a_typed_error_not_a_panic() {
        // The only `parse_document(..).unwrap()` in this file is the
        // `insert_order` test helper above, which feeds known-good fixture
        // XML. The production ingest path parses through
        // `SqlSession::eval_insert_row`, which must surface malformed input
        // as a typed error — never a panic.
        let mut s = crate::sqlxml::SqlSession::new();
        s.execute("create table t (id integer, doc XML)").unwrap();
        let err = s
            .execute("INSERT INTO t VALUES (1, '<broken')")
            .expect_err("malformed XML is rejected");
        assert_eq!(err.code, xqdb_xdm::ErrorCode::XPST0003);
        // And a document over the session parse limits gets the limit code.
        let mut s = crate::sqlxml::SqlSession::new();
        s.parse_limits = s.parse_limits.with_max_doc_bytes(8);
        s.execute("create table t (id integer, doc XML)").unwrap();
        let err = s
            .execute("INSERT INTO t VALUES (1, '<a>0123456789</a>')")
            .expect_err("oversized XML is rejected");
        assert_eq!(err.code, xqdb_xdm::ErrorCode::ParseLimit);
    }

    #[test]
    fn ddl_bumps_epoch_and_invalidates_cached_plans() {
        let mut c = orders_catalog();
        let e0 = c.ddl_epoch();
        insert_order(&mut c, 1, "<order><custid>c1</custid></order>");
        assert_eq!(c.ddl_epoch(), e0, "DML must not bump the DDL epoch");
        let parsed = xqdb_xquery::parse_query("1").unwrap();
        let plan =
            Arc::new(crate::engine::plan_query(&c, parsed, &crate::AnalysisEnv::new()));
        c.cache_plan("q", Arc::clone(&plan));
        assert!(c.cached_plan("q").is_some());
        c.create_index("i9", "orders", "orddoc", "//a", "double").unwrap();
        assert!(c.ddl_epoch() > e0);
        assert!(c.cached_plan("q").is_none(), "DDL invalidates cached plans");
    }

    #[test]
    fn stats_drift_recosts_cached_plans_after_delete_churn() {
        let mut c = orders_catalog();
        for i in 0..8 {
            insert_order(&mut c, i, r#"<order><lineitem price="9"/></order>"#);
        }
        let e = c.ddl_epoch();
        let parsed = xqdb_xquery::parse_query("1").unwrap();
        let plan =
            Arc::new(crate::engine::plan_query(&c, parsed, &crate::AnalysisEnv::new()));
        c.cache_plan("q", Arc::clone(&plan));
        assert!(c.cached_plan("q").is_some());
        // Dropping half the rows is a ≥25% drift: the stats epoch bumps,
        // the cached plan is re-costed — but the DDL epoch is untouched.
        c.delete("orders", &[0, 1, 2, 3]).unwrap();
        assert_eq!(c.ddl_epoch(), e, "DML must not bump the DDL epoch");
        assert!(c.cached_plan("q").is_none(), "heavy churn invalidates cached plans");
        // Re-caching under the new epoch works, and light churn keeps it.
        c.cache_plan("q", plan);
        assert!(c.cached_plan("q").is_some(), "plan re-cached under new stats epoch");
    }

    #[test]
    fn indexes_for_source_filters() {
        let mut c = orders_catalog();
        c.create_index("i1", "orders", "orddoc", "//a", "double").unwrap();
        assert_eq!(c.indexes_for_source("ORDERS.ORDDOC").len(), 1);
        assert!(c.indexes_for_source("ORDERS.OTHER").is_empty());
    }
}
