//! Compile-time `Send + Sync` audit for every type that crosses worker
//! threads during parallel execution.
//!
//! The worker pool shares `&Catalog`, `&DynamicContext` (budget, variables,
//! focus items) and fault injectors across scoped threads. Rust checks the
//! bounds at each use site, but a regression (say, an `Rc` or `RefCell`
//! slipping into `NodeHandle`) would surface as a confusing error deep in
//! the executor. This hand-rolled `static_assertions`-style module turns
//! such a regression into one obvious build failure at the type's name.

/// The assertion: instantiable only for `Send + Sync` types.
fn assert_send_sync<T: Send + Sync>() {}

/// Monomorphize the assertion for every thread-crossing type. Never called;
/// type-checking the body is the whole point.
#[allow(dead_code)]
fn audit_thread_crossing_types() {
    // Storage layer: shared read-only by sharded scans.
    assert_send_sync::<xqdb_storage::Database>();
    assert_send_sync::<xqdb_storage::Table>();
    assert_send_sync::<xqdb_storage::SqlValue>();

    // Index layer: probed under a shared reference.
    assert_send_sync::<xqdb_xmlindex::XmlIndex>();

    // Data model: documents and items flow between workers.
    assert_send_sync::<xqdb_xdm::NodeHandle>();
    assert_send_sync::<xqdb_xdm::Item>();
    assert_send_sync::<xqdb_xdm::XdmError>();

    // Governance: one budget and one injector serve all workers.
    assert_send_sync::<xqdb_xdm::Budget>();
    assert_send_sync::<xqdb_xdm::FaultInjector>();

    // Evaluation: each worker evaluates under a shared context.
    assert_send_sync::<xqdb_xqeval::DynamicContext>();

    // Engine: the catalog and executor are captured by worker closures.
    assert_send_sync::<crate::Catalog>();
    assert_send_sync::<crate::ParallelExecutor>();
    assert_send_sync::<crate::SqlSession>();
    assert_send_sync::<crate::ExecStats>();

    // Runtime: the pool itself must be shareable.
    assert_send_sync::<xqdb_runtime::WorkerPool>();
    assert_send_sync::<xqdb_runtime::RuntimeConfig>();

    // Observability: the handle and per-query trace are recorded into from
    // every worker; spans may be created concurrently.
    assert_send_sync::<xqdb_obs::Obs>();
    assert_send_sync::<xqdb_obs::Trace>();
    assert_send_sync::<xqdb_obs::Span>();
    assert_send_sync::<xqdb_obs::MetricsSnapshot>();
}
