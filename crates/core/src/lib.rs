//! # xqdb-core — index eligibility, planning, and SQL/XML
//!
//! The reproduction of the primary contribution of *On the Path to Efficient
//! XML Queries* (Balmin, Beyer, Özcan, Nicola; VLDB 2006): an XML database
//! engine whose planner decides **index eligibility** per the paper's
//! Definition 1 and whose EXPLAIN output names either the chosen index
//! probes or the precise pitfall (Sections 3.1–3.10) that made every
//! candidate ineligible.
//!
//! Layering:
//!
//! * [`catalog`] — tables + XML indexes, with maintenance on insert;
//! * [`eligibility`] — candidate extraction (filtering-context analysis),
//!   pattern containment, type matching, between-merging;
//! * [`engine`] — the standalone XQuery interface (the paper's `db2-fn:xmlcolumn`
//!   world): plan → probe indexes → evaluate residual;
//! * [`sqlxml`] — the SQL/XML interface: `XMLQUERY`, `XMLEXISTS`,
//!   `XMLTABLE`, `XMLCAST`, with SQL comparison semantics.

pub mod catalog;
pub mod durability;
pub mod eligibility;
pub mod engine;
pub mod plancache;
pub mod prefilter;
mod send_sync;
pub mod sqlxml;
pub mod twig;
pub mod verify;

pub use catalog::Catalog;
pub use durability::{
    open_durable_catalog, recover_catalog, snapshot_records, Durability, RecoveryReport,
    PAGES_FILE,
};
pub use eligibility::{
    diagnose, diagnose_misestimate, estimate_probe_entries, AnalysisEnv, Candidate, CmpTarget,
    Cond, CostModel, Diagnosis, Est, IndexCond, Note, Pitfall, RejectReason,
};
pub use engine::{
    cost_env_enabled, execute_plan, explain, explain_analyze_report, explain_analyze_xquery,
    explain_with_threads, partition_plan, plan_query, plan_query_costed, plan_query_traced,
    run_xquery, run_xquery_with_limits, run_xquery_with_options, ExecOptions, ExecOutcome,
    ExecStats, ParallelExecutor, Partition, PlanCost, QueryPlan,
};
pub use plancache::CacheEpoch;
pub use prefilter::{
    extract_prefilters, PathComponent, RequiredGroup, RequiredPath, SourcePrefilter,
};
pub use sqlxml::{SqlSession, SqlResult};
pub use twig::{extract_twigs, PreparedTwig, SourceTwig};
pub use verify::{verify_derived_state, TableVerdict, VerifyReport};
pub use xqdb_obs::{Obs, ObsConfig};
pub use xqdb_storage::{bucket_bounds, hash_rendered_path, PathSynopsis, ValueStats};
pub use xqdb_wal::{CrashInjector, FsyncMode, WalConfig};
