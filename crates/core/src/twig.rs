//! Twig-pattern compiler: lower branching/descendant path queries into
//! [`Pattern`] trees for the holistic twig join (`xqdb-twig`).
//!
//! This is the query side of the structural-label subsystem. It walks
//! the same positions as [`crate::prefilter`] — query body, FLWOR
//! binding expressions, `where` conjuncts after `and`-flattening,
//! comparison operands, step predicates — but instead of flat required
//! paths it builds pattern *trees*: child/descendant edges and
//! branching predicates survive the lowering, which is exactly the
//! query class the flat signature prefilter cannot serve.
//!
//! ## Per-source contract
//!
//! Each recognized use of a source lowers to one pattern; a row is kept
//! iff **any** use's pattern structurally matches it (uses are OR'd,
//! like the prefilter's requirement groups). The conservative direction
//! is the same as everywhere else in this engine (Definition 1):
//!
//! * Unsupported steps truncate the pattern — a prefix pattern matches
//!   a superset of rows.
//! * Ignored predicates, `or` branches, quantifiers: constraints we do
//!   not lower can only widen the match set.
//! * But a use we cannot lower **at all** (bare `xmlcolumn()`, a
//!   wildcard first step) could draw on any document, so the whole
//!   source is dropped from twig planning — never filtered.
//!
//! Variable uses (`$o/...` for a `for`/`let`-bound `$o`) are not
//! tracked: whatever a derived variable produces from a row is already
//! covered by the pattern of its binding expression, so ignoring the
//! uses is sound. The engine-mode occurrence guard (count every
//! `db2-fn:xmlcolumn('S')` occurrence, compare against recognized uses)
//! closes the same hole it closes for the prefilter.
//!
//! ## Routing rule
//!
//! A [`SourceTwig`] is only emitted when at least one pattern has a
//! descendant edge or a branch: pure child chains are already served
//! bit-for-bit by the cheaper signature prefilter, so routing them
//! through the twig join would cost merge work for nothing.

use std::collections::HashMap;

use xqdb_storage::{hash_rendered_path, PathSynopsis, Table};
use xqdb_twig::{Edge, Pattern, TwigJoin};
use xqdb_xdm::ExpandedName;
use xqdb_xquery::ast::{
    Axis, Expr, Flwor, FlworClause, KindTest, LocalTest, NameTest, NodeTest, NsTest, Step,
};

use crate::eligibility::AnalysisEnv;
use crate::engine::{visit_exprs, xmlcolumn_literal};

/// The twig filter for one source: a row is kept iff any pattern
/// matches it. Construction guarantees the list is non-empty, every
/// recognized use of the source is covered by a pattern, and at least
/// one pattern is worth routing through the join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceTwig {
    /// The OR'd per-use patterns.
    pub patterns: Vec<Pattern>,
}

impl SourceTwig {
    /// Rendered `pattern | pattern | ...` form for EXPLAIN output.
    pub fn render(&self) -> String {
        let rendered: Vec<String> = self.patterns.iter().map(Pattern::render).collect();
        rendered.join(" | ")
    }
}

/// Resolve a pattern against a table synopsis (the dataguide): per
/// pattern node, the hashes of the synopsis paths that can produce it.
pub fn resolve_for_synopsis(pattern: &Pattern, synopsis: &PathSynopsis) -> Vec<Vec<u64>> {
    let paths: Vec<(&str, u64)> =
        synopsis.paths().map(|(p, _)| (p, hash_rendered_path(p))).collect();
    xqdb_twig::resolve_pattern(pattern, &paths)
}

/// A [`SourceTwig`] prepared against one table: one holistic join per
/// pattern, sharing the table's label store. `None` when the table's
/// labels are not complete (recovery adopted rows without re-parsing,
/// or labeling was disabled at ingest) — the caller then skips twig
/// filtering for the table entirely, which is always correct.
pub struct PreparedTwig<'a> {
    joins: Vec<TwigJoin<'a>>,
}

impl<'a> PreparedTwig<'a> {
    /// Prepare the joins, resolving each pattern through the table's
    /// synopsis. Returns `None` if the label store cannot vouch for
    /// every row.
    pub fn prepare(twig: &'a SourceTwig, table: &'a Table) -> Option<PreparedTwig<'a>> {
        if !table.labels().is_complete_for(table.len() as u64) {
            return None;
        }
        let joins = twig
            .patterns
            .iter()
            .map(|p| {
                let resolved = resolve_for_synopsis(p, table.synopsis());
                TwigJoin::new(p, table.labels(), &resolved)
            })
            .collect();
        Some(PreparedTwig { joins })
    }

    /// True if any join's cheap per-node row-set intersection admits the
    /// row — the full structural match still has to confirm it. This is
    /// what the `TwigCandidates` counter reports.
    pub fn is_candidate(&self, row: u64) -> bool {
        self.joins.iter().any(|j| j.is_candidate(row))
    }

    /// True if any pattern's join structurally matches the row.
    pub fn accepts(&self, row: u64) -> bool {
        self.joins.iter().any(|j| j.is_candidate(row) && j.matches_row(row))
    }
}

/// Extract per-source twig patterns from a query body.
///
/// Mirrors [`crate::prefilter::extract_prefilters`]: `env` supplies the
/// doc-level variable bindings (SQL PASSING clauses), and
/// `recognize_xmlcolumn` controls whether direct `db2-fn:xmlcolumn()`
/// calls anchor uses (true for the XQuery engine's collection scans,
/// false for SQL row filtering, where only PASSING-variable uses say
/// anything about which row passes).
pub fn extract_twigs(
    body: &Expr,
    env: &AnalysisEnv,
    recognize_xmlcolumn: bool,
) -> HashMap<String, SourceTwig> {
    let mut ex = TwigExtractor {
        uses: HashMap::new(),
        recognized: HashMap::new(),
        recognize_xmlcolumn,
    };
    let vars: Vars = env
        .doc_bindings()
        .map(|(v, b)| (v.clone(), b.source.clone()))
        .collect();
    ex.collect(body, &vars);

    // Occurrence guard (engine mode): an xmlcolumn('S') occurrence the
    // walk did not recognize as a use could let S's documents contribute
    // some other way — S must not be twig-filtered.
    if recognize_xmlcolumn {
        let mut total: HashMap<String, usize> = HashMap::new();
        visit_exprs(body, &mut |e| {
            if let Some(src) = xmlcolumn_literal(e) {
                *total.entry(src).or_insert(0) += 1;
            }
        });
        ex.uses.retain(|src, _| {
            total.get(src).copied().unwrap_or(0) == ex.recognized.get(src).copied().unwrap_or(0)
        });
    }

    ex.uses
        .into_iter()
        .filter_map(|(src, uses)| {
            // Every use must have lowered: one accept-all use (`None`)
            // means some rows could contribute invisibly to the pattern
            // set, so the source is never twig-filtered.
            let mut patterns: Vec<Pattern> = Vec::new();
            for u in uses {
                let p = u?;
                if !patterns.contains(&p) {
                    patterns.push(p);
                }
            }
            if patterns.is_empty() {
                return None;
            }
            // Routing: pure child chains are the signature prefilter's
            // home turf; only descendant edges or branches pay for the
            // stream merge.
            if !patterns.iter().any(|p| p.has_descendant_edge() || p.has_branch()) {
                return None;
            }
            Some((src, SourceTwig { patterns }))
        })
        .collect()
}

/// Live doc-level bindings: variable → source. The extractor never adds
/// bindings (derived variables are covered by their binding expression's
/// pattern); FLWOR clauses only *shadow* names out of the map.
type Vars = HashMap<ExpandedName, String>;

struct TwigExtractor {
    /// Per-source lowered uses; `None` marks an accept-all use that
    /// poisons the source.
    uses: HashMap<String, Vec<Option<Pattern>>>,
    /// Per-source count of `xmlcolumn()` occurrences the walk recognized.
    recognized: HashMap<String, usize>,
    recognize_xmlcolumn: bool,
}

impl TwigExtractor {
    fn collect(&mut self, expr: &Expr, vars: &Vars) {
        match expr.unparen() {
            Expr::Path { init, steps } => self.rooted_use(init, steps, vars),
            Expr::Flwor(f) => self.flwor(f, vars),
            Expr::Sequence(items) => {
                for item in items {
                    self.collect(item, vars);
                }
            }
            Expr::FunctionCall { .. } => {
                // Bare xmlcolumn('S'): every document of S flows out.
                if let Some(src) = self.xmlcolumn(expr.unparen()) {
                    self.uses.entry(src).or_default().push(None);
                }
            }
            _ => {}
        }
    }

    fn flwor(&mut self, f: &Flwor, outer: &Vars) {
        let mut vars = outer.clone();
        for clause in &f.clauses {
            match clause {
                FlworClause::For { var, position, expr } => {
                    self.binding_use(expr, &vars);
                    vars.remove(var);
                    if let Some(p) = position {
                        vars.remove(p);
                    }
                }
                FlworClause::Let { var, expr } => {
                    self.binding_use(expr, &vars);
                    vars.remove(var);
                }
                FlworClause::Where(cond) => {
                    let mut conjuncts = Vec::new();
                    flatten_and(cond, &mut conjuncts);
                    for c in conjuncts {
                        self.condition(c, &vars);
                    }
                }
                FlworClause::OrderBy(_) => {}
            }
        }
        // `f.ret` not walked: source-rooted uses there are covered by
        // the occurrence guard, variable uses by their bindings.
    }

    /// A FLWOR binding expression: the one place a bare source (zero
    /// steps) is a legitimate use shape.
    fn binding_use(&mut self, expr: &Expr, vars: &Vars) {
        match expr.unparen() {
            Expr::Path { init, steps } => self.rooted_use(init, steps, vars),
            other => self.rooted_use(other, &[], vars),
        }
    }

    fn condition(&mut self, cond: &Expr, vars: &Vars) {
        match cond.unparen() {
            Expr::Path { init, steps } => self.rooted_use(init, steps, vars),
            Expr::Flwor(f) => self.flwor(f, vars),
            Expr::GeneralCmp(_, a, b) | Expr::ValueCmp(_, a, b) => {
                self.operand(a, vars);
                self.operand(b, vars);
            }
            _ => {}
        }
    }

    fn operand(&mut self, e: &Expr, vars: &Vars) {
        if let Expr::Path { init, steps } = e.unparen() {
            self.rooted_use(init, steps, vars);
        }
    }

    /// Recognize a source-rooted path use and lower it into a pattern
    /// (or an accept-all `None` when the first step cannot name a root).
    fn rooted_use(&mut self, init: &Expr, steps: &[Step], vars: &Vars) {
        let Some(source) = self.resolve_source(init, vars) else { return };
        let mut pattern: Option<Pattern> = None;
        self.lower_chain(&mut pattern, None, Edge::Child, steps, vars);
        self.uses.entry(source).or_default().push(pattern);
    }

    /// The source a path's `init` is rooted at, if the walk understands
    /// it: a live doc-binding variable, an `xmlcolumn()` call (engine
    /// mode), or either wrapped in filter predicates (which are simply
    /// not lowered — ignoring a constraint only widens the match set,
    /// though any source-rooted paths inside them are still walked as
    /// independent uses).
    fn resolve_source(&mut self, init: &Expr, vars: &Vars) -> Option<String> {
        match init.unparen() {
            Expr::VarRef(v) => vars.get(v).cloned(),
            Expr::Filter { expr, predicates } => {
                let src = self.resolve_source(expr, vars)?;
                for p in predicates {
                    let mut conjuncts = Vec::new();
                    flatten_and(p, &mut conjuncts);
                    for c in conjuncts {
                        self.condition(c, vars);
                    }
                }
                Some(src)
            }
            e => self.xmlcolumn(e),
        }
    }

    /// Recognize `db2-fn:xmlcolumn('S')` (when enabled) and count it.
    fn xmlcolumn(&mut self, e: &Expr) -> Option<String> {
        if !self.recognize_xmlcolumn {
            return None;
        }
        let src = xmlcolumn_literal(e)?;
        *self.recognized.entry(src.clone()).or_insert(0) += 1;
        Some(src)
    }

    /// Lower a step chain into `pattern`, starting below `anchor`
    /// (`None` = the first named step becomes the pattern root).
    /// Truncates — keeping the prefix built so far — at the first step
    /// it does not fully understand.
    fn lower_chain(
        &mut self,
        pattern: &mut Option<Pattern>,
        anchor: Option<usize>,
        mut edge: Edge,
        steps: &[Step],
        vars: &Vars,
    ) {
        let mut cur = anchor;
        for step in steps {
            let Step::Axis { axis, test, predicates } = step else { return };
            match (axis, test) {
                // The `//` separator: descendant-or-self::node() with no
                // predicates sets a pending descendant edge for the next
                // named step.
                (Axis::DescendantOrSelf, NodeTest::Kind(KindTest::AnyKind))
                    if predicates.is_empty() =>
                {
                    edge = Edge::Descendant;
                }
                (Axis::Child, NodeTest::Name(nt)) | (Axis::Descendant, NodeTest::Name(nt)) => {
                    let Some(name) = concrete_name(nt) else { return };
                    if matches!(axis, Axis::Descendant) {
                        edge = Edge::Descendant;
                    }
                    let Some(node) = add_node(pattern, cur, edge, name.clark(), false) else {
                        return;
                    };
                    for p in predicates {
                        self.predicate(pattern, node, p, vars);
                    }
                    cur = Some(node);
                    edge = Edge::Child;
                }
                (Axis::Attribute, NodeTest::Name(nt)) => {
                    if let Some(name) = concrete_name(nt) {
                        add_node(pattern, cur, edge, format!("@{}", name.clark()), true);
                    }
                    // Attributes are terminal; anything past this step
                    // (or a wildcard name) is not lowered.
                    return;
                }
                // Wildcards, kind tests, self/parent axes: truncate.
                _ => return,
            }
        }
    }

    /// A step predicate at pattern node `node`: context-relative path
    /// conjuncts (and comparison operands) branch the pattern; paths
    /// rooted elsewhere are independent uses.
    fn predicate(&mut self, pattern: &mut Option<Pattern>, node: usize, pred: &Expr, vars: &Vars) {
        let mut conjuncts = Vec::new();
        flatten_and(pred, &mut conjuncts);
        for c in conjuncts {
            match c.unparen() {
                Expr::Path { init, steps } => {
                    self.predicate_path(pattern, node, init, steps, vars);
                }
                Expr::GeneralCmp(_, a, b) | Expr::ValueCmp(_, a, b) => {
                    for op in [a, b] {
                        if let Expr::Path { init, steps } = op.unparen() {
                            self.predicate_path(pattern, node, init, steps, vars);
                        }
                    }
                }
                // Positions, `or`, `not()`, quantifiers, literals:
                // nothing to require.
                _ => {}
            }
        }
    }

    fn predicate_path(
        &mut self,
        pattern: &mut Option<Pattern>,
        node: usize,
        init: &Expr,
        steps: &[Step],
        vars: &Vars,
    ) {
        if matches!(init.unparen(), Expr::ContextItem) {
            // Existential semantics: the conjunct is false on an empty
            // path, so the branch is required below this node.
            self.lower_chain(pattern, Some(node), Edge::Child, steps, vars);
        } else {
            self.rooted_use(init, steps, vars);
        }
    }
}

/// Append a node to the pattern (creating the root when `cur` is
/// `None`). Returns `None` — without adding — once the pattern is at
/// the node cap, which truncates the chain conservatively.
fn add_node(
    pattern: &mut Option<Pattern>,
    cur: Option<usize>,
    edge: Edge,
    component: String,
    attribute: bool,
) -> Option<usize> {
    match (pattern.as_mut(), cur) {
        (Some(p), Some(parent)) => p.add_child(parent, edge, component, attribute),
        (Some(_), None) | (None, Some(_)) => None,
        (None, None) => {
            *pattern = Some(Pattern::root(edge, component, attribute));
            Some(0)
        }
    }
}

/// A concrete (fully named) name test, if this is one.
fn concrete_name(nt: &NameTest) -> Option<ExpandedName> {
    let LocalTest::Name(local) = &nt.local else { return None };
    match &nt.ns {
        NsTest::NoNamespace => Some(ExpandedName { ns: None, local: local.clone() }),
        NsTest::Uri(u) => Some(ExpandedName { ns: Some(u.clone()), local: local.clone() }),
        NsTest::Any => None,
    }
}

/// Flatten nested `and`s into conjuncts.
fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e.unparen() {
        Expr::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn extract(query: &str) -> HashMap<String, SourceTwig> {
        let q = xqdb_xquery::parse_query(query).unwrap();
        extract_twigs(&q.body, &AnalysisEnv::new(), true)
    }

    fn rendered(tw: &SourceTwig) -> Vec<String> {
        tw.patterns.iter().map(Pattern::render).collect()
    }

    const COL: &str = "db2-fn:xmlcolumn('ORDERS.ORDDOC')";

    #[test]
    fn pure_child_chain_is_left_to_the_prefilter() {
        assert!(extract(&format!("{COL}/order/custid")).is_empty());
    }

    #[test]
    fn leading_descendant_lowers() {
        let tw = extract(&format!("{COL}//order/custid"));
        assert_eq!(rendered(&tw["ORDERS.ORDDOC"]), vec!["//order[/custid]"]);
    }

    #[test]
    fn branching_predicate_lowers() {
        let tw = extract(&format!("{COL}/order[promo/code]/custid"));
        assert_eq!(
            rendered(&tw["ORDERS.ORDDOC"]),
            vec!["/order[/promo[/code]][/custid]"]
        );
    }

    #[test]
    fn paper_class_query_lowers_fully() {
        let tw = extract(&format!("{COL}//order[lineitem/@price > 100]//id"));
        assert_eq!(
            rendered(&tw["ORDERS.ORDDOC"]),
            vec!["//order[/lineitem[/@price]][//id]"]
        );
    }

    #[test]
    fn wildcard_truncates_but_keeps_prefix() {
        let tw = extract(&format!("{COL}//order/*/custid"));
        assert_eq!(rendered(&tw["ORDERS.ORDDOC"]), vec!["//order"]);
    }

    #[test]
    fn unlowerable_first_step_drops_source() {
        // `//*` cannot name a root: the use is accept-all.
        assert!(extract(&format!("{COL}//*/custid")).is_empty());
        // A second, lowerable use must not resurrect the source.
        assert!(extract(&format!("({COL}//*/custid, {COL}//order)")).is_empty());
    }

    #[test]
    fn bare_collection_use_drops_source() {
        assert!(extract(&format!("for $o in {COL} where $o//order return $o")).is_empty());
    }

    #[test]
    fn occurrence_guard_drops_unrecognized_uses() {
        assert!(extract(&format!("count({COL})")).is_empty());
        assert!(extract(&format!("({COL}//order, count({COL}))")).is_empty());
    }

    #[test]
    fn for_binding_lowers_and_var_uses_are_covered() {
        let tw = extract(&format!(
            "for $o in {COL}//order where $o/custid = 7 return $o/status"
        ));
        // $o-uses need no tracking: //order covers them.
        assert_eq!(rendered(&tw["ORDERS.ORDDOC"]), vec!["//order"]);
    }

    #[test]
    fn where_operands_become_independent_uses() {
        let tw = extract(&format!(
            "for $o in {COL}//order where {COL}/config//flag return $o"
        ));
        let r = rendered(&tw["ORDERS.ORDDOC"]);
        assert_eq!(r, vec!["//order", "/config[//flag]"]);
    }

    #[test]
    fn descendant_axis_spelled_out_lowers() {
        let tw = extract(&format!("{COL}/order/descendant::remark"));
        assert_eq!(rendered(&tw["ORDERS.ORDDOC"]), vec!["/order[//remark]"]);
    }

    #[test]
    fn descendant_attribute_lowers() {
        let tw = extract(&format!("{COL}//order[.//@price]"));
        assert_eq!(rendered(&tw["ORDERS.ORDDOC"]), vec!["//order[//@price]"]);
    }

    #[test]
    fn namespaced_steps_use_clark_components() {
        let tw = extract(&format!(
            "declare namespace p = \"urn:promo\"; {COL}//order/p:deal"
        ));
        assert_eq!(
            rendered(&tw["ORDERS.ORDDOC"]),
            vec!["//order[/{urn:promo}deal]"]
        );
    }

    #[test]
    fn sql_mode_roots_only_at_passing_vars() {
        let q = xqdb_xquery::parse_query(&format!("{COL}//order")).unwrap();
        assert!(extract_twigs(&q.body, &AnalysisEnv::new(), false).is_empty());

        let q = xqdb_xquery::parse_query("$O//order[lineitem/@price]").unwrap();
        let mut env = AnalysisEnv::new();
        env.bind_docs(ExpandedName::local("O"), "ORDERS.ORDDOC");
        let tw = extract_twigs(&q.body, &env, false);
        assert_eq!(
            rendered(&tw["ORDERS.ORDDOC"]),
            vec!["//order[/lineitem[/@price]]"]
        );
    }

    #[test]
    fn shadowed_passing_var_is_forgotten() {
        let q = xqdb_xquery::parse_query("for $O in (1, 2) return $O//order").unwrap();
        let mut env = AnalysisEnv::new();
        env.bind_docs(ExpandedName::local("O"), "ORDERS.ORDDOC");
        assert!(extract_twigs(&q.body, &env, false).is_empty());
    }

    #[test]
    fn end_to_end_against_real_labels() {
        use xqdb_storage::{Column, SqlType, SqlValue, Table};
        if !xqdb_twig::enabled_in_env() {
            // The lint gate's XQDB_TWIG=off pass: labels are never built,
            // so prepare correctly declines — nothing end-to-end to check.
            return;
        }
        let mut t = Table::new(
            "orders",
            vec![Column::new("id", SqlType::Integer), Column::new("doc", SqlType::Xml)],
        );
        let docs = [
            "<order><lineitem price=\"5\"><remark/></lineitem><id>1</id></order>",
            "<order><lineitem price=\"5\"/><id>2</id></order>",
            "<wrap><order><id>3</id></order></wrap>",
        ];
        for (i, xml) in docs.iter().enumerate() {
            let d = xqdb_xmlparse::parse_document(xml).unwrap();
            t.insert(vec![SqlValue::Integer(i as i64), SqlValue::Xml(d.root())]).unwrap();
        }
        let tw = extract(&format!("{COL}//order[lineitem/remark]//id"));
        let prepared = PreparedTwig::prepare(&tw["ORDERS.ORDDOC"], &t).unwrap();
        assert!(prepared.accepts(0));
        assert!(!prepared.accepts(1), "no remark branch");
        assert!(!prepared.accepts(2), "no lineitem at all");

        // The descendant root also matches the wrapped order.
        let tw = extract(&format!("{COL}//order[id]"));
        let prepared = PreparedTwig::prepare(&tw["ORDERS.ORDDOC"], &t).unwrap();
        assert!(prepared.accepts(0) && prepared.accepts(1) && prepared.accepts(2));
    }
}
