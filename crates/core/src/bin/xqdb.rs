//! `xqdb` — an interactive SQL/XML + XQuery shell over the engine.
//!
//! ```console
//! $ cargo run -p xqdb-core --bin xqdb
//! xqdb> create table orders (ordid integer, orddoc XML);
//! xqdb> CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double;
//! xqdb> INSERT INTO orders VALUES (1, '<order><lineitem price="250"/></order>');
//! xqdb> SELECT ordid FROM orders WHERE XMLExists('$o//lineitem[@price > 100]' passing orddoc as "o");
//! xqdb> xquery db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem;
//! xqdb> explain xquery db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100];
//! xqdb> .tables
//! xqdb> .indexes
//! ```
//!
//! Statements end with `;`. Lines starting with `.` are shell commands.
//! Prefix `xquery` runs the standalone XQuery interface;
//! `explain xquery` plans without executing. Everything else is SQL.

use std::io::{self, BufRead, Write};

use xqdb_core::sqlxml::SqlSession;
use xqdb_core::AnalysisEnv;

fn main() {
    let mut session = SqlSession::new();
    let stdin = io::stdin();
    let mut buffer = String::new();
    print!("xqdb — XML database shell (statements end with ';', '.help' for help)\nxqdb> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !dot_command(&session, trimmed) {
                break;
            }
            print!("xqdb> ");
            io::stdout().flush().ok();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print!("   -> ");
            io::stdout().flush().ok();
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if !stmt.is_empty() {
            run_statement(&mut session, &stmt);
        }
        print!("xqdb> ");
        io::stdout().flush().ok();
    }
}

fn run_statement(session: &mut SqlSession, stmt: &str) {
    let lower = stmt.to_ascii_lowercase();
    if let Some(rest) = lower
        .strip_prefix("explain xquery")
        .map(|_| stmt["explain xquery".len()..].trim())
    {
        match xqdb_xquery::parse_query(rest) {
            Ok(q) => {
                let plan = xqdb_core::plan_query(&session.catalog, q, &AnalysisEnv::new());
                print!("{}", xqdb_core::explain(&plan));
            }
            Err(e) => println!("error: {e}"),
        }
        return;
    }
    if let Some(rest) = lower.strip_prefix("xquery").map(|_| stmt["xquery".len()..].trim()) {
        match xqdb_core::run_xquery(&session.catalog, rest) {
            Ok(out) => {
                for (i, item) in out.sequence.iter().enumerate() {
                    println!(
                        "row {}: {}",
                        i + 1,
                        xqdb_xmlparse::serialize_sequence(std::slice::from_ref(item))
                    );
                }
                let evaluated: usize = out.stats.docs_evaluated.values().sum();
                let total: usize = out.stats.docs_total.values().sum();
                println!(
                    "-- {} item(s); {evaluated}/{total} documents evaluated, {} index entries",
                    out.sequence.len(),
                    out.stats.index_entries_scanned
                );
            }
            Err(e) => println!("error: {e}"),
        }
        return;
    }
    match session.execute(stmt) {
        Ok(result) => {
            print!("{}", result.render());
            if !result.rows.is_empty() {
                println!("-- {} row(s)", result.rows.len());
            }
        }
        Err(e) => println!("error: {e}"),
    }
}

/// Returns false to exit the shell.
fn dot_command(session: &SqlSession, cmd: &str) -> bool {
    match cmd {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                "statements end with ';'\n\
                 SQL:          CREATE TABLE/INDEX, INSERT, SELECT (XMLQUERY/XMLEXISTS/XMLTABLE/XMLCAST), EXPLAIN SELECT, VALUES\n\
                 XQuery:       xquery <expr>;        explain xquery <expr>;\n\
                 shell:        .tables  .indexes  .help  .quit"
            );
        }
        ".tables" => {
            for name in session.catalog.db.table_names() {
                let t = session.catalog.db.table(name).expect("listed table exists");
                let cols: Vec<String> =
                    t.columns.iter().map(|c| format!("{} {}", c.name, c.ty)).collect();
                println!("{name} ({}) — {} rows", cols.join(", "), t.len());
            }
        }
        ".indexes" => {
            for idx in session.catalog.all_indexes() {
                println!(
                    "{} ON {}({}) USING XMLPATTERN '{}' AS {} — {} entries ({} skipped)",
                    idx.name, idx.table, idx.column, idx.pattern, idx.ty,
                    idx.len(), idx.skipped_nodes
                );
            }
        }
        other => println!("unknown command {other}; try .help"),
    }
    true
}
