//! Structural pre-filter: conservative required-path extraction.
//!
//! Given a query, find rooted element/attribute paths a document **must**
//! contain for it to contribute anything to the result, then test each
//! stored document's [`PathSignature`] before per-document evaluation.
//! This is the Definition 1 contract applied to structure instead of
//! values: the signature check may pass documents that don't match (hash
//! collisions, predicates it can't see), but it must **never** drop a
//! document that could contribute — false positives allowed, false
//! negatives never.
//!
//! ## Requirement groups, OR'd per source
//!
//! A document can contribute to a query through more than one *use* of its
//! collection — two `for` clauses over the same source form a cartesian
//! product, a `let` plus a separate path are independent uses. Each
//! recognized use therefore produces one **group** of required paths
//! (conjunctive within the group), and a document is kept if **any**
//! group's paths are all present:
//!
//! ```text
//! keep(doc) = ∃ group g : sig(doc) ⊇ g.signature
//! ```
//!
//! Soundness rests on one observation: a use rooted at a path `p₁/…/pₙ` of
//! child/attribute steps contributes the empty sequence on any document
//! lacking that rooted path — and positions, aggregates and node sequences
//! are computed over non-empty contributions only, so dropping such a
//! document cannot change what the use produces for the surviving ones.
//!
//! ## Conservative extraction rules
//!
//! Extraction walks only shapes it fully understands and stops — keeping
//! the exact prefix built so far — at the first uncertain step:
//!
//! * `child::name` with a concrete (namespace-resolved, Tip 9) name
//!   extends the path; `@name` extends and terminates it.
//! * `//`, `descendant::`, wildcards, kind tests, `self::`, `parent::`
//!   and filter steps stop extension (a safe prefix is still required).
//! * `for $v in <rooted path>` opens a group; uses of `$v` in `where`
//!   conjuncts, nested `for`s and step predicates tighten **that** group.
//! * `let $v := <rooted path>` emits its base path as a group eagerly
//!   (covering every later use, including in `return`); each recognized
//!   use of `$v` adds its own, stricter group. `let $v := collection()`
//!   emits an **empty** group — no filtering — because `count($v)` must
//!   see every document.
//! * `where` conjuncts (after `and`-flattening): a rooted path requires
//!   itself; general/value comparisons require their rooted-path operands
//!   (existential semantics: an empty operand makes the conjunct false).
//! * `or`, `not()`, quantified expressions, function calls and the
//!   `return` clause contribute **nothing**.
//!
//! Two guards close the remaining holes:
//!
//! * **Occurrence count** (engine only): if the query mentions
//!   `db2-fn:xmlcolumn('S')` more times than the extractor recognized as
//!   uses (e.g. inside `count(...)`), every requirement for `S` is
//!   dropped.
//! * **SQL row filtering** (`recognize_xmlcolumn = false`): inside an SQL
//!   `XMLEXISTS`, only PASSING-variable uses say anything about *which
//!   row* passes; an embedded `xmlcolumn()` call is collection-global, so
//!   its groups must not filter rows and the extractor never creates them.

use std::collections::HashMap;

use xqdb_storage::{
    extend_attribute, extend_element, render_component, PathSignature, PATH_HASH_SEED,
};
use xqdb_xdm::ExpandedName;
use xqdb_xquery::ast::{
    Axis, Expr, Flwor, FlworClause, LocalTest, NameTest, NodeTest, NsTest, Step,
};

use crate::eligibility::AnalysisEnv;
use crate::engine::{visit_exprs, xmlcolumn_literal};

/// One component of a required rooted path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathComponent {
    /// A child element with a concrete expanded name.
    Element(ExpandedName),
    /// An attribute with a concrete expanded name (always terminal).
    Attribute(ExpandedName),
}

/// A rooted path a document must contain (non-empty component chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequiredPath {
    /// Components from the document root down.
    pub components: Vec<PathComponent>,
}

impl RequiredPath {
    /// The path's signature hash — same incremental construction the
    /// storage layer uses at insert time, so bits line up.
    pub fn hash(&self) -> u64 {
        let mut h = PATH_HASH_SEED;
        for c in &self.components {
            h = match c {
                PathComponent::Element(n) => extend_element(h, n),
                PathComponent::Attribute(n) => extend_attribute(h, n),
            };
        }
        h
    }

    /// Render in the storage synopsis's clark form (`/{ns}a/b/@c`), for
    /// EXPLAIN notes and the exact-path property tests.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.components {
            match c {
                PathComponent::Element(n) => render_component(&mut out, false, n),
                PathComponent::Attribute(n) => render_component(&mut out, true, n),
            }
        }
        out
    }
}

/// One conjunctive group of required paths (one recognized use of the
/// source), with the precomputed signature of all its path hashes.
#[derive(Debug, Clone)]
pub struct RequiredGroup {
    /// The paths; all must be present for this group to accept a document.
    pub paths: Vec<RequiredPath>,
    /// Union of the paths' signature bits.
    pub signature: PathSignature,
}

impl RequiredGroup {
    /// Conservative test: this group accepts the document signature.
    pub fn accepts(&self, sig: &PathSignature) -> bool {
        sig.contains_all(&self.signature)
    }
}

/// The pre-filter for one source: a document is kept iff **any** group
/// accepts it. Construction guarantees at least one group, each non-empty
/// (an empty group accepts everything, so the whole source entry is
/// dropped instead).
#[derive(Debug, Clone)]
pub struct SourcePrefilter {
    /// The OR'd requirement groups.
    pub groups: Vec<RequiredGroup>,
}

impl SourcePrefilter {
    /// True if the document with this signature may contribute.
    pub fn accepts(&self, sig: &PathSignature) -> bool {
        self.groups.iter().any(|g| g.accepts(sig))
    }

    /// Rendered `paths | paths | ...` form for plan notes.
    pub fn render(&self) -> String {
        let groups: Vec<String> = self
            .groups
            .iter()
            .map(|g| {
                let paths: Vec<String> = g.paths.iter().map(RequiredPath::render).collect();
                paths.join(" & ")
            })
            .collect();
        groups.join(" | ")
    }
}

/// Extract per-source pre-filters from a query body.
///
/// `env` supplies the doc-level variable bindings (SQL PASSING clauses);
/// `recognize_xmlcolumn` controls whether direct `db2-fn:xmlcolumn()`
/// calls may anchor requirement groups (true for the XQuery engine's
/// collection scans, **false** for SQL row filtering — see module docs).
pub fn extract_prefilters(
    body: &Expr,
    env: &AnalysisEnv,
    recognize_xmlcolumn: bool,
) -> HashMap<String, SourcePrefilter> {
    let mut ex = Extractor {
        groups: HashMap::new(),
        recognized: HashMap::new(),
        recognize_xmlcolumn,
    };
    let vars: Vars = env
        .doc_bindings()
        .map(|(v, b)| {
            (v.clone(), Binding::Seed { source: b.source.clone(), prefix: Vec::new() })
        })
        .collect();
    ex.collect(body, &vars);

    // Occurrence guard: any xmlcolumn('S') occurrence the walk did not
    // recognize as a use (aggregate argument, unusual shape, ...) could let
    // S's documents contribute some other way — drop S's requirements.
    if recognize_xmlcolumn {
        let mut total: HashMap<String, usize> = HashMap::new();
        visit_exprs(body, &mut |e| {
            if let Some(src) = xmlcolumn_literal(e) {
                *total.entry(src).or_insert(0) += 1;
            }
        });
        ex.groups.retain(|src, _| {
            total.get(src).copied().unwrap_or(0) == ex.recognized.get(src).copied().unwrap_or(0)
        });
    }

    ex.groups
        .into_iter()
        .filter_map(|(src, groups)| {
            // An empty group accepts every document; it makes the whole
            // disjunction vacuous, so no filter for this source.
            if groups.is_empty() || groups.iter().any(Vec::is_empty) {
                return None;
            }
            let groups = groups
                .into_iter()
                .map(|paths| {
                    let mut signature = PathSignature::default();
                    for p in &paths {
                        signature.set_hash(p.hash());
                    }
                    RequiredGroup { paths, signature }
                })
                .collect();
            Some((src, SourcePrefilter { groups }))
        })
        .collect()
}

/// Variable bindings the extractor tracks. Anything else (positional
/// variables, unrecognized `let`s) is simply absent — its uses contribute
/// nothing, which is always safe.
#[derive(Clone)]
enum Binding {
    /// A `for` variable: its uses tighten group `group` of `source`.
    /// `prefix` is the exact rooted path of the bound nodes; `exact` is
    /// false once an uncertain step occurred, after which uses can no
    /// longer extend paths (but the group's existing requirements stand).
    For { source: String, group: usize, prefix: Vec<PathComponent>, exact: bool },
    /// A document-level binding (SQL PASSING var) or a `let` over a rooted
    /// path: each recognized use opens a **new** group seeded from
    /// `prefix`. Never tightens an existing group — a second use must not
    /// inherit the first use's requirements.
    Seed { source: String, prefix: Vec<PathComponent> },
}

type Vars = HashMap<ExpandedName, Binding>;

/// Where an emitted path goes: an existing group or a fresh one.
struct Target {
    source: String,
    group: usize,
    prefix: Vec<PathComponent>,
    exact: bool,
}

struct Extractor {
    /// Per-source requirement groups under construction.
    groups: HashMap<String, Vec<Vec<RequiredPath>>>,
    /// Per-source count of `xmlcolumn()` occurrences the walk recognized.
    recognized: HashMap<String, usize>,
    recognize_xmlcolumn: bool,
}

impl Extractor {
    /// Walk a top-level expression position (query body, return values are
    /// *not* walked — see module docs).
    fn collect(&mut self, expr: &Expr, vars: &Vars) {
        match expr.unparen() {
            Expr::Path { init, steps } => {
                self.rooted_use(init, steps, vars);
            }
            Expr::Flwor(f) => self.flwor(f, vars),
            // Comma sequence: each item is an independent use, OR'd like
            // any other pair of uses.
            Expr::Sequence(items) => {
                for item in items {
                    self.collect(item, vars);
                }
            }
            Expr::FunctionCall { .. } => {
                // A bare xmlcolumn('S') at a top-level position returns all
                // of S's documents: recognize the occurrence with an empty
                // group (no filtering for S).
                if let Some(src) = self.xmlcolumn(expr.unparen()) {
                    self.groups.entry(src).or_default().push(Vec::new());
                }
            }
            _ => {}
        }
    }

    fn flwor(&mut self, f: &Flwor, outer: &Vars) {
        let mut vars = outer.clone();
        for clause in &f.clauses {
            match clause {
                FlworClause::For { var, position, expr } => {
                    let binding = self.use_target(expr, &vars).map(
                        |Target { source, group, prefix, exact }| Binding::For {
                            source,
                            group,
                            prefix,
                            exact,
                        },
                    );
                    match binding {
                        Some(b) => {
                            vars.insert(var.clone(), b);
                        }
                        // Shadow any outer binding of the same name: the
                        // new, unrecognized value must not be mistaken for
                        // the outer one.
                        None => {
                            vars.remove(var);
                        }
                    }
                    if let Some(p) = position {
                        vars.remove(p);
                    }
                }
                FlworClause::Let { var, expr } => {
                    match self.use_target(expr, &vars) {
                        Some(t) => {
                            // The use_target call above already emitted the
                            // binding path into its own (new or existing)
                            // group — that is the eager base group covering
                            // any use of the variable, including in
                            // `return`. Later uses seed fresh groups.
                            vars.insert(
                                var.clone(),
                                if t.exact {
                                    Binding::Seed { source: t.source, prefix: t.prefix }
                                } else {
                                    // Inexact tail: uses may reach nodes
                                    // below paths we can name, so a use
                                    // must not require more than the base
                                    // group already does. An empty-prefix
                                    // seed would still be sound but each
                                    // use would add a vacuous empty group,
                                    // wiping out the base group's filter —
                                    // drop the binding instead.
                                    Binding::Seed { source: t.source, prefix: Vec::new() }
                                },
                            );
                        }
                        None => {
                            vars.remove(var);
                        }
                    }
                }
                FlworClause::Where(cond) => {
                    let mut conjuncts = Vec::new();
                    flatten_and(cond, &mut conjuncts);
                    for c in conjuncts {
                        self.condition(c, &vars);
                    }
                }
                // Ordering only permutes tuples; key expressions over empty
                // sequences are allowed (`empty least`), so they impose no
                // structural requirement and must not tighten any group.
                FlworClause::OrderBy(_) => {}
            }
        }
        // `f.ret` deliberately not walked: for-var uses there are already
        // covered by their groups, let/doc-var uses by eager base groups,
        // and xmlcolumn uses by the occurrence guard.
    }

    /// One `where` conjunct (or `XMLEXISTS` conjunct).
    fn condition(&mut self, cond: &Expr, vars: &Vars) {
        match cond.unparen() {
            Expr::Path { init, steps } => {
                self.rooted_use(init, steps, vars);
            }
            Expr::Flwor(f) => self.flwor(f, vars),
            Expr::GeneralCmp(_, a, b) | Expr::ValueCmp(_, a, b) => {
                // Existential semantics: an empty operand makes the
                // comparison false/empty, so each rooted-path operand is
                // required.
                self.operand(a, vars);
                self.operand(b, vars);
            }
            // `or`, `not()`, quantifiers (`every` over an empty sequence is
            // true!), arithmetic, everything else: no requirement.
            _ => {}
        }
    }

    fn operand(&mut self, e: &Expr, vars: &Vars) {
        if let Expr::Path { init, steps } = e.unparen() {
            self.rooted_use(init, steps, vars);
        }
    }

    /// A rooted-path use in a non-binding position: emit its requirements.
    fn rooted_use(&mut self, init: &Expr, steps: &[Step], vars: &Vars) {
        self.follow(init, steps, vars);
    }

    /// A rooted-path use in a binding position (`for`/`let`): emit its
    /// requirements and return where the bound nodes live.
    fn use_target(&mut self, expr: &Expr, vars: &Vars) -> Option<Target> {
        match expr.unparen() {
            Expr::Path { init, steps } => self.follow(init, steps, vars),
            // `for $y in $x` / bare xmlcolumn(): a path with no steps.
            other => self.follow(other, &[], vars),
        }
    }

    /// Resolve the root of a path use, walk its steps, emit the resulting
    /// required paths, and return the end position.
    fn follow(&mut self, init: &Expr, steps: &[Step], vars: &Vars) -> Option<Target> {
        let mut t = self.resolve_init(init, vars)?;
        for step in steps {
            if !t.exact {
                break;
            }
            match step {
                Step::Axis { axis: Axis::Child, test: NodeTest::Name(nt), predicates } => {
                    let Some(name) = concrete_name(nt) else {
                        t.exact = false;
                        break;
                    };
                    t.prefix.push(PathComponent::Element(name));
                    for p in predicates {
                        self.predicate(p, &t, vars);
                    }
                }
                Step::Axis { axis: Axis::Attribute, test: NodeTest::Name(nt), .. } => {
                    if let Some(name) = concrete_name(nt) {
                        t.prefix.push(PathComponent::Attribute(name));
                    }
                    // Attributes are terminal in the synopsis; anything
                    // past this step is uncertain either way.
                    t.exact = false;
                    break;
                }
                // `//`, descendant, self, parent, kind tests, filter
                // steps: stop extending; the prefix so far is still a
                // sound requirement.
                _ => {
                    t.exact = false;
                    break;
                }
            }
        }
        // Emit the deepest exact path of this use. (Prefixes are implied:
        // a real document containing /a/b also contains /a.) Emitting even
        // a zero-step use's seed prefix matters: it keeps the use's group
        // non-empty, so an alias use like `for $y in $x` doesn't create a
        // vacuous accept-everything group.
        self.emit(&t);
        Some(t)
    }

    /// Resolve what a path's `init` expression is rooted at. Creates the
    /// use's group (so step predicates have somewhere to emit).
    fn resolve_init(&mut self, init: &Expr, vars: &Vars) -> Option<Target> {
        match init.unparen() {
            Expr::VarRef(v) => match vars.get(v)? {
                Binding::For { source, group, prefix, exact } => Some(Target {
                    source: source.clone(),
                    group: *group,
                    prefix: prefix.clone(),
                    exact: *exact,
                }),
                Binding::Seed { source, prefix } => {
                    Some(self.new_group(source.clone(), prefix.clone()))
                }
            },
            // `$x[pred]/...` — resolve the inner root, then apply the
            // filter predicates at its position.
            Expr::Filter { expr, predicates } => {
                let t = self.resolve_init(expr, vars)?;
                for p in predicates {
                    self.predicate(p, &t, vars);
                }
                Some(t)
            }
            e => {
                let src = self.xmlcolumn(e)?;
                Some(self.new_group(src, Vec::new()))
            }
        }
    }

    /// Recognize `db2-fn:xmlcolumn('S')` (when enabled) and count it.
    fn xmlcolumn(&mut self, e: &Expr) -> Option<String> {
        if !self.recognize_xmlcolumn {
            return None;
        }
        let src = xmlcolumn_literal(e)?;
        *self.recognized.entry(src.clone()).or_insert(0) += 1;
        Some(src)
    }

    fn new_group(&mut self, source: String, prefix: Vec<PathComponent>) -> Target {
        let groups = self.groups.entry(source.clone()).or_default();
        groups.push(Vec::new());
        Target { source, group: groups.len() - 1, prefix, exact: true }
    }

    /// Add the target's current prefix as a required path of its group.
    fn emit(&mut self, t: &Target) {
        if t.prefix.is_empty() {
            return;
        }
        if let Some(groups) = self.groups.get_mut(&t.source) {
            if let Some(g) = groups.get_mut(t.group) {
                let path = RequiredPath { components: t.prefix.clone() };
                if !g.contains(&path) {
                    g.push(path);
                }
            }
        }
    }

    /// A step/filter predicate evaluated at position `at` (which is exact —
    /// callers only reach here while walking exact prefixes). Conjuncts
    /// that are context-relative or var-rooted paths add requirements.
    fn predicate(&mut self, pred: &Expr, at: &Target, vars: &Vars) {
        if !at.exact {
            return;
        }
        let mut conjuncts = Vec::new();
        flatten_and(pred, &mut conjuncts);
        for c in conjuncts {
            match c.unparen() {
                Expr::Path { init, steps } => self.predicate_path(init, steps, at, vars),
                Expr::GeneralCmp(_, a, b) | Expr::ValueCmp(_, a, b) => {
                    for op in [a, b] {
                        if let Expr::Path { init, steps } = op.unparen() {
                            self.predicate_path(init, steps, at, vars);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// A path inside a predicate: context-relative paths extend the
    /// enclosing use's group from its current position; independently
    /// rooted paths are ordinary uses.
    fn predicate_path(&mut self, init: &Expr, steps: &[Step], at: &Target, vars: &Vars) {
        if matches!(init.unparen(), Expr::ContextItem) {
            let mut t = Target {
                source: at.source.clone(),
                group: at.group,
                prefix: at.prefix.clone(),
                exact: true,
            };
            let base_len = t.prefix.len();
            for step in steps {
                if !t.exact {
                    break;
                }
                match step {
                    Step::Axis { axis: Axis::Child, test: NodeTest::Name(nt), predicates } => {
                        let Some(name) = concrete_name(nt) else {
                            t.exact = false;
                            break;
                        };
                        t.prefix.push(PathComponent::Element(name));
                        for p in predicates {
                            self.predicate(p, &t, vars);
                        }
                    }
                    Step::Axis { axis: Axis::Attribute, test: NodeTest::Name(nt), .. } => {
                        if let Some(name) = concrete_name(nt) {
                            t.prefix.push(PathComponent::Attribute(name));
                        }
                        t.exact = false;
                        break;
                    }
                    _ => {
                        t.exact = false;
                        break;
                    }
                }
            }
            if t.prefix.len() > base_len {
                self.emit(&t);
            }
        } else {
            self.rooted_use(init, steps, vars);
        }
    }
}

/// A concrete (fully named) name test, if this is one.
fn concrete_name(nt: &NameTest) -> Option<ExpandedName> {
    let LocalTest::Name(local) = &nt.local else { return None };
    match &nt.ns {
        NsTest::NoNamespace => Some(ExpandedName { ns: None, local: local.clone() }),
        NsTest::Uri(u) => Some(ExpandedName { ns: Some(u.clone()), local: local.clone() }),
        NsTest::Any => None,
    }
}

/// Flatten nested `and`s into conjuncts.
fn flatten_and<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    match e.unparen() {
        Expr::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn extract(query: &str) -> HashMap<String, SourcePrefilter> {
        let q = xqdb_xquery::parse_query(query).unwrap();
        extract_prefilters(&q.body, &AnalysisEnv::new(), true)
    }

    fn rendered(pf: &SourcePrefilter) -> Vec<Vec<String>> {
        pf.groups
            .iter()
            .map(|g| {
                let mut v: Vec<String> = g.paths.iter().map(RequiredPath::render).collect();
                v.sort();
                v
            })
            .collect()
    }

    const COL: &str = "db2-fn:xmlcolumn('ORDERS.ORDDOC')";

    #[test]
    fn simple_child_path() {
        let pf = extract(&format!("{COL}/order/custid"));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(rendered(f), vec![vec!["/order/custid".to_string()]]);
    }

    #[test]
    fn predicate_paths_join_the_group() {
        let pf = extract(&format!("{COL}/order[promo/code]/custid"));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(f.groups.len(), 1);
        assert_eq!(
            rendered(f),
            vec![vec!["/order/custid".to_string(), "/order/promo/code".to_string()]]
        );
    }

    #[test]
    fn attribute_terminates() {
        let pf = extract(&format!("{COL}/order/lineitem/@price"));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(rendered(f), vec![vec!["/order/lineitem/@price".to_string()]]);
    }

    #[test]
    fn descendant_keeps_safe_prefix() {
        let pf = extract(&format!("{COL}/order//custid"));
        let f = &pf["ORDERS.ORDDOC"];
        // `//` stops extension; only /order is required.
        assert_eq!(rendered(f), vec![vec!["/order".to_string()]]);
    }

    #[test]
    fn leading_descendant_yields_no_filter() {
        let pf = extract(&format!("{COL}//order"));
        assert!(pf.is_empty());
    }

    #[test]
    fn wildcard_stops_extension() {
        let pf = extract(&format!("{COL}/order/*/custid"));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(rendered(f), vec![vec!["/order".to_string()]]);
    }

    #[test]
    fn for_where_tightens_one_group() {
        let pf = extract(&format!(
            "for $o in {COL}/order where $o/custid = 7 and $o/status return $o"
        ));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(f.groups.len(), 1);
        assert_eq!(
            rendered(f),
            vec![vec![
                "/order".to_string(),
                "/order/custid".to_string(),
                "/order/status".to_string(),
            ]]
        );
    }

    #[test]
    fn for_over_bare_collection_tightened_by_where() {
        let pf = extract(&format!("for $o in {COL} where $o/order/custid = 7 return $o"));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(rendered(f), vec![vec!["/order/custid".to_string()]]);
    }

    #[test]
    fn two_fors_make_two_groups() {
        let pf = extract(&format!(
            "for $a in {COL}/order/a for $b in {COL}/order/b return ($a, $b)"
        ));
        let f = &pf["ORDERS.ORDDOC"];
        // A document contributes through either for: groups are OR'd.
        assert_eq!(f.groups.len(), 2);
        assert_eq!(
            rendered(f),
            vec![vec!["/order/a".to_string()], vec!["/order/b".to_string()]]
        );
    }

    #[test]
    fn count_of_collection_poisons_source() {
        let pf = extract(&format!("count({COL})"));
        assert!(pf.is_empty(), "aggregate over whole collection must not filter");
        let pf = extract(&format!("({COL}/order/a, count({COL}))"));
        assert!(pf.is_empty(), "any unrecognized occurrence drops the source");
    }

    #[test]
    fn let_over_collection_blocks_filtering() {
        let pf = extract(&format!("let $x := {COL} return count($x)"));
        assert!(pf.is_empty(), "let over the whole collection requires nothing");
    }

    #[test]
    fn let_over_rooted_path_emits_base_group() {
        let pf = extract(&format!("let $x := {COL}/order/promo return count($x)"));
        let f = &pf["ORDERS.ORDDOC"];
        // count($x) is 0 for docs without /order/promo — still correct to
        // skip them? No! count() over an empty sequence is 0, and the query
        // returns that 0 regardless of which documents exist... but the
        // count is a single global value computed over the *kept* docs'
        // contributions; skipping docs with no /order/promo removes only
        // empty contributions, leaving the count unchanged.
        assert_eq!(rendered(f), vec![vec!["/order/promo".to_string()]]);
    }

    #[test]
    fn let_uses_spawn_independent_groups() {
        let pf = extract(&format!(
            "let $x := {COL}/order where $x/a and $x/b return 1"
        ));
        let f = &pf["ORDERS.ORDDOC"];
        // Base group /order, plus one group per use. Each use's group is
        // independent: requiring a AND b would be unsound if the two uses
        // were under different `or` branches, so they stay separate.
        assert_eq!(f.groups.len(), 3);
        assert_eq!(
            rendered(f),
            vec![
                vec!["/order".to_string()],
                vec!["/order/a".to_string()],
                vec!["/order/b".to_string()],
            ]
        );
    }

    #[test]
    fn or_contributes_nothing_but_base_groups_remain() {
        let pf = extract(&format!(
            "for $o in {COL}/order where $o/a or $o/b return $o"
        ));
        let f = &pf["ORDERS.ORDDOC"];
        // The or-disjuncts must not tighten the group; the binding path
        // alone is required.
        assert_eq!(rendered(f), vec![vec!["/order".to_string()]]);
    }

    #[test]
    fn comparison_operands_are_required() {
        let pf = extract(&format!(
            "for $o in {COL}/order where $o/lineitem/@price > 100 return $o/custid"
        ));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(
            rendered(f),
            vec![vec!["/order".to_string(), "/order/lineitem/@price".to_string()]]
        );
    }

    #[test]
    fn namespaced_steps_use_resolved_uris() {
        let pf = extract(&format!(
            "declare namespace p = \"urn:promo\"; {COL}/order/p:deal"
        ));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(rendered(f), vec![vec!["/order/{urn:promo}deal".to_string()]]);
    }

    #[test]
    fn nested_for_over_var_tightens_parent_group() {
        let pf = extract(&format!(
            "for $o in {COL}/order for $l in $o/lineitem where $l/@price > 1 return $l"
        ));
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(f.groups.len(), 1);
        assert_eq!(
            rendered(f),
            vec![vec![
                "/order".to_string(),
                "/order/lineitem".to_string(),
                "/order/lineitem/@price".to_string(),
            ]]
        );
    }

    #[test]
    fn positional_predicates_do_not_over_require() {
        let pf = extract(&format!("{COL}/order[2]/custid"));
        let f = &pf["ORDERS.ORDDOC"];
        // [2] contributes nothing; /order/custid still required. Positions
        // are computed over surviving documents' non-empty contributions,
        // so collection-level filtering is safe.
        assert_eq!(rendered(f), vec![vec!["/order/custid".to_string()]]);
    }

    #[test]
    fn sql_mode_ignores_xmlcolumn() {
        let q = xqdb_xquery::parse_query(&format!("{COL}/order/custid")).unwrap();
        let pf = extract_prefilters(&q.body, &AnalysisEnv::new(), false);
        assert!(pf.is_empty(), "SQL row filtering must not use xmlcolumn groups");
    }

    #[test]
    fn passing_var_binding_filters_in_sql_mode() {
        let q = xqdb_xquery::parse_query("$O/order[promo/code]").unwrap();
        let mut env = AnalysisEnv::new();
        env.bind_docs(xqdb_xdm::ExpandedName::local("O"), "ORDERS.ORDDOC");
        let pf = extract_prefilters(&q.body, &env, false);
        let f = &pf["ORDERS.ORDDOC"];
        assert_eq!(
            rendered(f),
            vec![vec!["/order".to_string(), "/order/promo/code".to_string()]]
        );
    }

    #[test]
    fn unused_passing_var_yields_no_filter() {
        let q = xqdb_xquery::parse_query("1 = 1").unwrap();
        let mut env = AnalysisEnv::new();
        env.bind_docs(xqdb_xdm::ExpandedName::local("O"), "ORDERS.ORDDOC");
        let pf = extract_prefilters(&q.body, &env, false);
        assert!(pf.is_empty());
    }

    #[test]
    fn hash_matches_storage_side() {
        let doc = xqdb_xmlparse::parse_document("<order><promo><code/></promo></order>").unwrap();
        let sig = xqdb_storage::signature_for_document(&doc.root());
        let pf = extract(&format!("{COL}/order/promo/code"));
        let f = &pf["ORDERS.ORDDOC"];
        assert!(f.accepts(&sig));
        let other = xqdb_xmlparse::parse_document("<order><x/></order>").unwrap();
        let osig = xqdb_storage::signature_for_document(&other.root());
        assert!(!f.accepts(&osig));
    }
}
