//! Rebuild-oracle verification of derived state.
//!
//! DELETE and REPLACE maintain four derived structures incrementally —
//! B+Tree index entries, the per-table path synopsis, per-row path
//! signatures, and the twig-join label streams. The contract for every
//! one of them is *rebuild equality*: the incrementally-maintained
//! structure must hold exactly what a from-scratch rebuild over the
//! surviving rows would produce. [`verify_derived_state`] checks that
//! contract, and the chaos/property suites run it after every recovery
//! and every random interleaving.
//!
//! Mismatches are **verdicts**, not errors: the pass inspects as much as
//! it can, collects every discrepancy it finds, and only returns `Err`
//! when the storage layer itself fails (a page fault mid-scan). It never
//! panics on inconsistent state — `xqdb verify` runs it against
//! arbitrary on-disk directories.

use std::collections::BTreeMap;

use xqdb_storage::{observe_document_labeled, PathSynopsis, SqlValue, ValueStats};
use xqdb_twig::{LabelEntry, LabelStore};
use xqdb_xdm::XdmError;

use crate::catalog::Catalog;

/// Verification outcome for one table (indexes on the table included).
#[derive(Debug)]
pub struct TableVerdict {
    /// Table name.
    pub table: String,
    /// Live rows inspected.
    pub rows: usize,
    /// Every discrepancy found (empty = the table verified clean).
    pub issues: Vec<String>,
}

impl TableVerdict {
    /// True if no discrepancy was found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }
}

/// The full report of a [`verify_derived_state`] pass.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Per-table verdicts, sorted by table name.
    pub tables: Vec<TableVerdict>,
}

impl VerifyReport {
    /// True if every table verified clean.
    pub fn is_clean(&self) -> bool {
        self.tables.iter().all(TableVerdict::is_clean)
    }

    /// Total discrepancies across all tables.
    pub fn issue_count(&self) -> usize {
        self.tables.iter().map(|t| t.issues.len()).sum()
    }

    /// Render per-table verdicts, `xqdb verify`'s output format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for t in &self.tables {
            if t.is_clean() {
                out.push_str(&format!("table {}: OK ({} live row(s))\n", t.table, t.rows));
            } else {
                out.push_str(&format!(
                    "table {}: {} issue(s) over {} live row(s)\n",
                    t.table,
                    t.issues.len(),
                    t.rows
                ));
                for issue in &t.issues {
                    out.push_str(&format!("  - {issue}\n"));
                }
            }
        }
        out
    }
}

/// Verify every table's derived state against a from-scratch rebuild over
/// its live rows: synopsis entries, per-row signatures, label streams
/// (when the store vouches for the table), index keys and skip counters,
/// and the live-row bookkeeping itself.
pub fn verify_derived_state(catalog: &Catalog) -> Result<VerifyReport, XdmError> {
    let mut report = VerifyReport::default();
    let mut names: Vec<String> =
        catalog.db.table_names().into_iter().map(str::to_string).collect();
    names.sort();
    for name in names {
        report.tables.push(verify_table(catalog, &name)?);
    }
    Ok(report)
}

fn verify_table(catalog: &Catalog, name: &str) -> Result<TableVerdict, XdmError> {
    let t = catalog
        .db
        .table(name)
        .ok_or_else(|| XdmError::internal(format!("table {name} vanished during verify")))?;
    let mut issues = Vec::new();

    // One pass over the live rows rebuilds everything at once, in rowid
    // order — the order ingest observed them in.
    let mut synopsis = PathSynopsis::default();
    let mut labels = LabelStore::default();
    let check_labels = t.labels().is_complete_for(t.len() as u64);
    let mut live = 0usize;
    let mut live_rows: Vec<(usize, Vec<SqlValue>)> = Vec::new();
    for item in t.scan() {
        let (rid, values) = item?;
        live += 1;
        if t.is_deleted(rid) {
            issues.push(format!("row {rid}: deleted row surfaced in scan"));
        }
        let mut sig = xqdb_storage::PathSignature::default();
        let mut cell = 0u32;
        for v in &values {
            if let SqlValue::Xml(n) = v {
                let this_cell = cell;
                sig.union_with(&observe_document_labeled(
                    n,
                    Some(&mut synopsis),
                    &mut |path, pre, post, level| {
                        labels.record_label(
                            path,
                            LabelEntry { row: rid as u64, cell: this_cell, pre, post, level },
                        );
                    },
                ));
                cell += 1;
            }
        }
        labels.finish_row();
        match t.signature(rid) {
            None => issues.push(format!("row {rid}: live row has no signature")),
            Some(stored) if stored.words() != sig.words() => {
                issues.push(format!("row {rid}: stored signature differs from rebuild"));
            }
            Some(_) => {}
        }
        live_rows.push((rid, values));
    }

    // Live-row bookkeeping.
    if live != t.live_len() {
        issues.push(format!(
            "live_len() reports {} but the scan produced {live} row(s)",
            t.live_len()
        ));
    }
    for rid in t.deleted_rows() {
        if t.signature(rid as usize).is_some() {
            issues.push(format!("row {rid}: deleted row still has a signature"));
        }
    }

    // Synopsis: entry-for-entry equality with the rebuild (paths AND
    // per-path document counts — a count left non-zero after the last
    // holder was deleted shows up here).
    let stored = t.synopsis().entries();
    let rebuilt = synopsis.entries();
    if stored != rebuilt {
        issues.push(render_synopsis_diff(&stored, &rebuilt));
    }

    // Value statistics: the same contract one level deeper — when the
    // store vouches for the stats (never after a manifest rehydration,
    // whose adopted rows were not re-parsed), every per-path histogram,
    // occurrence count and distinct sketch must equal the rebuild's. The
    // cost model prices plans off these numbers; drift here silently
    // mis-costs every future plan, which is exactly why it is a verdict.
    if t.synopsis().stats_complete() {
        let stored_stats: BTreeMap<String, _> = t
            .synopsis()
            .stats_entries()
            .into_iter()
            .map(|(p, _, s)| (p, s.cloned()))
            .collect();
        let rebuilt_stats: BTreeMap<String, _> = synopsis
            .stats_entries()
            .into_iter()
            .map(|(p, _, s)| (p, s.cloned()))
            .collect();
        for (p, reb) in &rebuilt_stats {
            match stored_stats.get(p) {
                // A missing path is already reported by the entries diff.
                None => {}
                Some(st) if st != reb => issues.push(format!(
                    "value stats at {p} differ from rebuild \
                     (stored {} value(s) in {} bucket(s), rebuilt {} in {})",
                    st.as_ref().map_or(0, ValueStats::total),
                    st.as_ref().map_or(0, |s| s.buckets().count()),
                    reb.as_ref().map_or(0, ValueStats::total),
                    reb.as_ref().map_or(0, |s| s.buckets().count()),
                )),
                Some(_) => {}
            }
        }
        // Paths stored but absent from the rebuild are covered by the
        // entries diff above; no second report needed.
    }

    // Label streams: only when the store claims completeness — an
    // incomplete store is honestly unusable and the planner already
    // declines it, so there is nothing to verify against.
    if check_labels {
        let stored: BTreeMap<u64, &[LabelEntry]> = t.labels().streams().collect();
        let rebuilt: BTreeMap<u64, &[LabelEntry]> = labels.streams().collect();
        if stored.len() != rebuilt.len() {
            issues.push(format!(
                "label store holds {} stream(s), rebuild produced {}",
                stored.len(),
                rebuilt.len()
            ));
        }
        for (hash, entries) in &rebuilt {
            match stored.get(hash) {
                None => issues.push(format!("label stream {hash:#x} missing from store")),
                Some(s) if s != entries => issues.push(format!(
                    "label stream {hash:#x}: {} stored entr(ies) differ from {} rebuilt",
                    s.len(),
                    entries.len()
                )),
                Some(_) => {}
            }
        }
        for hash in stored.keys() {
            if !rebuilt.contains_key(hash) {
                issues.push(format!("label stream {hash:#x} stored but not rebuilt"));
            }
        }
    }

    // Indexes on this table: the tree must hold exactly the keys a
    // rebuild over the live rows extracts, and the skip counter must
    // match the rebuild's skips.
    for idx in catalog.all_indexes() {
        if idx.table != t.name {
            continue;
        }
        let Some(col) = t.column_index(&idx.column) else {
            issues.push(format!("index {}: column {} not on table", idx.name, idx.column));
            continue;
        };
        let mut keys: Vec<Vec<u8>> = Vec::new();
        let mut skipped = 0usize;
        for (rid, values) in &live_rows {
            if let SqlValue::Xml(n) = &values[col] {
                let extracted = idx.extract_entries(*rid as u64, n);
                skipped += extracted.skipped;
                keys.extend(extracted.keys);
            }
        }
        keys.sort_unstable();
        let stored = idx.all_keys();
        if stored != keys {
            issues.push(format!(
                "index {}: tree holds {} key(s), rebuild produced {}",
                idx.name,
                stored.len(),
                keys.len()
            ));
        }
        if idx.skipped_nodes != skipped {
            issues.push(format!(
                "index {}: skipped_nodes is {} but rebuild skipped {}",
                idx.name, idx.skipped_nodes, skipped
            ));
        }
    }

    Ok(TableVerdict { table: t.name.clone(), rows: live, issues })
}

/// One line summarizing how a stored synopsis differs from its rebuild.
fn render_synopsis_diff(stored: &[(String, u64)], rebuilt: &[(String, u64)]) -> String {
    let stored_map: BTreeMap<&str, u64> =
        stored.iter().map(|(p, n)| (p.as_str(), *n)).collect();
    let rebuilt_map: BTreeMap<&str, u64> =
        rebuilt.iter().map(|(p, n)| (p.as_str(), *n)).collect();
    let mut diffs = Vec::new();
    for (p, n) in &rebuilt_map {
        match stored_map.get(p) {
            None => diffs.push(format!("{p} missing (want {n})")),
            Some(s) if s != n => diffs.push(format!("{p} has count {s}, want {n}")),
            Some(_) => {}
        }
    }
    for (p, n) in &stored_map {
        if !rebuilt_map.contains_key(p) {
            diffs.push(format!("{p} stored with count {n} but absent from rebuild"));
        }
    }
    format!(
        "synopsis differs from rebuild ({} stored vs {} rebuilt entr(ies)): {}",
        stored.len(),
        rebuilt.len(),
        diffs.join("; ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdb_storage::{Column, SqlType, Table};

    fn seeded_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(Table::new(
            "orders",
            vec![Column::new("ordid", SqlType::Integer), Column::new("orddoc", SqlType::Xml)],
        ))
        .unwrap();
        c.create_index("idx_price", "orders", "orddoc", "//price", "double").unwrap();
        for i in 0..6i64 {
            let doc = xqdb_xmlparse::parse_document(&format!(
                "<order id='{i}'><price>{}</price></order>",
                10 * i + 5
            ))
            .unwrap();
            c.insert("orders", vec![SqlValue::Integer(i), SqlValue::Xml(doc.root())])
                .unwrap();
        }
        c
    }

    #[test]
    fn verifies_clean_after_mixed_dml() {
        let mut c = seeded_catalog();
        c.delete("orders", &[1, 4]).unwrap();
        let doc = xqdb_xmlparse::parse_document(
            "<order id='2'><price>999</price><rush/></order>",
        )
        .unwrap();
        c.replace("orders", 2, vec![SqlValue::Integer(2), SqlValue::Xml(doc.root())])
            .unwrap();
        let report = verify_derived_state(&c).unwrap();
        assert!(report.is_clean(), "unexpected issues:\n{}", report.render());
        assert_eq!(report.tables.len(), 1);
        assert_eq!(report.tables[0].rows, 4);
        assert!(report.render().contains("table ORDERS: OK"));
    }

    #[test]
    fn detects_a_stale_index_entry() {
        let mut c = seeded_catalog();
        // Delete a row behind the catalog's back (index not maintained).
        c.db.delete("ORDERS", &[3]).unwrap();
        let report = verify_derived_state(&c).unwrap();
        assert!(!report.is_clean());
        let rendered = report.render();
        assert!(rendered.contains("index IDX_PRICE"), "report: {rendered}");
    }
}
