//! Extraction of indexable predicate candidates from XQuery ASTs.
//!
//! The extractor computes, for a query expression, a **necessary condition**
//! over source documents: a boolean combination of value/structural
//! predicates such that any document violating the condition provably
//! contributes nothing to the query result. Pre-filtering the collection
//! with that condition therefore preserves `Q(D) = Q(I(P, D))` — the
//! paper's Definition 1 — because the surviving documents are re-run
//! through the full query.
//!
//! The analysis distinguishes the contexts Sections 3.2–3.6 of the paper
//! catalogue:
//!
//! * `for`-bindings, `where` clauses, path predicates, and bind-out results
//!   **filter** (empty ⇒ the document's tuples vanish);
//! * `let`-bindings and constructor content do **not** (empty sequences are
//!   preserved), unless a later `where` consumes the bound variable;
//! * boolean-valued expressions are never empty, so a caller like
//!   `XMLEXISTS` over one is constant-true ([`Note::BooleanXmlExists`]).
//!
//! Predicates discovered in non-filtering positions are recorded as
//! [`Note`]s so EXPLAIN can answer the user's "why is my index not used?" —
//! the usability gap the paper closes with its tips.

use std::collections::HashMap;
use std::fmt;

use xqdb_xdm::compare::CompareOp;
use xqdb_xdm::{AtomicType, AtomicValue, ExpandedName};
use xqdb_xquery::ast::{
    Axis, ConstructorContent, Expr, FlworClause, KindTest, NodeTest, QuantKind, Step,
};
use xqdb_xquery::parser::atomic_type_by_name;
use xqdb_xquery::PatternStep;

/// The dynamic comparison type an eligible index must serve (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpTarget {
    /// Numeric comparison — a `double` index applies.
    Double,
    /// String comparison — a `varchar` index applies.
    String,
    /// Date comparison.
    Date,
    /// Timestamp (dateTime) comparison.
    Timestamp,
}

impl fmt::Display for CmpTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpTarget::Double => "double",
            CmpTarget::String => "varchar",
            CmpTarget::Date => "date",
            CmpTarget::Timestamp => "timestamp",
        };
        f.write_str(s)
    }
}

/// One indexable value predicate: `some node on <steps> of <source>
/// satisfies (node <op> <value>)` under comparison type `target`.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Collection key, e.g. `ORDERS.ORDDOC`.
    pub source: String,
    /// Linear path from the document root to the compared node.
    pub steps: Vec<PatternStep>,
    /// Comparison operator, normalized to `node op value`.
    pub op: CompareOp,
    /// The constant side.
    pub value: AtomicValue,
    /// Comparison type.
    pub target: CmpTarget,
    /// True if the compared sequence is provably a singleton per candidate
    /// item (value comparison, or an exact-name attribute of a singleton
    /// context) — the Section 3.10 "between" precondition.
    pub singleton: bool,
    /// Identifier of the shared context item for `x[. > a and . < b]`
    /// shapes — two candidates with the same group compare the *same* value.
    pub group: Option<u32>,
}

/// A necessary filtering condition over one collection's documents.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    /// No filtering possible: every document may be needed.
    Any,
    /// A value predicate.
    Pred(Candidate),
    /// A structural predicate: some node matches `steps` (answerable by a
    /// full-range scan of a containing varchar index — Section 2.2).
    Exists {
        /// Collection key.
        source: String,
        /// The structural path.
        steps: Vec<PatternStep>,
    },
    /// Conjunction — any subset may be used for pre-filtering.
    And(Vec<Cond>),
    /// Disjunction — all branches must be answerable to pre-filter.
    Or(Vec<Cond>),
}

impl Cond {
    fn and(conds: Vec<Cond>) -> Cond {
        let mut flat = Vec::new();
        for c in conds {
            match c {
                Cond::Any => {}
                Cond::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Cond::Any,
            1 => flat.pop().unwrap_or(Cond::Any),
            _ => Cond::And(flat),
        }
    }

    fn or(conds: Vec<Cond>) -> Cond {
        let mut flat = Vec::new();
        for c in conds {
            match c {
                // One unfilterable branch makes the whole disjunction
                // unfilterable.
                Cond::Any => return Cond::Any,
                Cond::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Cond::Any,
            1 => flat.pop().unwrap_or(Cond::Any),
            _ => Cond::Or(flat),
        }
    }
}

/// Diagnostics explaining missed index opportunities (surfaced by EXPLAIN).
#[derive(Debug, Clone, PartialEq)]
pub enum Note {
    /// An indexable-looking predicate sits in a position that cannot
    /// eliminate documents.
    NonFilteringContext {
        /// Where it was found ("XMLQUERY select list", "let binding",
        /// "constructor content", "XMLTABLE column expression").
        place: &'static str,
        /// Rendering of the predicate path.
        detail: String,
    },
    /// The XQuery inside XMLEXISTS returns a boolean, so XMLEXISTS is
    /// constant-true (Query 9 of the paper).
    BooleanXmlExists,
    /// A predicate was found under an element constructor (Section 3.6).
    ConstructionBarrier {
        /// Rendering of the predicate path.
        detail: String,
    },
}

impl fmt::Display for Note {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Note::NonFilteringContext { place, detail } => {
                write!(f, "predicate {detail} found in non-filtering context ({place})")
            }
            Note::BooleanXmlExists => f.write_str(
                "XMLEXISTS argument returns a boolean; the predicate never filters \
                 (wrap it in a path or FLWOR — Tip 3)",
            ),
            Note::ConstructionBarrier { detail } => {
                write!(f, "predicate {detail} is guarded by a node constructor (Tip 7/9)")
            }
        }
    }
}

/// What a variable is known to denote.
#[derive(Debug, Clone)]
enum Binding {
    /// Nodes reached from a collection's documents via a linear path.
    Docs {
        source: String,
        steps: Vec<PatternStep>,
        /// True when bound by `for` (singleton per tuple).
        per_tuple: bool,
        /// Necessary condition for the binding to be non-empty (used when a
        /// `where` consumes a `let` variable — Query 21).
        nonempty: Cond,
    },
    /// Anything else.
    Opaque,
}

/// Extraction result.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The necessary condition.
    pub cond: Cond,
    /// Diagnostics for EXPLAIN.
    pub notes: Vec<Note>,
}

/// Variable environment for the analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalysisEnv {
    vars: HashMap<ExpandedName, BindingPublic>,
}

/// Public form of a binding, used by the SQL layer to pre-bind `PASSING`
/// variables (`passing orddoc as "order"` ⇒ `$order` denotes documents of
/// `ORDERS.ORDDOC`).
#[derive(Debug, Clone)]
pub struct BindingPublic {
    /// Collection key.
    pub source: String,
    /// Path from the document root (empty = the document itself).
    pub steps: Vec<PatternStep>,
}

impl AnalysisEnv {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-bind a variable to a collection's documents.
    pub fn bind_docs(&mut self, var: ExpandedName, source: impl AsRef<str>) {
        self.vars.insert(
            var,
            BindingPublic { source: source.as_ref().to_ascii_uppercase(), steps: Vec::new() },
        );
    }

    /// Iterate the variables bound to whole documents of a collection (the
    /// PASSING-clause bindings) — consumed by the structural pre-filter's
    /// required-path extractor.
    pub fn doc_bindings(&self) -> impl Iterator<Item = (&ExpandedName, &BindingPublic)> {
        self.vars.iter().filter(|(_, b)| b.steps.is_empty())
    }
}

/// Analyze an expression whose *emptiness* filters — the XMLEXISTS argument
/// and the XMLTABLE row producer. A top-level boolean-valued expression is
/// never empty, so it cannot filter at all (Query 9).
pub fn analyze_filtering(expr: &Expr, env: &AnalysisEnv) -> Analysis {
    let mut cx = Cx::new(env);
    let cond = cx.nonempty(expr, &mut Env::new(env));
    // Boolean-result detection (Query 9): a top-level expression that
    // always yields exactly one item makes "non-empty" vacuous.
    if always_singleton(expr) {
        cx.notes.push(Note::BooleanXmlExists);
        return Analysis { cond: Cond::Any, notes: cx.notes };
    }
    Analysis { cond, notes: cx.notes }
}

/// Analyze a standalone query root: documents failing the condition cannot
/// change the query result (no non-emptiness caveat — a top-level
/// `count(...)` still benefits from pre-filtering its argument).
pub fn analyze_query_root(expr: &Expr, env: &AnalysisEnv) -> Analysis {
    let mut cx = Cx::new(env);
    let cond = cx.nonempty(expr, &mut Env::new(env));
    Analysis { cond, notes: cx.notes }
}

/// Analyze an expression in a non-filtering position (XMLQUERY select list,
/// XMLTABLE column expressions): no condition, only diagnostics.
pub fn analyze_non_filtering(expr: &Expr, env: &AnalysisEnv, place: &'static str) -> Analysis {
    analyze_non_filtering_with_ctx(expr, env, place, None)
}

/// Like [`analyze_non_filtering`], with an explicit context-item binding —
/// XMLTABLE column paths evaluate with each row-producer item as context.
pub fn analyze_non_filtering_with_ctx(
    expr: &Expr,
    env: &AnalysisEnv,
    place: &'static str,
    ctx: Option<BindingPublic>,
) -> Analysis {
    let mut cx = Cx::new(env);
    let mut e = Env::new(env);
    if let Some(b) = ctx {
        let group = cx.fresh_group();
        e.ctx = Some((b.source, b.steps, group));
    }
    cx.scavenge(expr, &mut e, place);
    Analysis { cond: Cond::Any, notes: cx.notes }
}

/// Resolve an expression to a documents-rooted path, for callers that need
/// to establish a context binding (the XMLTABLE row producer).
pub fn resolve_docs_path(expr: &Expr, env: &AnalysisEnv) -> Option<BindingPublic> {
    let mut cx = Cx::new(env);
    let mut e = Env::new(env);
    let rp = cx.resolve_path(expr, &mut e)?;
    if rp.cast.is_some() {
        return None;
    }
    Some(BindingPublic { source: rp.source, steps: rp.steps })
}

/// True if the expression statically always produces exactly one item —
/// which makes `XMLEXISTS` constant-true.
fn always_singleton(expr: &Expr) -> bool {
    match expr.unparen() {
        Expr::GeneralCmp(..)
        | Expr::ValueCmp(..)
        | Expr::Or(..)
        | Expr::And(..)
        | Expr::Quantified { .. }
        | Expr::InstanceOf(..)
        | Expr::CastableAs { .. }
        | Expr::Literal(_)
        | Expr::DirectElement(_)
        | Expr::ComputedElement { .. }
        | Expr::ComputedDocument(_) => true,
        Expr::FunctionCall { name, args: _ } => matches!(
            &*name.local,
            "true" | "false" | "not" | "boolean" | "exists" | "empty" | "count" | "string"
                | "number" | "contains" | "starts-with" | "ends-with" | "between"
        ),
        _ => false,
    }
}

/// Internal per-analysis state.
struct Cx<'a> {
    notes: Vec<Note>,
    next_group: u32,
    #[allow(dead_code)]
    external: &'a AnalysisEnv,
}

/// Scoped variable bindings during the walk.
struct Env {
    vars: HashMap<ExpandedName, Binding>,
    /// Context-item meaning inside predicates: (source, steps, group).
    ctx: Option<(String, Vec<PatternStep>, u32)>,
}

impl Env {
    fn new(external: &AnalysisEnv) -> Env {
        let mut vars = HashMap::new();
        for (name, b) in &external.vars {
            vars.insert(
                name.clone(),
                Binding::Docs {
                    source: b.source.clone(),
                    steps: b.steps.clone(),
                    per_tuple: true,
                    nonempty: Cond::Any,
                },
            );
        }
        Env { vars, ctx: None }
    }
}

/// A resolved node path relative to the document roots of one collection.
struct ResolvedPath {
    source: String,
    steps: Vec<PatternStep>,
    /// Explicit cast applied by the query (e.g. `xs:double(.)`).
    cast: Option<CmpTarget>,
    /// Whole path provably yields ≤ 1 node per base item.
    singleton: bool,
    /// Group id when the path is (casts of) the predicate context item.
    group: Option<u32>,
    /// Conditions contributed by predicates embedded in the path.
    extra: Vec<Cond>,
}

impl<'a> Cx<'a> {
    fn new(external: &'a AnalysisEnv) -> Self {
        Cx { notes: Vec::new(), next_group: 0, external }
    }

    fn fresh_group(&mut self) -> u32 {
        self.next_group += 1;
        self.next_group
    }

    // -------------------------------------------------- filtering analysis

    /// Necessary condition for `expr` to produce at least one item.
    fn nonempty(&mut self, expr: &Expr, env: &mut Env) -> Cond {
        match expr.unparen() {
            Expr::Literal(_) => Cond::Any,
            Expr::ContextItem => Cond::Any,
            Expr::Root => Cond::Any,
            Expr::VarRef(name) => match env.vars.get(name) {
                Some(Binding::Docs { nonempty, .. }) => nonempty.clone(),
                _ => Cond::Any,
            },
            Expr::Sequence(items) => {
                // Non-empty iff any part is; necessary condition is the OR.
                self.cond_or_scavenge(items, env, |cx, e, env| cx.nonempty(e, env))
            }
            Expr::Path { .. } | Expr::Filter { .. } => match self.resolve_path(expr, env) {
                Some(rp) => {
                    let mut conds = rp.extra;
                    conds.push(Cond::Exists { source: rp.source, steps: rp.steps });
                    Cond::and(conds)
                }
                None => {
                    // Unresolvable paths (e.g. over constructed nodes) can't
                    // filter; still scavenge for diagnostics.
                    self.scavenge(expr, env, "unresolvable path");
                    Cond::Any
                }
            },
            Expr::Flwor(f) => self.flwor_cond(f, env),
            Expr::If { cond, then, els } => {
                // Result non-empty requires (then non-empty) or (else
                // non-empty); we cannot know which branch runs, and the
                // if-condition itself is NOT necessary for non-emptiness.
                self.scavenge(cond, env, "if condition");
                Cond::or(vec![self.nonempty(then, env), self.nonempty(els, env)])
            }
            // Boolean-valued and constructor expressions are always
            // non-empty.
            Expr::GeneralCmp(..)
            | Expr::ValueCmp(..)
            | Expr::NodeCmp(..)
            | Expr::Or(..)
            | Expr::And(..)
            | Expr::Quantified { .. }
            | Expr::InstanceOf(..)
            | Expr::CastableAs { .. } => {
                self.scavenge(expr, env, "boolean result");
                Cond::Any
            }
            Expr::DirectElement(_)
            | Expr::ComputedElement { .. }
            | Expr::ComputedAttribute { .. }
            | Expr::ComputedText(_)
            | Expr::ComputedDocument(_) => {
                self.scavenge_constructor(expr, env);
                Cond::Any
            }
            Expr::FunctionCall { name, args } => match (&*name.local, args.as_slice()) {
                ("data", [arg]) | ("exists", [arg]) | ("distinct-values", [arg])
                | ("reverse", [arg]) => self.nonempty(arg, env),
                // Pure sequence functions: their value depends only on the
                // argument sequence, so a document contributing nothing to
                // the argument cannot change the result — the predicate
                // inside `avg(//lineitem[@price > X]/...)` filters. Extra
                // arguments must be constants (no document can reach them).
                (
                    "count" | "sum" | "avg" | "min" | "max" | "string-join" | "subsequence"
                    | "empty" | "not" | "boolean" | "number" | "string",
                    [first, rest @ ..],
                ) if rest.iter().all(|a| const_value(a).is_some()) => {
                    self.nonempty(first, env)
                }
                ("xmlcolumn", _) => Cond::Any,
                _ => {
                    for a in args {
                        self.scavenge(a, env, "function argument");
                    }
                    Cond::Any
                }
            },
            Expr::CastAs { expr, .. } | Expr::TreatAs(expr, _) | Expr::UnaryMinus(expr) => {
                self.nonempty(expr, env)
            }
            Expr::Union(a, b) => Cond::or(vec![self.nonempty(a, env), self.nonempty(b, env)]),
            Expr::Intersect(a, b) | Expr::Except(a, b) => {
                // Result ⊆ left operand.
                let c = self.nonempty(a, env);
                self.scavenge(b, env, "intersect/except operand");
                c
            }
            // Arithmetic with a constant side: the result is preserved
            // whenever the non-constant operand is (e.g. `sum(X) + 1`).
            Expr::Arith(_, a, b) => match (const_value(a), const_value(b)) {
                (None, Some(_)) => self.nonempty(a, env),
                (Some(_), None) => self.nonempty(b, env),
                _ => Cond::Any,
            },
            Expr::Range(..) | Expr::Paren(_) => Cond::Any,
        }
    }

    /// Necessary condition for `expr`'s effective boolean value to be true.
    fn ebv(&mut self, expr: &Expr, env: &mut Env) -> Cond {
        match expr.unparen() {
            Expr::And(a, b) => Cond::and(vec![self.ebv(a, env), self.ebv(b, env)]),
            Expr::Or(a, b) => Cond::or(vec![self.ebv(a, env), self.ebv(b, env)]),
            Expr::GeneralCmp(op, l, r) => self.comparison(*op, l, r, env, false),
            Expr::ValueCmp(op, l, r) => self.comparison(*op, l, r, env, true),
            Expr::Quantified { kind: QuantKind::Some, bindings, satisfies } => {
                // some $x in P satisfies C ≈ exists(P[C]).
                let mut conds = Vec::new();
                let mut scoped_env = Env {
                    vars: env.vars.clone(),
                    ctx: env.ctx.clone(),
                };
                for (var, bexpr) in bindings {
                    conds.push(self.nonempty(bexpr, &mut scoped_env));
                    let binding = match self.resolve_path(bexpr, &mut scoped_env) {
                        Some(rp) if rp.cast.is_none() => Binding::Docs {
                            source: rp.source,
                            steps: rp.steps,
                            per_tuple: true,
                            nonempty: Cond::Any,
                        },
                        _ => Binding::Opaque,
                    };
                    scoped_env.vars.insert(var.clone(), binding);
                }
                conds.push(self.ebv(satisfies, &mut scoped_env));
                Cond::and(conds)
            }
            Expr::FunctionCall { name, args } => match (&*name.local, args.as_slice()) {
                ("exists", [arg]) | ("boolean", [arg]) => self.nonempty(arg, env),
                ("true", []) => Cond::Any,
                // db2-fn:between($path, lo, hi): both bounds test the SAME
                // item, so the pair merges into one range scan — the
                // explicit between of the paper's Section 4.
                ("between", [path, lo, hi])
                    if name.ns.as_deref() == Some(xqdb_xdm::qname::DB2_FN_NS) =>
                {
                    let (Some(lo_v), Some(hi_v)) = (const_value(lo), const_value(hi)) else {
                        return Cond::Any;
                    };
                    let Some(rp) = self.resolve_path(path, env) else {
                        return Cond::Any;
                    };
                    let target = match rp.cast {
                        Some(t) => t,
                        None => match lo_v.atomic_type() {
                            t if t.is_numeric() => CmpTarget::Double,
                            AtomicType::String | AtomicType::UntypedAtomic => CmpTarget::String,
                            AtomicType::Date => CmpTarget::Date,
                            AtomicType::DateTime => CmpTarget::Timestamp,
                            _ => return Cond::Any,
                        },
                    };
                    if !const_compatible(&lo_v, target) || !const_compatible(&hi_v, target) {
                        return Cond::Any;
                    }
                    let group = Some(self.fresh_group());
                    let mut conds = rp.extra;
                    for (op, value) in [(CompareOp::Ge, lo_v), (CompareOp::Le, hi_v)] {
                        conds.push(Cond::Pred(Candidate {
                            source: rp.source.clone(),
                            steps: rp.steps.clone(),
                            op,
                            value,
                            target,
                            singleton: false,
                            group,
                        }));
                    }
                    Cond::and(conds)
                }
                _ => {
                    for a in args {
                        self.scavenge(a, env, "function argument");
                    }
                    Cond::Any
                }
            },
            // EBV of a node sequence = non-emptiness.
            Expr::Path { .. } | Expr::Filter { .. } | Expr::VarRef(_) | Expr::Flwor(_)
            | Expr::Sequence(_) => self.nonempty(expr, env),
            _ => {
                self.scavenge(expr, env, "opaque condition");
                Cond::Any
            }
        }
    }

    /// A comparison in EBV position: try `path op const` both ways.
    fn comparison(
        &mut self,
        op: CompareOp,
        lhs: &Expr,
        rhs: &Expr,
        env: &mut Env,
        is_value_cmp: bool,
    ) -> Cond {
        let sides = [(lhs, rhs, op), (rhs, lhs, op.flip())];
        for (node_side, const_side, eff_op) in sides {
            let Some(value) = const_value(const_side) else { continue };
            let Some(rp) = self.resolve_path(node_side, env) else { continue };
            // Comparison type (Section 3.1): an explicit cast wins; else the
            // constant's dynamic type decides how untyped data is promoted.
            let target = match rp.cast {
                Some(t) => {
                    if !const_compatible(&value, t) {
                        continue; // runtime type error; cannot pre-filter
                    }
                    t
                }
                None => match value.atomic_type() {
                    t if t.is_numeric() => CmpTarget::Double,
                    AtomicType::String | AtomicType::UntypedAtomic => CmpTarget::String,
                    AtomicType::Date => CmpTarget::Date,
                    AtomicType::DateTime => CmpTarget::Timestamp,
                    _ => continue,
                },
            };
            let mut conds = rp.extra;
            conds.push(Cond::Pred(Candidate {
                source: rp.source,
                steps: rp.steps,
                op: eff_op,
                value,
                target,
                singleton: is_value_cmp || rp.singleton,
                group: rp.group,
            }));
            return Cond::and(conds);
        }
        // Neither orientation worked — maybe a join or an opaque shape.
        self.scavenge(lhs, env, "comparison operand");
        self.scavenge(rhs, env, "comparison operand");
        Cond::Any
    }

    fn flwor_cond(&mut self, f: &xqdb_xquery::ast::Flwor, env: &mut Env) -> Cond {
        let mut scoped = Env { vars: env.vars.clone(), ctx: env.ctx.clone() };
        let mut conds = Vec::new();
        for clause in &f.clauses {
            match clause {
                FlworClause::For { var, position, expr } => {
                    // An empty for-binding kills every tuple: filtering.
                    conds.push(self.nonempty(expr, &mut scoped));
                    let binding = match self.resolve_path(expr, &mut scoped) {
                        Some(rp) if rp.cast.is_none() => Binding::Docs {
                            source: rp.source,
                            steps: rp.steps,
                            per_tuple: true,
                            nonempty: Cond::Any,
                        },
                        _ => Binding::Opaque,
                    };
                    scoped.vars.insert(var.clone(), binding);
                    if let Some(p) = position {
                        scoped.vars.insert(p.clone(), Binding::Opaque);
                    }
                }
                FlworClause::Let { var, expr } => {
                    // Empty let-bindings survive (Section 3.4): NOT filtering
                    // by itself, but remember the emptiness condition so a
                    // later `where $var ...` can use it (Query 21).
                    let nonempty = self.nonempty_probe(expr, &mut scoped);
                    let binding = match self.resolve_path(expr, &mut scoped) {
                        Some(rp) if rp.cast.is_none() => Binding::Docs {
                            source: rp.source,
                            steps: rp.steps,
                            per_tuple: false,
                            nonempty,
                        },
                        _ => Binding::Opaque,
                    };
                    scoped.vars.insert(var.clone(), binding);
                }
                FlworClause::Where(cond) => {
                    conds.push(self.ebv(cond, &mut scoped));
                }
                FlworClause::OrderBy(_) => {}
            }
        }
        // The return expression has bind-out iteration: per-tuple empty
        // results vanish (Query 22) — its non-emptiness is necessary too.
        conds.push(self.nonempty(&f.ret, &mut scoped));
        Cond::and(conds)
    }

    /// Like [`Self::nonempty`] but without emitting scavenger notes — used
    /// to pre-compute a let-binding's emptiness condition, which only
    /// matters if a `where` later consumes it.
    fn nonempty_probe(&mut self, expr: &Expr, env: &mut Env) -> Cond {
        let saved = std::mem::take(&mut self.notes);
        let cond = self.nonempty(expr, env);
        self.notes = saved;
        cond
    }

    fn cond_or_scavenge(
        &mut self,
        items: &[Expr],
        env: &mut Env,
        f: impl Fn(&mut Self, &Expr, &mut Env) -> Cond,
    ) -> Cond {
        let conds: Vec<Cond> = items.iter().map(|e| f(self, e, env)).collect();
        Cond::or(conds)
    }

    // ------------------------------------------------------ path resolution

    /// Resolve an expression to a linear path over one collection's
    /// documents.
    fn resolve_path(&mut self, expr: &Expr, env: &mut Env) -> Option<ResolvedPath> {
        match expr.unparen() {
            Expr::VarRef(name) => match env.vars.get(name) {
                Some(Binding::Docs { source, steps, per_tuple, .. }) => Some(ResolvedPath {
                    source: source.clone(),
                    steps: steps.clone(),
                    cast: None,
                    singleton: *per_tuple && steps.is_empty(),
                    group: None,
                    extra: Vec::new(),
                }),
                _ => None,
            },
            Expr::ContextItem => env.ctx.clone().map(|(source, steps, group)| ResolvedPath {
                source,
                steps,
                cast: None,
                singleton: true,
                group: Some(group),
                extra: Vec::new(),
            }),
            Expr::FunctionCall { name, args } => {
                // db2-fn:xmlcolumn('T.C') — the collection roots.
                if &*name.local == "xmlcolumn"
                    && name.ns.as_deref() == Some(xqdb_xdm::qname::DB2_FN_NS)
                {
                    if let [Expr::Literal(AtomicValue::String(column))] = args.as_slice() {
                        return Some(ResolvedPath {
                            source: column.to_ascii_uppercase(),
                            steps: Vec::new(),
                            cast: None,
                            singleton: false,
                            group: None,
                            extra: Vec::new(),
                        });
                    }
                    return None;
                }
                // data(.) / data() / string(.) / xs:double(.) style steps are
                // handled in resolve_step; a bare call here is only
                // resolvable when its argument is.
                let target = cast_target_of_function(name);
                if let (Some(t), [arg]) = (target, args.as_slice()) {
                    let mut rp = self.resolve_path(arg, env)?;
                    if rp.cast.is_some() {
                        return None;
                    }
                    rp.cast = Some(t);
                    return Some(rp);
                }
                if &*name.local == "data" {
                    match args.as_slice() {
                        [] => return self.resolve_path(&Expr::ContextItem, env),
                        [arg] => return self.resolve_path(arg, env),
                        _ => return None,
                    }
                }
                None
            }
            Expr::Path { init, steps } => {
                let mut rp = self.resolve_path(init, env)?;
                if rp.cast.is_some() {
                    return None; // casts end a path
                }
                for step in steps {
                    self.resolve_step(&mut rp, step, env)?;
                }
                Some(rp)
            }
            Expr::Filter { expr, predicates } => {
                let mut rp = self.resolve_path(expr, env)?;
                self.apply_predicates(&mut rp, predicates, env);
                Some(rp)
            }
            _ => None,
        }
    }

    /// Fold one AST step into a resolved path. Returns `None` (abandoning
    /// the candidate) for unsupported shapes.
    fn resolve_step(&mut self, rp: &mut ResolvedPath, step: &Step, env: &mut Env) -> Option<()> {
        match step {
            Step::Axis { axis, test, predicates } => {
                if rp.cast.is_some() {
                    return None;
                }
                match axis {
                    Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::Attribute
                    | Axis::SelfAxis => {
                        rp.steps.push(PatternStep { axis: *axis, test: test.clone() });
                    }
                    Axis::Parent => return None,
                }
                // Singleton tracking: exact-name attribute steps and self
                // steps preserve ≤1; everything else may fan out.
                let preserves = match axis {
                    Axis::SelfAxis => true,
                    Axis::Attribute => matches!(
                        test,
                        NodeTest::Name(nt) if !matches!(nt.local, xqdb_xquery::ast::LocalTest::Any)
                    ),
                    _ => false,
                };
                if !preserves {
                    rp.singleton = false;
                }
                if !matches!(axis, Axis::SelfAxis) {
                    rp.group = None;
                }
                self.apply_predicates(rp, predicates, env);
                Some(())
            }
            Step::Filter { expr, predicates } => {
                // Casts and data() applied per node.
                match expr.unparen() {
                    Expr::FunctionCall { name, args } => {
                        let is_ctx_arg = matches!(
                            args.as_slice(),
                            [] | [Expr::ContextItem]
                        );
                        if !is_ctx_arg {
                            return None;
                        }
                        if let Some(t) = cast_target_of_function(name) {
                            if rp.cast.is_some() {
                                return None;
                            }
                            rp.cast = Some(t);
                        } else if &*name.local == "data" {
                            // atomization — value-preserving
                        } else {
                            return None;
                        }
                        self.apply_predicates(rp, predicates, env);
                        Some(())
                    }
                    Expr::ContextItem => {
                        self.apply_predicates(rp, predicates, env);
                        Some(())
                    }
                    _ => None,
                }
            }
        }
    }

    /// Predicates on a path prefix contribute extra necessary conditions.
    fn apply_predicates(&mut self, rp: &mut ResolvedPath, predicates: &[Expr], env: &mut Env) {
        for pred in predicates {
            // Numeric literal predicates are positional: no extra condition
            // beyond the structural path, which is already implied.
            if matches!(pred.unparen(), Expr::Literal(v) if v.atomic_type().is_numeric()) {
                continue;
            }
            let group = self.fresh_group();
            let mut scoped = Env {
                vars: env.vars.clone(),
                ctx: Some((rp.source.clone(), rp.steps.clone(), group)),
            };
            let c = self.ebv(pred, &mut scoped);
            if !matches!(c, Cond::Any) {
                rp.extra.push(c);
            }
        }
    }

    // ----------------------------------------------------------- diagnostics

    /// Walk a non-filtering region looking for would-be candidates, emitting
    /// notes instead of conditions.
    fn scavenge(&mut self, expr: &Expr, env: &mut Env, place: &'static str) {
        match expr.unparen() {
            Expr::GeneralCmp(op, l, r) | Expr::ValueCmp(op, l, r) => {
                // Try to resolve as a candidate; if it would have been
                // indexable, report it.
                let saved_notes = self.notes.len();
                let c = self.comparison(*op, l, r, env, false);
                self.notes.truncate(saved_notes);
                if !matches!(c, Cond::Any) {
                    self.notes.push(Note::NonFilteringContext {
                        place,
                        detail: render_cond(&c),
                    });
                }
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                self.scavenge(a, env, place);
                self.scavenge(b, env, place);
            }
            Expr::Path { init, steps } => {
                self.scavenge(init, env, place);
                // Look inside step predicates with the path context resolved
                // so candidates render correctly.
                if let Some(mut rp) = self.resolve_path(init, env) {
                    for step in steps {
                        let preds: &[Expr] = match step {
                            Step::Axis { predicates, .. } => predicates,
                            Step::Filter { predicates, .. } => predicates,
                        };
                        // Advance the path before inspecting its predicates
                        // (they apply to the post-step nodes); stop cleanly
                        // on unsupported steps.
                        let mut probe = ResolvedPath {
                            source: rp.source.clone(),
                            steps: rp.steps.clone(),
                            cast: rp.cast,
                            singleton: rp.singleton,
                            group: rp.group,
                            extra: Vec::new(),
                        };
                        let step_no_preds = strip_predicates(step);
                        if self.resolve_step(&mut probe, &step_no_preds, env).is_none() {
                            break;
                        }
                        rp = probe;
                        for pred in preds {
                            let group = self.fresh_group();
                            let mut scoped = Env {
                                vars: env.vars.clone(),
                                ctx: Some((rp.source.clone(), rp.steps.clone(), group)),
                            };
                            let saved_notes = self.notes.len();
                            let c = self.ebv(pred, &mut scoped);
                            self.notes.truncate(saved_notes);
                            if !matches!(c, Cond::Any) {
                                self.notes.push(Note::NonFilteringContext {
                                    place,
                                    detail: render_cond(&c),
                                });
                            }
                        }
                    }
                } else {
                    for step in steps {
                        let preds: &[Expr] = match step {
                            Step::Axis { predicates, .. } => predicates,
                            Step::Filter { predicates, .. } => predicates,
                        };
                        for p in preds {
                            self.scavenge(p, env, place);
                        }
                    }
                }
            }
            Expr::Flwor(f) => {
                for clause in &f.clauses {
                    match clause {
                        FlworClause::For { expr, .. } | FlworClause::Let { expr, .. } => {
                            self.scavenge(expr, env, place)
                        }
                        FlworClause::Where(e) => self.scavenge(e, env, place),
                        FlworClause::OrderBy(specs) => {
                            for s in specs {
                                self.scavenge(&s.expr, env, place)
                            }
                        }
                    }
                }
                self.scavenge(&f.ret, env, place);
            }
            Expr::DirectElement(_)
            | Expr::ComputedElement { .. }
            | Expr::ComputedAttribute { .. }
            | Expr::ComputedText(_)
            | Expr::ComputedDocument(_) => self.scavenge_constructor(expr, env),
            Expr::Sequence(items) => {
                for e in items {
                    self.scavenge(e, env, place);
                }
            }
            Expr::If { cond, then, els } => {
                self.scavenge(cond, env, place);
                self.scavenge(then, env, place);
                self.scavenge(els, env, place);
            }
            Expr::FunctionCall { args, .. } => {
                for a in args {
                    self.scavenge(a, env, place);
                }
            }
            _ => {}
        }
    }

    /// Scavenge under a constructor: candidates found become
    /// [`Note::ConstructionBarrier`].
    fn scavenge_constructor(&mut self, expr: &Expr, env: &mut Env) {
        let before = self.notes.len();
        match expr.unparen() {
            Expr::DirectElement(d) => self.scavenge_direct(d, env),
            Expr::ComputedElement { content, .. }
            | Expr::ComputedAttribute { content, .. }
            | Expr::ComputedText(content)
            | Expr::ComputedDocument(content) => {
                if let Some(c) = content {
                    self.scavenge(c, env, "constructor content");
                }
            }
            _ => {}
        }
        // Rebrand the notes found inside as construction barriers.
        for note in &mut self.notes[before..] {
            if let Note::NonFilteringContext { detail, .. } = note {
                *note = Note::ConstructionBarrier { detail: std::mem::take(detail) };
            }
        }
    }

    fn scavenge_direct(&mut self, d: &xqdb_xquery::ast::DirectElement, env: &mut Env) {
        for (_, parts) in &d.attributes {
            for p in parts {
                if let ConstructorContent::Expr(e) = p {
                    self.scavenge(e, env, "constructor content");
                }
            }
        }
        for part in &d.content {
            match part {
                ConstructorContent::Expr(e) => self.scavenge(e, env, "constructor content"),
                ConstructorContent::Element(inner) => self.scavenge_direct(inner, env),
                _ => {}
            }
        }
    }
}

fn strip_predicates(step: &Step) -> Step {
    match step {
        Step::Axis { axis, test, .. } => {
            Step::Axis { axis: *axis, test: test.clone(), predicates: vec![] }
        }
        Step::Filter { expr, .. } => {
            Step::Filter { expr: expr.clone(), predicates: vec![] }
        }
    }
}

/// Statically evaluate a constant expression (literals, casts of literals,
/// `xs:date("...")` constructor calls, unary minus).
pub fn const_value(expr: &Expr) -> Option<AtomicValue> {
    match expr.unparen() {
        Expr::Literal(v) => Some(v.clone()),
        Expr::UnaryMinus(e) => match const_value(e)? {
            AtomicValue::Integer(i) => Some(AtomicValue::Integer(-i)),
            AtomicValue::Double(d) => Some(AtomicValue::Double(-d)),
            AtomicValue::Decimal(d) => Some(AtomicValue::Decimal(-d)),
            _ => None,
        },
        Expr::CastAs { expr, target, .. } => {
            let v = const_value(expr)?;
            xqdb_xdm::cast::cast(&v, *target).ok()
        }
        Expr::FunctionCall { name, args } => {
            let target = atomic_type_by_name(name)?;
            match args.as_slice() {
                [arg] => {
                    let v = const_value(arg)?;
                    xqdb_xdm::cast::cast(&v, target).ok()
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// The cast target of an `xs:*` constructor-function name, when it maps to
/// an index-servable comparison type.
fn cast_target_of_function(name: &ExpandedName) -> Option<CmpTarget> {
    let t = atomic_type_by_name(name)?;
    match t {
        AtomicType::Double | AtomicType::Integer | AtomicType::Decimal => Some(CmpTarget::Double),
        AtomicType::String => Some(CmpTarget::String),
        AtomicType::Date => Some(CmpTarget::Date),
        AtomicType::DateTime => Some(CmpTarget::Timestamp),
        _ => None,
    }
}

/// Can `value` participate in a comparison of type `target`?
fn const_compatible(value: &AtomicValue, target: CmpTarget) -> bool {
    let ty = match target {
        CmpTarget::Double => AtomicType::Double,
        CmpTarget::String => AtomicType::String,
        CmpTarget::Date => AtomicType::Date,
        CmpTarget::Timestamp => AtomicType::DateTime,
    };
    xqdb_xdm::cast::castable(value, ty)
}

/// Render a condition for notes/EXPLAIN.
pub fn render_cond(cond: &Cond) -> String {
    match cond {
        Cond::Any => "true".to_string(),
        Cond::Pred(c) => format!(
            "{}:{} {} {}",
            c.source,
            render_steps(&c.steps),
            c.op.general_symbol(),
            c.value.lexical()
        ),
        Cond::Exists { source, steps } => {
            format!("exists({}:{})", source, render_steps(steps))
        }
        Cond::And(cs) => {
            let parts: Vec<String> = cs.iter().map(render_cond).collect();
            format!("({})", parts.join(" and "))
        }
        Cond::Or(cs) => {
            let parts: Vec<String> = cs.iter().map(render_cond).collect();
            format!("({})", parts.join(" or "))
        }
    }
}

/// Render pattern steps as a path string.
pub fn render_steps(steps: &[PatternStep]) -> String {
    let mut out = String::new();
    let mut skip_next_sep = false;
    for step in steps {
        if matches!(
            (step.axis, &step.test),
            (Axis::DescendantOrSelf, NodeTest::Kind(KindTest::AnyKind))
        ) {
            out.push_str("//");
            skip_next_sep = true;
            continue;
        }
        if !skip_next_sep {
            out.push('/');
        }
        skip_next_sep = false;
        match step.axis {
            Axis::Attribute => out.push('@'),
            Axis::SelfAxis => out.push_str("self::"),
            Axis::Descendant => out.push_str("descendant::"),
            Axis::DescendantOrSelf => out.push_str("descendant-or-self::"),
            Axis::Child | Axis::Parent => {}
        }
        out.push_str(&step.test.to_string());
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdb_xquery::parse_query;

    fn analyze(q: &str) -> Analysis {
        let parsed = parse_query(q).expect("test query parses");
        analyze_query_root(&parsed.body, &AnalysisEnv::new())
    }

    fn preds_of(cond: &Cond) -> Vec<&Candidate> {
        let mut out = Vec::new();
        fn walk<'a>(c: &'a Cond, out: &mut Vec<&'a Candidate>) {
            match c {
                Cond::Pred(p) => out.push(p),
                Cond::And(cs) | Cond::Or(cs) => cs.iter().for_each(|c| walk(c, out)),
                _ => {}
            }
        }
        walk(cond, &mut out);
        out
    }

    #[test]
    fn and_or_algebra_flattens() {
        let c = Cond::and(vec![Cond::Any, Cond::Any]);
        assert_eq!(c, Cond::Any);
        let p = Cond::Exists { source: "T.C".into(), steps: vec![] };
        let c = Cond::and(vec![Cond::Any, p.clone()]);
        assert_eq!(c, p);
        // An Any branch absorbs the whole disjunction.
        let c = Cond::or(vec![p.clone(), Cond::Any]);
        assert_eq!(c, Cond::Any);
        // Nested conjunctions flatten.
        let c = Cond::and(vec![p.clone(), Cond::And(vec![p.clone(), p.clone()])]);
        match c {
            Cond::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn extraction_finds_candidate_with_types() {
        let a = analyze("db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 100]");
        let preds = preds_of(&a.cond);
        assert_eq!(preds.len(), 1);
        let c = preds[0];
        assert_eq!(c.source, "ORDERS.ORDDOC");
        assert_eq!(c.target, CmpTarget::Double);
        assert_eq!(c.op, CompareOp::Gt);
        // lineitem is a child step (may repeat), so @price is NOT a
        // per-order singleton — which is why Query 30 nests the between
        // inside lineitem[...].
        assert!(!c.singleton);
        assert_eq!(render_steps(&c.steps), "//order/lineitem/@price");
    }

    #[test]
    fn string_literal_gives_string_target() {
        let a = analyze("db2-fn:xmlcolumn('O.D')//a[b > \"100\"]");
        let preds = preds_of(&a.cond);
        assert_eq!(preds[0].target, CmpTarget::String);
    }

    #[test]
    fn flipped_comparison_normalizes() {
        // constant on the left: 100 < path ≡ path > 100.
        let a = analyze("db2-fn:xmlcolumn('O.D')//a[100 < b]");
        let preds = preds_of(&a.cond);
        assert_eq!(preds[0].op, CompareOp::Gt);
    }

    #[test]
    fn cast_wins_over_constant_type() {
        let a = analyze("db2-fn:xmlcolumn('O.D')/a[b/xs:string(.) = 'x']");
        assert_eq!(preds_of(&a.cond)[0].target, CmpTarget::String);
        let a = analyze("db2-fn:xmlcolumn('O.D')/a[b/xs:double(.) = 7]");
        assert_eq!(preds_of(&a.cond)[0].target, CmpTarget::Double);
        // Incompatible constant under a cast: no candidate.
        let a = analyze("db2-fn:xmlcolumn('O.D')/a[b/xs:double(.) = 'not a number']");
        assert!(preds_of(&a.cond).is_empty());
    }

    #[test]
    fn let_binding_alone_produces_no_condition() {
        let a = analyze(
            "for $d in db2-fn:xmlcolumn('O.D') let $x := $d//a[b > 1] return <r>{$x}</r>",
        );
        assert!(preds_of(&a.cond).is_empty());
    }

    #[test]
    fn or_condition_structure() {
        let a = analyze("db2-fn:xmlcolumn('O.D')//a[b > 1 or c > 2]");
        match &a.cond {
            Cond::And(children) => {
                assert!(children.iter().any(|c| matches!(c, Cond::Or(_))));
            }
            Cond::Or(_) => {}
            other => panic!("expected Or inside, got {other:?}"),
        }
        assert_eq!(preds_of(&a.cond).len(), 2);
    }

    #[test]
    fn group_assigned_for_context_item_between() {
        let a = analyze("db2-fn:xmlcolumn('O.D')//p/data()[. > 1 and . < 2]");
        let preds = preds_of(&a.cond);
        assert_eq!(preds.len(), 2);
        assert!(preds[0].group.is_some());
        assert_eq!(preds[0].group, preds[1].group);
    }

    #[test]
    fn multi_step_element_path_not_singleton() {
        let a = analyze("db2-fn:xmlcolumn('O.D')//order[lineitem/price > 1]");
        let preds = preds_of(&a.cond);
        assert!(!preds[0].singleton, "element children may repeat");
    }

    #[test]
    fn const_value_evaluates_casts_and_negation() {
        use xqdb_xquery::parse_query;
        let q = parse_query("-5").unwrap();
        assert_eq!(const_value(&q.body), Some(AtomicValue::Integer(-5)));
        let q = parse_query("xs:date('2001-01-01')").unwrap();
        assert!(matches!(const_value(&q.body), Some(AtomicValue::Date(_))));
        let q = parse_query("'x' cast as xs:string").unwrap();
        assert!(matches!(const_value(&q.body), Some(AtomicValue::String(_))));
        let q = parse_query("$x").unwrap();
        assert_eq!(const_value(&q.body), None);
    }

    #[test]
    fn notes_emitted_for_constructor_predicates() {
        let a = analyze(
            "for $o in db2-fn:xmlcolumn('O.D')/order return <r>{$o/a[b > 1]}</r>",
        );
        assert!(a
            .notes
            .iter()
            .any(|n| matches!(n, Note::ConstructionBarrier { .. })), "{:?}", a.notes);
    }

    #[test]
    fn render_steps_shapes() {
        let a = analyze("db2-fn:xmlcolumn('O.D')/a/b[c/@d = 1]");
        let preds = preds_of(&a.cond);
        assert_eq!(render_steps(&preds[0].steps), "/a/b/c/@d");
    }
}
