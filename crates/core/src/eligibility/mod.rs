//! Index eligibility: matching extracted conditions against the catalog's
//! XML indexes (Definition 1 of the paper).

pub mod candidates;
pub mod containment;
pub mod cost;
pub mod doctor;

use std::collections::BTreeSet;
use std::ops::Bound;

use xqdb_xdm::compare::CompareOp;
use xqdb_xdm::{Budget, XdmError};
use xqdb_xmlindex::{ProbeRange, ProbeStats, XmlIndex};

pub use candidates::{
    analyze_filtering, analyze_non_filtering, analyze_non_filtering_with_ctx, analyze_query_root, render_cond,
    render_steps, resolve_docs_path, Analysis, AnalysisEnv, BindingPublic, Candidate, CmpTarget,
    Cond, Note,
};
pub use containment::path_contained_in;
pub use cost::{estimate_probe_entries, CostModel, Est};
pub use doctor::{diagnose, diagnose_misestimate, Diagnosis, Pitfall, RejectReason};

/// A compiled index-access condition for one collection.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexCond {
    /// One B+Tree range scan.
    Probe {
        /// Index name.
        index: String,
        /// Value range.
        range: ProbeRange,
        /// Human-readable description for EXPLAIN.
        desc: String,
    },
    /// Row-set intersection.
    And(Vec<IndexCond>),
    /// Row-set union.
    Or(Vec<IndexCond>),
}

impl IndexCond {
    /// Render for EXPLAIN output.
    pub fn render(&self) -> String {
        match self {
            IndexCond::Probe { index, desc, .. } => format!("PROBE {index} [{desc}]"),
            IndexCond::And(cs) => {
                let parts: Vec<String> = cs.iter().map(IndexCond::render).collect();
                format!("AND({})", parts.join(", "))
            }
            IndexCond::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(IndexCond::render).collect();
                format!("OR({})", parts.join(", "))
            }
        }
    }

    /// Evaluate against the given indexes, producing the matching rows.
    ///
    /// Fallible by design: a probe can trip the budget (`ResourceExhausted`
    /// / `Cancelled`), hit an injected or real index fault
    /// (`StorageFault`), or reference an index missing from the catalog
    /// (`Internal` — a planner bug, reported instead of panicking). The
    /// engine degrades `StorageFault` to a collection scan.
    pub fn execute(
        &self,
        indexes: &[&XmlIndex],
        stats: &mut ProbeStats,
        budget: &Budget,
    ) -> Result<BTreeSet<u64>, XdmError> {
        match self {
            IndexCond::Probe { index, range, .. } => {
                let idx = indexes.iter().find(|i| i.name == *index).ok_or_else(|| {
                    XdmError::internal(format!(
                        "compiled probe references unknown index {index}"
                    ))
                })?;
                let (rows, s) = idx.probe_guarded(range, budget)?;
                stats.entries_scanned += s.entries_scanned;
                stats.nodes_touched += s.nodes_touched;
                stats.probes += 1;
                Ok(rows)
            }
            IndexCond::And(cs) => {
                let mut iter = cs.iter();
                let mut acc = match iter.next() {
                    Some(c) => c.execute(indexes, stats, budget)?,
                    None => BTreeSet::new(),
                };
                for c in iter {
                    if acc.is_empty() {
                        break;
                    }
                    let rows = c.execute(indexes, stats, budget)?;
                    acc = acc.intersection(&rows).copied().collect();
                    stats.intersections += 1;
                }
                Ok(acc)
            }
            IndexCond::Or(cs) => {
                let mut acc = BTreeSet::new();
                for c in cs {
                    acc.extend(c.execute(indexes, stats, budget)?);
                }
                Ok(acc)
            }
        }
    }
}

/// Why a candidate could not be served by any index.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Rendering of the candidate.
    pub candidate: String,
    /// Per-index failure reasons (or a blanket "no indexes on source"),
    /// each classified by the query doctor.
    pub reasons: Vec<RejectReason>,
}

/// Result of compiling a condition for one collection.
#[derive(Debug, Clone, Default)]
pub struct Compilation {
    /// The access condition, if any index combination pre-filters.
    pub access: Option<IndexCond>,
    /// Candidates that could not be served, with reasons.
    pub rejections: Vec<Rejection>,
    /// (candidate, eligible index) pairs scored by the cost model.
    pub candidates_costed: u64,
    /// Estimated rows fetched by `access`, when a cost model was supplied.
    pub est_rows: Option<u64>,
    /// Costing decisions, rendered into EXPLAIN plan notes.
    pub cost_notes: Vec<String>,
}

/// Keep only the parts of `cond` that constrain documents of `source`;
/// everything else becomes `Any` (conservative).
pub fn restrict_to_source(cond: &Cond, source: &str) -> Cond {
    match cond {
        Cond::Any => Cond::Any,
        Cond::Pred(c) => {
            if c.source == source {
                cond.clone()
            } else {
                Cond::Any
            }
        }
        Cond::Exists { source: s, .. } => {
            if s == source {
                cond.clone()
            } else {
                Cond::Any
            }
        }
        Cond::And(cs) => {
            let kept: Vec<Cond> = cs.iter().map(|c| restrict_to_source(c, source)).collect();
            let kept: Vec<Cond> = kept.into_iter().filter(|c| !matches!(c, Cond::Any)).collect();
            match kept.len() {
                0 => Cond::Any,
                1 => kept.into_iter().next().unwrap_or(Cond::Any),
                _ => Cond::And(kept),
            }
        }
        Cond::Or(cs) => {
            let mapped: Vec<Cond> = cs.iter().map(|c| restrict_to_source(c, source)).collect();
            if mapped.iter().any(|c| matches!(c, Cond::Any)) {
                Cond::Any
            } else {
                Cond::Or(mapped)
            }
        }
    }
}

/// Mutable costing context threaded through compilation. With no model the
/// compiler is the original rule-based one: first eligible index wins and
/// every [`Est`] stays at its zero default.
struct CostCx<'m, 'a> {
    model: Option<&'m CostModel<'a>>,
    candidates_costed: u64,
    notes: Vec<String>,
}

/// Compile a (source-restricted) condition against that source's indexes.
///
/// With a [`CostModel`], eligible indexes are scored by estimated entries
/// scanned (lowest wins), and the finished access is weighed against the
/// scan it would pre-filter — a probe expected to touch far more index
/// entries than a sequential pass over the collection's documents and pages
/// is declined entirely (three-way choice: probe / prefilter-scan / scan).
pub fn compile(cond: &Cond, indexes: &[&XmlIndex], model: Option<&CostModel<'_>>) -> Compilation {
    let mut cx = CostCx { model, candidates_costed: 0, notes: Vec::new() };
    let mut rejections = Vec::new();
    let compiled = compile_cond(cond, indexes, &mut rejections, &mut cx);
    let mut out = Compilation {
        access: None,
        rejections,
        candidates_costed: cx.candidates_costed,
        est_rows: None,
        cost_notes: cx.notes,
    };
    if let Some((ic, est)) = compiled {
        if let Some(model) = model {
            let scan_cost = (model.docs + model.pages) as f64;
            if est.entries > scan_cost * 3.0 + 64.0 {
                out.cost_notes.push(format!(
                    "cost: declined index access (est {:.0} entries vs {} docs) — scan is cheaper",
                    est.entries, model.docs
                ));
                return out;
            }
            out.est_rows = Some(est.rows.round() as u64);
        }
        out.access = Some(ic);
    }
    out
}

fn compile_cond(
    cond: &Cond,
    indexes: &[&XmlIndex],
    rejections: &mut Vec<Rejection>,
    cx: &mut CostCx<'_, '_>,
) -> Option<(IndexCond, Est)> {
    match cond {
        Cond::Any => None,
        Cond::Pred(c) => compile_pred(c, indexes, rejections, cx),
        Cond::Exists { source, steps } => compile_exists(source, steps, indexes, cx),
        Cond::And(cs) => {
            // Between-merge first (Section 3.10), then compile children and
            // keep whichever succeed — any subset of a conjunction is still
            // a necessary condition.
            let merged = merge_between(cs);
            let mut compiled = Vec::new();
            let mut value_preds = 0usize;
            for child in &merged {
                if let MergedCond::Range { key: _, lo, hi, sample } = child {
                    let range = ProbeRange { lo: lo.clone(), hi: hi.clone() };
                    if let Some(probe) =
                        compile_range_probe(sample, range, indexes, rejections, true, cx)
                    {
                        compiled.push(probe);
                        value_preds += 1;
                    }
                    continue;
                }
                let MergedCond::Plain(child) = child else { continue };
                match child {
                    Cond::Exists { .. } => {} // second pass below
                    other => {
                        if let Some(ic) = compile_cond(other, indexes, rejections, cx) {
                            if !matches!(other, Cond::Exists { .. }) {
                                value_preds += 1;
                            }
                            compiled.push(ic);
                        }
                    }
                }
            }
            // Structural Exists probes are whole-index scans; only worth it
            // when no value predicate already filters (Section 2.2: "the
            // main benefit of indexes will come from supporting the value
            // predicates").
            if value_preds == 0 {
                for child in &merged {
                    if let MergedCond::Plain(Cond::Exists { source, steps }) = child {
                        if let Some(ic) = compile_exists(source, steps, indexes, cx) {
                            compiled.push(ic);
                            break;
                        }
                    }
                }
            }
            match compiled.len() {
                0 => None,
                1 => compiled.into_iter().next(),
                _ => {
                    // Docid-set intersection: every probe runs (entries add
                    // up), survivors are the least-selective lower bound.
                    let est = Est {
                        entries: compiled.iter().map(|(_, e)| e.entries).sum(),
                        rows: compiled
                            .iter()
                            .map(|(_, e)| e.rows)
                            .fold(f64::INFINITY, f64::min),
                    };
                    Some((IndexCond::And(compiled.into_iter().map(|(c, _)| c).collect()), est))
                }
            }
        }
        Cond::Or(cs) => {
            // Every branch must be answerable, else no pre-filtering.
            let mut compiled = Vec::with_capacity(cs.len());
            for c in cs {
                match compile_cond(c, indexes, rejections, cx) {
                    Some(ic) => compiled.push(ic),
                    None => return None,
                }
            }
            // Docid-set union: entries and surviving rows both add up.
            let est = Est {
                entries: compiled.iter().map(|(_, e)| e.entries).sum(),
                rows: compiled.iter().map(|(_, e)| e.rows).sum(),
            };
            Some((IndexCond::Or(compiled.into_iter().map(|(c, _)| c).collect()), est))
        }
    }
}

/// Children of a conjunction after between-merging.
#[allow(clippy::large_enum_variant)] // short-lived planning value, clarity over size
enum MergedCond<'a> {
    Plain(&'a Cond),
    Range {
        #[allow(dead_code)]
        key: String,
        lo: Bound<xqdb_xdm::AtomicValue>,
        hi: Bound<xqdb_xdm::AtomicValue>,
        /// A representative candidate (for index matching).
        sample: Candidate,
    },
}

/// Detect `x > lo and x < hi` pairs that are provably a single-value
/// "between" (value comparisons, attribute paths, or shared context item)
/// and merge them into one range scan.
fn merge_between<'a>(children: &'a [Cond]) -> Vec<MergedCond<'a>> {
    let mut used = vec![false; children.len()];
    let mut out = Vec::new();
    for i in 0..children.len() {
        if used[i] {
            continue;
        }
        let Cond::Pred(a) = &children[i] else {
            out.push(MergedCond::Plain(&children[i]));
            continue;
        };
        let a_is_lower = matches!(a.op, CompareOp::Gt | CompareOp::Ge);
        let a_is_upper = matches!(a.op, CompareOp::Lt | CompareOp::Le);
        if !a_is_lower && !a_is_upper {
            out.push(MergedCond::Plain(&children[i]));
            continue;
        }
        let mut merged = false;
        for j in (i + 1)..children.len() {
            if used[j] {
                continue;
            }
            let Cond::Pred(b) = &children[j] else { continue };
            let opposite = if a_is_lower {
                matches!(b.op, CompareOp::Lt | CompareOp::Le)
            } else {
                matches!(b.op, CompareOp::Gt | CompareOp::Ge)
            };
            if !opposite {
                continue;
            }
            if a.source != b.source || a.steps != b.steps || a.target != b.target {
                continue;
            }
            // The Section 3.10 singleton requirement: both sides compare
            // the same single value.
            let same_value = (a.singleton && b.singleton)
                || (a.group.is_some() && a.group == b.group);
            if !same_value {
                continue;
            }
            let (lo_c, hi_c) = if a_is_lower { (a, b) } else { (b, a) };
            let lo = match lo_c.op {
                CompareOp::Gt => Bound::Excluded(lo_c.value.clone()),
                CompareOp::Ge => Bound::Included(lo_c.value.clone()),
                _ => unreachable!("lower side is Gt/Ge"),
            };
            let hi = match hi_c.op {
                CompareOp::Lt => Bound::Excluded(hi_c.value.clone()),
                CompareOp::Le => Bound::Included(hi_c.value.clone()),
                _ => unreachable!("upper side is Lt/Le"),
            };
            out.push(MergedCond::Range {
                key: render_steps(&a.steps),
                lo,
                hi,
                sample: a.clone(),
            });
            used[i] = true;
            used[j] = true;
            merged = true;
            break;
        }
        if !merged {
            out.push(MergedCond::Plain(&children[i]));
        }
    }
    out
}

fn probe_range_for(c: &Candidate) -> Option<ProbeRange> {
    let v = c.value.clone();
    Some(match c.op {
        CompareOp::Eq => ProbeRange::eq(v),
        CompareOp::Gt => ProbeRange { lo: Bound::Excluded(v), hi: Bound::Unbounded },
        CompareOp::Ge => ProbeRange { lo: Bound::Included(v), hi: Bound::Unbounded },
        CompareOp::Lt => ProbeRange { lo: Bound::Unbounded, hi: Bound::Excluded(v) },
        CompareOp::Le => ProbeRange { lo: Bound::Unbounded, hi: Bound::Included(v) },
        // `!=` is a range complement; a single scan cannot answer it.
        CompareOp::Ne => return None,
    })
}

fn index_type_serves(idx: &XmlIndex, target: CmpTarget) -> bool {
    matches!(
        (idx.ty, target),
        (xqdb_xmlindex::IndexType::Double, CmpTarget::Double)
            | (xqdb_xmlindex::IndexType::Varchar, CmpTarget::String)
            | (xqdb_xmlindex::IndexType::Date, CmpTarget::Date)
            | (xqdb_xmlindex::IndexType::Timestamp, CmpTarget::Timestamp)
    )
}

fn compile_pred(
    c: &Candidate,
    indexes: &[&XmlIndex],
    rejections: &mut Vec<Rejection>,
    cx: &mut CostCx<'_, '_>,
) -> Option<(IndexCond, Est)> {
    let Some(range) = probe_range_for(c) else {
        rejections.push(Rejection {
            candidate: render_cond(&Cond::Pred(c.clone())),
            reasons: vec![RejectReason {
                pitfall: Pitfall::NotEqualsPredicate,
                index: None,
                detail: "'!=' predicates cannot be answered by a range scan".into(),
            }],
        });
        return None;
    };
    compile_range_probe(c, range, indexes, rejections, false, cx)
}

/// Pick the serving index among all eligible ones: first by catalog order
/// without a cost model, lowest estimated entries scanned with one (ties
/// keep catalog order, so costing is deterministic).
fn choose_costed<'i>(
    eligible: Vec<&'i XmlIndex>,
    range: &ProbeRange,
    subject: &str,
    cx: &mut CostCx<'_, '_>,
) -> (&'i XmlIndex, f64) {
    let Some(model) = cx.model else {
        return (eligible[0], 0.0);
    };
    let scored: Vec<(&XmlIndex, f64)> = eligible
        .into_iter()
        .map(|idx| {
            let est = estimate_probe_entries(model, idx, range);
            (idx, est)
        })
        .collect();
    cx.candidates_costed += scored.len() as u64;
    let mut best = 0usize;
    for i in 1..scored.len() {
        if scored[i].1 < scored[best].1 {
            best = i;
        }
    }
    if scored.len() > 1 {
        let losers: Vec<String> = scored
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != best)
            .map(|(_, (idx, e))| format!("{} (est {:.0})", idx.name, e))
            .collect();
        cx.notes.push(format!(
            "cost: {subject}: chose {} (est {:.0} entries) over {}",
            scored[best].0.name,
            scored[best].1,
            losers.join(", ")
        ));
    }
    scored[best]
}

fn compile_range_probe(
    c: &Candidate,
    range: ProbeRange,
    indexes: &[&XmlIndex],
    rejections: &mut Vec<Rejection>,
    between: bool,
    cx: &mut CostCx<'_, '_>,
) -> Option<(IndexCond, Est)> {
    let mut reasons = Vec::new();
    let mut eligible: Vec<&XmlIndex> = Vec::new();
    for idx in indexes {
        let key = format!("{}.{}", idx.table, idx.column);
        if key != c.source {
            continue;
        }
        if !index_type_serves(idx, c.target) {
            reasons.push(RejectReason {
                pitfall: Pitfall::TypeMismatch,
                index: Some(idx.name.clone()),
                detail: format!(
                    "{}: index type '{}' cannot serve a {} comparison (Section 3.1)",
                    idx.name, idx.ty, c.target
                ),
            });
            continue;
        }
        if !path_contained_in(&c.steps, &idx.pattern.steps) {
            // The doctor refines the generic Definition 1 failure into the
            // specific pitfall (namespace / text() / attribute-axis tips).
            let pitfall = doctor::classify_containment_failure(&c.steps, &idx.pattern.steps);
            reasons.push(RejectReason {
                pitfall,
                index: Some(idx.name.clone()),
                detail: format!(
                    "{}: query path {} is not contained in XMLPATTERN '{}' (Definition 1)",
                    idx.name,
                    render_steps(&c.steps),
                    idx.pattern
                ),
            });
            continue;
        }
        eligible.push(idx);
        if cx.model.is_none() {
            break; // rule-based: first eligible wins, stop looking
        }
    }
    if eligible.is_empty() {
        if reasons.is_empty() {
            reasons.push(RejectReason {
                pitfall: Pitfall::NoIndex,
                index: None,
                detail: format!("no XML index on {}", c.source),
            });
        }
        rejections.push(Rejection {
            candidate: render_cond(&Cond::Pred(c.clone())),
            reasons,
        });
        return None;
    }
    let subject = render_steps(&c.steps);
    let (chosen, est_entries) = choose_costed(eligible, &range, &subject, cx);
    let desc = if between {
        format!("{} between-range on {}", c.target, subject)
    } else {
        format!(
            "{} {} {} on {}",
            c.target,
            c.op.general_symbol(),
            c.value.lexical(),
            subject
        )
    };
    let est = match cx.model {
        Some(m) => Est { entries: est_entries, rows: est_entries.min(m.docs as f64) },
        None => Est::default(),
    };
    Some((IndexCond::Probe { index: chosen.name.clone(), range, desc }, est))
}

fn compile_exists(
    source: &str,
    steps: &[xqdb_xquery::PatternStep],
    indexes: &[&XmlIndex],
    cx: &mut CostCx<'_, '_>,
) -> Option<(IndexCond, Est)> {
    // A varchar index "by definition includes all matching values", so a
    // full range scan answers the structural predicate (Section 2.2).
    let eligible: Vec<&XmlIndex> = indexes
        .iter()
        .copied()
        .filter(|idx| {
            format!("{}.{}", idx.table, idx.column) == source
                && idx.ty == xqdb_xmlindex::IndexType::Varchar
                && path_contained_in(steps, &idx.pattern.steps)
        })
        .collect();
    if eligible.is_empty() {
        return None;
    }
    let range = ProbeRange::all();
    let eligible = if cx.model.is_none() { vec![eligible[0]] } else { eligible };
    let subject = render_steps(steps);
    let (chosen, est_entries) = choose_costed(eligible, &range, &subject, cx);
    let est = match cx.model {
        Some(m) => Est { entries: est_entries, rows: est_entries.min(m.docs as f64) },
        None => Est::default(),
    };
    Some((
        IndexCond::Probe {
            index: chosen.name.clone(),
            range,
            desc: format!("structural scan for {subject}"),
        },
        est,
    ))
}
