//! Index eligibility: matching extracted conditions against the catalog's
//! XML indexes (Definition 1 of the paper).

pub mod candidates;
pub mod containment;
pub mod doctor;

use std::collections::BTreeSet;
use std::ops::Bound;

use xqdb_xdm::compare::CompareOp;
use xqdb_xdm::{Budget, XdmError};
use xqdb_xmlindex::{ProbeRange, ProbeStats, XmlIndex};

pub use candidates::{
    analyze_filtering, analyze_non_filtering, analyze_non_filtering_with_ctx, analyze_query_root, render_cond,
    render_steps, resolve_docs_path, Analysis, AnalysisEnv, BindingPublic, Candidate, CmpTarget,
    Cond, Note,
};
pub use containment::path_contained_in;
pub use doctor::{diagnose, Diagnosis, Pitfall, RejectReason};

/// A compiled index-access condition for one collection.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexCond {
    /// One B+Tree range scan.
    Probe {
        /// Index name.
        index: String,
        /// Value range.
        range: ProbeRange,
        /// Human-readable description for EXPLAIN.
        desc: String,
    },
    /// Row-set intersection.
    And(Vec<IndexCond>),
    /// Row-set union.
    Or(Vec<IndexCond>),
}

impl IndexCond {
    /// Render for EXPLAIN output.
    pub fn render(&self) -> String {
        match self {
            IndexCond::Probe { index, desc, .. } => format!("PROBE {index} [{desc}]"),
            IndexCond::And(cs) => {
                let parts: Vec<String> = cs.iter().map(IndexCond::render).collect();
                format!("AND({})", parts.join(", "))
            }
            IndexCond::Or(cs) => {
                let parts: Vec<String> = cs.iter().map(IndexCond::render).collect();
                format!("OR({})", parts.join(", "))
            }
        }
    }

    /// Evaluate against the given indexes, producing the matching rows.
    ///
    /// Fallible by design: a probe can trip the budget (`ResourceExhausted`
    /// / `Cancelled`), hit an injected or real index fault
    /// (`StorageFault`), or reference an index missing from the catalog
    /// (`Internal` — a planner bug, reported instead of panicking). The
    /// engine degrades `StorageFault` to a collection scan.
    pub fn execute(
        &self,
        indexes: &[&XmlIndex],
        stats: &mut ProbeStats,
        budget: &Budget,
    ) -> Result<BTreeSet<u64>, XdmError> {
        match self {
            IndexCond::Probe { index, range, .. } => {
                let idx = indexes.iter().find(|i| i.name == *index).ok_or_else(|| {
                    XdmError::internal(format!(
                        "compiled probe references unknown index {index}"
                    ))
                })?;
                let (rows, s) = idx.probe_guarded(range, budget)?;
                stats.entries_scanned += s.entries_scanned;
                stats.nodes_touched += s.nodes_touched;
                stats.probes += 1;
                Ok(rows)
            }
            IndexCond::And(cs) => {
                let mut iter = cs.iter();
                let mut acc = match iter.next() {
                    Some(c) => c.execute(indexes, stats, budget)?,
                    None => BTreeSet::new(),
                };
                for c in iter {
                    if acc.is_empty() {
                        break;
                    }
                    let rows = c.execute(indexes, stats, budget)?;
                    acc = acc.intersection(&rows).copied().collect();
                }
                Ok(acc)
            }
            IndexCond::Or(cs) => {
                let mut acc = BTreeSet::new();
                for c in cs {
                    acc.extend(c.execute(indexes, stats, budget)?);
                }
                Ok(acc)
            }
        }
    }
}

/// Why a candidate could not be served by any index.
#[derive(Debug, Clone, PartialEq)]
pub struct Rejection {
    /// Rendering of the candidate.
    pub candidate: String,
    /// Per-index failure reasons (or a blanket "no indexes on source"),
    /// each classified by the query doctor.
    pub reasons: Vec<RejectReason>,
}

/// Result of compiling a condition for one collection.
#[derive(Debug, Clone, Default)]
pub struct Compilation {
    /// The access condition, if any index combination pre-filters.
    pub access: Option<IndexCond>,
    /// Candidates that could not be served, with reasons.
    pub rejections: Vec<Rejection>,
}

/// Keep only the parts of `cond` that constrain documents of `source`;
/// everything else becomes `Any` (conservative).
pub fn restrict_to_source(cond: &Cond, source: &str) -> Cond {
    match cond {
        Cond::Any => Cond::Any,
        Cond::Pred(c) => {
            if c.source == source {
                cond.clone()
            } else {
                Cond::Any
            }
        }
        Cond::Exists { source: s, .. } => {
            if s == source {
                cond.clone()
            } else {
                Cond::Any
            }
        }
        Cond::And(cs) => {
            let kept: Vec<Cond> = cs.iter().map(|c| restrict_to_source(c, source)).collect();
            let kept: Vec<Cond> = kept.into_iter().filter(|c| !matches!(c, Cond::Any)).collect();
            match kept.len() {
                0 => Cond::Any,
                1 => kept.into_iter().next().unwrap_or(Cond::Any),
                _ => Cond::And(kept),
            }
        }
        Cond::Or(cs) => {
            let mapped: Vec<Cond> = cs.iter().map(|c| restrict_to_source(c, source)).collect();
            if mapped.iter().any(|c| matches!(c, Cond::Any)) {
                Cond::Any
            } else {
                Cond::Or(mapped)
            }
        }
    }
}

/// Compile a (source-restricted) condition against that source's indexes.
pub fn compile(cond: &Cond, indexes: &[&XmlIndex]) -> Compilation {
    let mut out = Compilation::default();
    out.access = compile_cond(cond, indexes, &mut out.rejections);
    out
}

fn compile_cond(
    cond: &Cond,
    indexes: &[&XmlIndex],
    rejections: &mut Vec<Rejection>,
) -> Option<IndexCond> {
    match cond {
        Cond::Any => None,
        Cond::Pred(c) => compile_pred(c, indexes, rejections),
        Cond::Exists { source, steps } => compile_exists(source, steps, indexes),
        Cond::And(cs) => {
            // Between-merge first (Section 3.10), then compile children and
            // keep whichever succeed — any subset of a conjunction is still
            // a necessary condition.
            let merged = merge_between(cs);
            let mut compiled = Vec::new();
            let mut value_preds = 0usize;
            for child in &merged {
                if let MergedCond::Range { key: _, lo, hi, sample } = child {
                    let range = ProbeRange { lo: lo.clone(), hi: hi.clone() };
                    if let Some(probe) =
                        compile_range_probe(sample, range, indexes, rejections, true)
                    {
                        compiled.push(probe);
                        value_preds += 1;
                    }
                    continue;
                }
                let MergedCond::Plain(child) = child else { continue };
                match child {
                    Cond::Exists { .. } => {} // second pass below
                    other => {
                        if let Some(ic) = compile_cond(other, indexes, rejections) {
                            if !matches!(other, Cond::Exists { .. }) {
                                value_preds += 1;
                            }
                            compiled.push(ic);
                        }
                    }
                }
            }
            // Structural Exists probes are whole-index scans; only worth it
            // when no value predicate already filters (Section 2.2: "the
            // main benefit of indexes will come from supporting the value
            // predicates").
            if value_preds == 0 {
                for child in &merged {
                    if let MergedCond::Plain(Cond::Exists { source, steps }) = child {
                        if let Some(ic) = compile_exists(source, steps, indexes) {
                            compiled.push(ic);
                            break;
                        }
                    }
                }
            }
            match compiled.len() {
                0 => None,
                1 => compiled.into_iter().next(),
                _ => Some(IndexCond::And(compiled)),
            }
        }
        Cond::Or(cs) => {
            // Every branch must be answerable, else no pre-filtering.
            let mut compiled = Vec::with_capacity(cs.len());
            for c in cs {
                match compile_cond(c, indexes, rejections) {
                    Some(ic) => compiled.push(ic),
                    None => return None,
                }
            }
            Some(IndexCond::Or(compiled))
        }
    }
}

/// Children of a conjunction after between-merging.
#[allow(clippy::large_enum_variant)] // short-lived planning value, clarity over size
enum MergedCond<'a> {
    Plain(&'a Cond),
    Range {
        #[allow(dead_code)]
        key: String,
        lo: Bound<xqdb_xdm::AtomicValue>,
        hi: Bound<xqdb_xdm::AtomicValue>,
        /// A representative candidate (for index matching).
        sample: Candidate,
    },
}

/// Detect `x > lo and x < hi` pairs that are provably a single-value
/// "between" (value comparisons, attribute paths, or shared context item)
/// and merge them into one range scan.
fn merge_between<'a>(children: &'a [Cond]) -> Vec<MergedCond<'a>> {
    let mut used = vec![false; children.len()];
    let mut out = Vec::new();
    for i in 0..children.len() {
        if used[i] {
            continue;
        }
        let Cond::Pred(a) = &children[i] else {
            out.push(MergedCond::Plain(&children[i]));
            continue;
        };
        let a_is_lower = matches!(a.op, CompareOp::Gt | CompareOp::Ge);
        let a_is_upper = matches!(a.op, CompareOp::Lt | CompareOp::Le);
        if !a_is_lower && !a_is_upper {
            out.push(MergedCond::Plain(&children[i]));
            continue;
        }
        let mut merged = false;
        for j in (i + 1)..children.len() {
            if used[j] {
                continue;
            }
            let Cond::Pred(b) = &children[j] else { continue };
            let opposite = if a_is_lower {
                matches!(b.op, CompareOp::Lt | CompareOp::Le)
            } else {
                matches!(b.op, CompareOp::Gt | CompareOp::Ge)
            };
            if !opposite {
                continue;
            }
            if a.source != b.source || a.steps != b.steps || a.target != b.target {
                continue;
            }
            // The Section 3.10 singleton requirement: both sides compare
            // the same single value.
            let same_value = (a.singleton && b.singleton)
                || (a.group.is_some() && a.group == b.group);
            if !same_value {
                continue;
            }
            let (lo_c, hi_c) = if a_is_lower { (a, b) } else { (b, a) };
            let lo = match lo_c.op {
                CompareOp::Gt => Bound::Excluded(lo_c.value.clone()),
                CompareOp::Ge => Bound::Included(lo_c.value.clone()),
                _ => unreachable!("lower side is Gt/Ge"),
            };
            let hi = match hi_c.op {
                CompareOp::Lt => Bound::Excluded(hi_c.value.clone()),
                CompareOp::Le => Bound::Included(hi_c.value.clone()),
                _ => unreachable!("upper side is Lt/Le"),
            };
            out.push(MergedCond::Range {
                key: render_steps(&a.steps),
                lo,
                hi,
                sample: a.clone(),
            });
            used[i] = true;
            used[j] = true;
            merged = true;
            break;
        }
        if !merged {
            out.push(MergedCond::Plain(&children[i]));
        }
    }
    out
}

fn probe_range_for(c: &Candidate) -> Option<ProbeRange> {
    let v = c.value.clone();
    Some(match c.op {
        CompareOp::Eq => ProbeRange::eq(v),
        CompareOp::Gt => ProbeRange { lo: Bound::Excluded(v), hi: Bound::Unbounded },
        CompareOp::Ge => ProbeRange { lo: Bound::Included(v), hi: Bound::Unbounded },
        CompareOp::Lt => ProbeRange { lo: Bound::Unbounded, hi: Bound::Excluded(v) },
        CompareOp::Le => ProbeRange { lo: Bound::Unbounded, hi: Bound::Included(v) },
        // `!=` is a range complement; a single scan cannot answer it.
        CompareOp::Ne => return None,
    })
}

fn index_type_serves(idx: &XmlIndex, target: CmpTarget) -> bool {
    matches!(
        (idx.ty, target),
        (xqdb_xmlindex::IndexType::Double, CmpTarget::Double)
            | (xqdb_xmlindex::IndexType::Varchar, CmpTarget::String)
            | (xqdb_xmlindex::IndexType::Date, CmpTarget::Date)
            | (xqdb_xmlindex::IndexType::Timestamp, CmpTarget::Timestamp)
    )
}

fn compile_pred(
    c: &Candidate,
    indexes: &[&XmlIndex],
    rejections: &mut Vec<Rejection>,
) -> Option<IndexCond> {
    let Some(range) = probe_range_for(c) else {
        rejections.push(Rejection {
            candidate: render_cond(&Cond::Pred(c.clone())),
            reasons: vec![RejectReason {
                pitfall: Pitfall::NotEqualsPredicate,
                index: None,
                detail: "'!=' predicates cannot be answered by a range scan".into(),
            }],
        });
        return None;
    };
    compile_range_probe(c, range, indexes, rejections, false)
}

fn compile_range_probe(
    c: &Candidate,
    range: ProbeRange,
    indexes: &[&XmlIndex],
    rejections: &mut Vec<Rejection>,
    between: bool,
) -> Option<IndexCond> {
    let mut reasons = Vec::new();
    for idx in indexes {
        let key = format!("{}.{}", idx.table, idx.column);
        if key != c.source {
            continue;
        }
        if !index_type_serves(idx, c.target) {
            reasons.push(RejectReason {
                pitfall: Pitfall::TypeMismatch,
                index: Some(idx.name.clone()),
                detail: format!(
                    "{}: index type '{}' cannot serve a {} comparison (Section 3.1)",
                    idx.name, idx.ty, c.target
                ),
            });
            continue;
        }
        if !path_contained_in(&c.steps, &idx.pattern.steps) {
            // The doctor refines the generic Definition 1 failure into the
            // specific pitfall (namespace / text() / attribute-axis tips).
            let pitfall = doctor::classify_containment_failure(&c.steps, &idx.pattern.steps);
            reasons.push(RejectReason {
                pitfall,
                index: Some(idx.name.clone()),
                detail: format!(
                    "{}: query path {} is not contained in XMLPATTERN '{}' (Definition 1)",
                    idx.name,
                    render_steps(&c.steps),
                    idx.pattern
                ),
            });
            continue;
        }
        let desc = if between {
            format!("{} between-range on {}", c.target, render_steps(&c.steps))
        } else {
            format!(
                "{} {} {} on {}",
                c.target,
                c.op.general_symbol(),
                c.value.lexical(),
                render_steps(&c.steps)
            )
        };
        return Some(IndexCond::Probe { index: idx.name.clone(), range, desc });
    }
    if reasons.is_empty() {
        reasons.push(RejectReason {
            pitfall: Pitfall::NoIndex,
            index: None,
            detail: format!("no XML index on {}", c.source),
        });
    }
    rejections.push(Rejection {
        candidate: render_cond(&Cond::Pred(c.clone())),
        reasons,
    });
    None
}

fn compile_exists(
    source: &str,
    steps: &[xqdb_xquery::PatternStep],
    indexes: &[&XmlIndex],
) -> Option<IndexCond> {
    // A varchar index "by definition includes all matching values", so a
    // full range scan answers the structural predicate (Section 2.2).
    for idx in indexes {
        if format!("{}.{}", idx.table, idx.column) == source
            && idx.ty == xqdb_xmlindex::IndexType::Varchar
            && path_contained_in(steps, &idx.pattern.steps)
        {
            return Some(IndexCond::Probe {
                index: idx.name.clone(),
                range: ProbeRange::all(),
                desc: format!("structural scan for {}", render_steps(steps)),
            });
        }
    }
    None
}
