//! Selectivity estimation from the path synopsis (ROADMAP item 1).
//!
//! The eligibility check (Definition 1) is binary: an index either covers a
//! candidate path or it does not. When several indexes are eligible the
//! rule-based planner takes the first by catalog order, so a broad `//@*`
//! index can beat a narrow one purely by CREATE INDEX order. This module
//! supplies the missing quantity: for each eligible index, *how many index
//! entries would the probe touch*, estimated from the per-path value
//! histograms the table's [`PathSynopsis`] maintains incrementally on
//! INSERT/DELETE/REPLACE.
//!
//! Every estimate is advisory: probes remain conservative pre-filters, so a
//! misestimate can only cost time, never rows (Definition 1). That is what
//! makes the costed planner safe to gate behind `XQDB_COST` and to compare
//! byte-for-byte against the rule-based one in `tests/cost_prop.rs`.

use std::ops::Bound;

use xqdb_storage::PathSynopsis;
use xqdb_xdm::AtomicValue;
use xqdb_xmlindex::{IndexType, ProbeRange, XmlIndex};
use xqdb_xquery::ast::{Axis, KindTest, LocalTest, NameTest, NodeTest, NsTest};
use xqdb_xquery::PatternStep;

use super::containment::path_contained_in;

/// Planning-time statistics for one collection (a `TABLE.COLUMN` source).
///
/// Built by the catalog only when the table's synopsis has complete value
/// statistics — after manifest adoption of unparsed rows the stats are
/// sticky-incomplete and the planner falls back to rule-based choice.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    /// Live documents in the collection (rows minus tombstones).
    pub docs: u64,
    /// Heap pages backing the table — the I/O proxy for the scan side of
    /// the three-way probe / prefilter-scan / full-scan choice.
    pub pages: u64,
    /// The owning table's path synopsis with per-path value histograms.
    pub synopsis: &'a PathSynopsis,
}

/// An estimate attached to a compiled access condition.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Est {
    /// Estimated index entries touched by the probe(s).
    pub entries: f64,
    /// Estimated documents surviving the probe(s) (rows fetched).
    pub rows: f64,
}

/// Estimate how many index entries a probe of `idx` with `range` scans.
///
/// Sums per-path estimates over every synopsis path whose nodes the index
/// pattern covers; a path without value statistics contributes its full
/// document count (conservative — overestimates never starve the index of
/// use, they only push the choice toward the scan).
pub fn estimate_probe_entries(
    model: &CostModel<'_>,
    idx: &XmlIndex,
    range: &ProbeRange,
) -> f64 {
    let mut total = 0.0;
    for (path, docs, stats) in model.synopsis.stats_entries() {
        let Some(steps) = rendered_path_steps(&path) else { continue };
        if !pattern_covers(&steps, &idx.pattern.steps) {
            continue;
        }
        total += match stats {
            Some(s) => estimate_in_range(s, range, idx.ty),
            None => docs as f64,
        };
    }
    total
}

/// Does the index pattern cover nodes at this (fully concrete, linear)
/// synopsis path? Containment of a concrete path in a pattern *is* the
/// match test, so the Definition 1 checker doubles as the matcher. A
/// trailing `text()` retry aligns element-valued synopsis paths with
/// `/text()` index patterns (the Section 3.8 pairing).
fn pattern_covers(path: &[PatternStep], pattern: &[PatternStep]) -> bool {
    if path_contained_in(path, pattern) {
        return true;
    }
    let mut with_text = path.to_vec();
    with_text.push(PatternStep {
        axis: Axis::Child,
        test: NodeTest::Kind(KindTest::Text),
    });
    path_contained_in(&with_text, pattern)
}

/// Parse a synopsis-rendered path (`/a/{uri}b/@c`) back into linear
/// pattern steps. URIs may contain `/`, so components are scanned, not
/// split: a `{` after the step prefix runs to its closing `}`.
fn rendered_path_steps(path: &str) -> Option<Vec<PatternStep>> {
    let mut steps = Vec::new();
    let bytes = path.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'/' {
            return None;
        }
        i += 1;
        let attribute = bytes.get(i) == Some(&b'@');
        if attribute {
            i += 1;
        }
        let mut ns = NsTest::NoNamespace;
        if bytes.get(i) == Some(&b'{') {
            let close = path[i..].find('}').map(|p| i + p)?;
            ns = NsTest::Uri(path[i + 1..close].into());
            i = close + 1;
        }
        let start = i;
        while i < bytes.len() && bytes[i] != b'/' {
            i += 1;
        }
        if start == i {
            return None;
        }
        steps.push(PatternStep {
            axis: if attribute { Axis::Attribute } else { Axis::Child },
            test: NodeTest::Name(NameTest {
                ns,
                local: LocalTest::Name(path[start..i].into()),
            }),
        });
    }
    if steps.is_empty() {
        None
    } else {
        Some(steps)
    }
}

fn bound_f64(b: &Bound<AtomicValue>) -> Option<f64> {
    match b {
        Bound::Included(v) | Bound::Excluded(v) => {
            v.as_f64().or_else(|| v.lexical().trim().parse::<f64>().ok())
        }
        Bound::Unbounded => None,
    }
}

/// Estimate entries in `range` against one path's value statistics.
fn estimate_in_range(s: &xqdb_storage::ValueStats, range: &ProbeRange, ty: IndexType) -> f64 {
    let unb_lo = matches!(range.lo, Bound::Unbounded);
    let unb_hi = matches!(range.hi, Bound::Unbounded);
    if unb_lo && unb_hi {
        // Structural scan: every entry under the path.
        return s.total() as f64;
    }
    // Point probe?
    if let (Bound::Included(lo), Bound::Included(hi)) = (&range.lo, &range.hi) {
        if lo == hi {
            return match ty {
                IndexType::Double => match bound_f64(&range.lo) {
                    Some(v) => s.estimate_eq(v),
                    None => s.estimate_eq_lexical(),
                },
                _ => s.estimate_eq_lexical(),
            };
        }
    }
    // Open or closed range. The histogram is numeric; lexical ranges
    // (varchar/date/timestamp indexes) get a fixed 1/3 selectivity
    // heuristic, as do numeric ranges whose bound does not parse.
    if ty == IndexType::Double {
        let lo = bound_f64(&range.lo);
        let hi = bound_f64(&range.hi);
        if (lo.is_some() || unb_lo) && (hi.is_some() || unb_hi) {
            return s.estimate_range(lo, hi);
        }
    }
    s.total() as f64 / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdb_xquery::parse_pattern;

    #[test]
    fn rendered_paths_parse_to_steps() {
        let steps = rendered_path_steps("/a/b/@c").expect("parses");
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[2].axis, Axis::Attribute);
        let ns = rendered_path_steps("/{http://ex.com/ns}a/b").expect("parses");
        match &ns[0].test {
            NodeTest::Name(NameTest { ns: NsTest::Uri(u), local: LocalTest::Name(l) }) => {
                assert_eq!(&**u, "http://ex.com/ns");
                assert_eq!(&**l, "a");
            }
            other => panic!("unexpected test: {other:?}"),
        }
        assert!(rendered_path_steps("").is_none());
        assert!(rendered_path_steps("no-slash").is_none());
    }

    #[test]
    fn concrete_paths_match_patterns_via_containment() {
        let path = rendered_path_steps("/items/item/@price").expect("parses");
        assert!(pattern_covers(&path, &parse_pattern("//@price").expect("p").steps));
        assert!(pattern_covers(&path, &parse_pattern("//item/@price").expect("p").steps));
        assert!(!pattern_covers(&path, &parse_pattern("//item/@qty").expect("p").steps));
        // Element path with a /text() index pattern (Section 3.8 pairing).
        let el = rendered_path_steps("/items/item/price").expect("parses");
        assert!(pattern_covers(&el, &parse_pattern("//price/text()").expect("p").steps));
    }
}
