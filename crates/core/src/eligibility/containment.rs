//! Pattern containment: is every node matched by the query's path also
//! matched by the index's pattern?
//!
//! Definition 1 of the paper requires the index to contain *all* nodes the
//! predicate could select — "an index cannot be used to answer a predicate
//! in the query expression if the index expression is more restrictive than
//! the query expression". For linear paths over `/`, `//`, `*`, namespace
//! wildcards and kind tests, this is language containment of two
//! word-automata, decided exactly here by:
//!
//! 1. building a **symbolic alphabet**: one representative node description
//!    per equivalence class of the node tests occurring in either pattern
//!    (concrete names and namespaces mentioned, plus "fresh" fillers);
//! 2. running the same state-set simulation the index matcher uses, as a
//!    subset construction over the **product** of the two patterns'
//!    configurations;
//! 3. searching for a reachable configuration where the query accepts and
//!    the index does not — a counterexample document path.
//!
//! The algorithm is sound *and complete* for the pattern language (linear
//! paths have no branching, so the coNP-hardness of general XPath
//! containment does not apply).

use std::collections::HashSet;
use std::sync::Arc;

use xqdb_xquery::ast::{Axis, KindTest, LocalTest, NameTest, NodeTest, NsTest};
use xqdb_xquery::PatternStep;

/// Abstract node kinds for symbolic execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SymKind {
    Element,
    Attribute,
    Text,
    Comment,
    /// A PI with the given target (`None` = a target not mentioned by any
    /// test).
    Pi(Option<Arc<str>>),
}

/// A symbolic node: kind plus (for named kinds) namespace and local name
/// drawn from the mentioned-names-plus-fresh alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SymNode {
    kind: SymKind,
    /// `None` = no namespace; `Some(uri)` = that URI ("\u{0}fresh" is the
    /// fresh representative).
    ns: Option<Arc<str>>,
    local: Arc<str>,
}

/// Edge kinds in a document path word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SymEdge {
    Child,
    Attr,
}

const FRESH: &str = "\u{0}fresh";

/// Collect the symbolic alphabet induced by both patterns' tests.
fn alphabet(a: &[PatternStep], b: &[PatternStep]) -> Vec<(SymEdge, SymNode)> {
    let mut namespaces: HashSet<Option<Arc<str>>> = HashSet::new();
    namespaces.insert(None);
    namespaces.insert(Some(Arc::from(FRESH)));
    let mut locals: HashSet<Arc<str>> = HashSet::new();
    locals.insert(Arc::from(FRESH));
    let mut pi_targets: HashSet<Option<Arc<str>>> = HashSet::new();
    pi_targets.insert(None);

    let visit_name_test = |nt: &NameTest,
                               namespaces: &mut HashSet<Option<Arc<str>>>,
                               locals: &mut HashSet<Arc<str>>| {
        match &nt.ns {
            NsTest::Uri(u) => {
                namespaces.insert(Some(u.clone()));
            }
            NsTest::NoNamespace | NsTest::Any => {}
        }
        if let LocalTest::Name(n) = &nt.local {
            locals.insert(n.clone());
        }
    };

    for step in a.iter().chain(b.iter()) {
        match &step.test {
            NodeTest::Name(nt) => visit_name_test(nt, &mut namespaces, &mut locals),
            NodeTest::Kind(KindTest::Element(Some(nt)))
            | NodeTest::Kind(KindTest::Attribute(Some(nt))) => {
                visit_name_test(nt, &mut namespaces, &mut locals)
            }
            NodeTest::Kind(KindTest::Pi(Some(t))) => {
                pi_targets.insert(Some(t.clone()));
            }
            _ => {}
        }
    }

    let mut symbols = Vec::new();
    // Named kinds: elements via child edges, attributes via attr edges.
    for ns in &namespaces {
        for local in &locals {
            symbols.push((
                SymEdge::Child,
                SymNode { kind: SymKind::Element, ns: ns.clone(), local: local.clone() },
            ));
            symbols.push((
                SymEdge::Attr,
                SymNode { kind: SymKind::Attribute, ns: ns.clone(), local: local.clone() },
            ));
        }
    }
    // Unnamed kinds.
    for kind in [SymKind::Text, SymKind::Comment] {
        symbols.push((
            SymEdge::Child,
            SymNode { kind, ns: None, local: Arc::from(FRESH) },
        ));
    }
    for t in &pi_targets {
        symbols.push((
            SymEdge::Child,
            SymNode { kind: SymKind::Pi(t.clone()), ns: None, local: Arc::from(FRESH) },
        ));
    }
    symbols
}

fn name_test_matches_sym(nt: &NameTest, node: &SymNode) -> bool {
    let ns_ok = match &nt.ns {
        NsTest::Any => true,
        NsTest::NoNamespace => node.ns.is_none(),
        NsTest::Uri(u) => node.ns.as_deref() == Some(&**u),
    };
    let local_ok = match &nt.local {
        LocalTest::Any => true,
        LocalTest::Name(n) => node.local == *n,
    };
    ns_ok && local_ok
}

fn test_matches_sym(test: &NodeTest, node: &SymNode) -> bool {
    match test {
        NodeTest::Name(nt) => {
            matches!(node.kind, SymKind::Element | SymKind::Attribute)
                && name_test_matches_sym(nt, node)
        }
        NodeTest::Kind(kt) => match kt {
            KindTest::AnyKind => true,
            KindTest::Text => node.kind == SymKind::Text,
            KindTest::Comment => node.kind == SymKind::Comment,
            KindTest::Document => false, // interior symbols are never documents
            KindTest::Pi(target) => match &node.kind {
                SymKind::Pi(t) => match target {
                    None => true,
                    Some(want) => t.as_ref() == Some(want),
                },
                _ => false,
            },
            KindTest::Element(nt) => {
                node.kind == SymKind::Element
                    && nt.as_ref().is_none_or(|t| name_test_matches_sym(t, node))
            }
            KindTest::Attribute(nt) => {
                node.kind == SymKind::Attribute
                    && nt.as_ref().is_none_or(|t| name_test_matches_sym(t, node))
            }
        },
    }
}

/// Whether a name test (used where the principal kind is the edge's target
/// kind) matches — name tests only match the principal kind of their axis.
fn step_test_matches(test: &NodeTest, edge: SymEdge, node: &SymNode) -> bool {
    match test {
        NodeTest::Name(nt) => match edge {
            SymEdge::Child => node.kind == SymKind::Element && name_test_matches_sym(nt, node),
            SymEdge::Attr => node.kind == SymKind::Attribute && name_test_matches_sym(nt, node),
        },
        NodeTest::Kind(_) => test_matches_sym(test, node),
    }
}

/// A pattern configuration: settled states + pending `//` states, exactly
/// mirroring the runtime matcher. Stored as sorted vectors for hashing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Config {
    settled: Vec<u16>,
    pending: Vec<u16>,
}

struct SymMachine<'p> {
    steps: &'p [NormStep],
}

/// Normalized step (same normalization as the index matcher).
#[derive(Debug, Clone)]
enum NormStep {
    Child(NodeTest),
    Attr(NodeTest),
    SelfStep(NodeTest),
    DoS(NodeTest),
}

fn normalize(steps: &[PatternStep]) -> Vec<NormStep> {
    let mut out = Vec::with_capacity(steps.len() + 2);
    for PatternStep { axis, test } in steps {
        match axis {
            Axis::Child => out.push(NormStep::Child(test.clone())),
            Axis::Attribute => out.push(NormStep::Attr(test.clone())),
            Axis::SelfAxis => out.push(NormStep::SelfStep(test.clone())),
            Axis::DescendantOrSelf => out.push(NormStep::DoS(test.clone())),
            Axis::Descendant => {
                out.push(NormStep::DoS(NodeTest::Kind(KindTest::AnyKind)));
                out.push(NormStep::Child(test.clone()));
            }
            Axis::Parent => {
                // Parent axes never occur in patterns or extracted candidate
                // paths (extraction refuses them); treat as unmatchable.
                out.push(NormStep::Child(NodeTest::Kind(KindTest::Document)));
            }
        }
    }
    out
}

impl<'p> SymMachine<'p> {
    fn initial(&self) -> Config {
        let mut settled = vec![0u16];
        self.close_doc(&mut settled);
        let pending = self.pending(&settled);
        Config { settled, pending }
    }

    /// Closure at the document node: Self/DoS steps whose test accepts a
    /// document node.
    fn close_doc(&self, settled: &mut Vec<u16>) {
        let mut i = 0;
        while i < settled.len() {
            let s = settled[i] as usize;
            match self.steps.get(s) {
                Some(NormStep::SelfStep(t)) | Some(NormStep::DoS(t)) => {
                    let doc_ok = matches!(
                        t,
                        NodeTest::Kind(KindTest::AnyKind) | NodeTest::Kind(KindTest::Document)
                    );
                    if doc_ok {
                        push_unique(settled, (s + 1) as u16);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        settled.sort_unstable();
    }

    fn close_at(&self, settled: &mut Vec<u16>, edge: SymEdge, node: &SymNode) {
        let mut i = 0;
        while i < settled.len() {
            let s = settled[i] as usize;
            match self.steps.get(s) {
                Some(NormStep::SelfStep(t)) | Some(NormStep::DoS(t))
                    if step_test_matches_or_kind(t, edge, node) => {
                        push_unique(settled, (s + 1) as u16);
                    }
                _ => {}
            }
            i += 1;
        }
        settled.sort_unstable();
    }

    fn pending(&self, settled: &[u16]) -> Vec<u16> {
        let mut p: Vec<u16> = settled
            .iter()
            .copied()
            .filter(|&s| matches!(self.steps.get(s as usize), Some(NormStep::DoS(_))))
            .collect();
        p.sort_unstable();
        p
    }

    /// Consume one symbol, producing the next configuration.
    fn step(&self, cfg: &Config, edge: SymEdge, node: &SymNode) -> Config {
        let mut settled: Vec<u16> = Vec::new();
        match edge {
            SymEdge::Child => {
                for &s in &cfg.settled {
                    if let Some(NormStep::Child(t)) = self.steps.get(s as usize) {
                        if step_test_matches(t, edge, node) {
                            push_unique(&mut settled, s + 1);
                        }
                    }
                }
                for &s in &cfg.pending {
                    if let Some(NormStep::DoS(t)) = self.steps.get(s as usize) {
                        if step_test_matches_or_kind(t, edge, node) {
                            push_unique(&mut settled, s + 1);
                        }
                    }
                }
            }
            SymEdge::Attr => {
                for &s in &cfg.settled {
                    if let Some(NormStep::Attr(t)) = self.steps.get(s as usize) {
                        if step_test_matches(t, edge, node) {
                            push_unique(&mut settled, s + 1);
                        }
                    }
                }
            }
        }
        self.close_at(&mut settled, edge, node);
        let mut pending = match edge {
            // Attributes have no element descendants; pending states do not
            // survive into attribute subtrees (which are leaves anyway).
            SymEdge::Attr => Vec::new(),
            SymEdge::Child => cfg.pending.clone(),
        };
        for p in self.pending(&settled) {
            push_unique(&mut pending, p);
        }
        pending.sort_unstable();
        settled.sort_unstable();
        Config { settled, pending }
    }

    fn accepts(&self, cfg: &Config) -> bool {
        cfg.settled.contains(&(self.steps.len() as u16))
    }
}

/// Name tests never match text/comment/PI; kind tests use the full check.
fn step_test_matches_or_kind(t: &NodeTest, edge: SymEdge, node: &SymNode) -> bool {
    match t {
        NodeTest::Name(_) => step_test_matches(t, edge, node),
        NodeTest::Kind(_) => {
            let _ = edge;
            test_matches_sym(t, node)
        }
    }
}

fn push_unique(v: &mut Vec<u16>, s: u16) {
    if !v.contains(&s) {
        v.push(s);
    }
}

/// Decide `L(query) ⊆ L(index)`: every document path matched by the query
/// path is also matched by the index pattern.
pub fn path_contained_in(query: &[PatternStep], index: &[PatternStep]) -> bool {
    let qsteps = normalize(query);
    let isteps = normalize(index);
    let qa = SymMachine { steps: &qsteps };
    let ib = SymMachine { steps: &isteps };
    let symbols = alphabet(query, index);

    let start = (qa.initial(), ib.initial());
    // Immediate acceptance at the document node itself (degenerate patterns).
    if qa.accepts(&start.0) && !ib.accepts(&start.1) {
        return false;
    }
    let mut seen: HashSet<(Config, Config)> = HashSet::new();
    let mut work = vec![start];
    while let Some((qc, ic)) = work.pop() {
        if !seen.insert((qc.clone(), ic.clone())) {
            continue;
        }
        for (edge, node) in &symbols {
            let nq = qa.step(&qc, *edge, node);
            // Prune: a dead query configuration can never accept.
            if nq.settled.is_empty() && nq.pending.is_empty() {
                continue;
            }
            let ni = ib.step(&ic, *edge, node);
            if qa.accepts(&nq) && !ib.accepts(&ni) {
                return false;
            }
            work.push((nq, ni));
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdb_xquery::parse_pattern;

    fn contained(q: &str, i: &str) -> bool {
        let qp = parse_pattern(q).unwrap();
        let ip = parse_pattern(i).unwrap();
        path_contained_in(&qp.steps, &ip.steps)
    }

    #[test]
    fn query_1_is_contained_in_li_price() {
        // "Notice that the index definition is less restrictive than the
        // XPath navigation embedded in the query."
        assert!(contained("//order/lineitem/@price", "//lineitem/@price"));
    }

    #[test]
    fn query_2_wildcard_is_not_contained() {
        // //order/lineitem/@* needs attributes other than price.
        assert!(!contained("//order/lineitem/@*", "//lineitem/@price"));
    }

    #[test]
    fn identical_patterns_contained() {
        for p in ["//lineitem/@price", "/order/custid", "//@*", "//*:nation"] {
            assert!(contained(p, p), "{p} ⊆ {p}");
        }
    }

    #[test]
    fn rooted_queries_in_descendant_indexes() {
        assert!(contained("/order/lineitem/@price", "//lineitem/@price"));
        assert!(contained("/order/lineitem/@price", "//@price"));
        assert!(contained("/order/lineitem/@price", "//@*"));
        // The converse fails: the index is rooted, the query is not.
        assert!(!contained("//lineitem/@price", "/order/lineitem/@price"));
    }

    #[test]
    fn wildcards_widen() {
        assert!(contained("//lineitem/@price", "//*/@price"));
        assert!(contained("/a/b/c", "//c"));
        assert!(contained("/a/b/c", "/a/*/c"));
        assert!(!contained("/a/*/c", "/a/b/c"));
    }

    #[test]
    fn namespace_containment() {
        // Section 3.7: the plain //nation index holds only no-namespace
        // elements; the c:nation query needs the customer namespace.
        let q = "declare namespace c=\"http://ournamespaces.com/customer\"; //c:nation";
        assert!(!contained(q, "//nation"));
        // The two fixes from the paper:
        assert!(contained(
            q,
            "declare default element namespace \"http://ournamespaces.com/customer\"; //nation"
        ));
        assert!(contained(q, "//*:nation"));
        // And the no-namespace query is NOT contained in a namespaced index.
        assert!(!contained(
            "//nation",
            "declare default element namespace \"http://x\"; //nation"
        ));
    }

    #[test]
    fn attribute_namespace_subtlety() {
        // li_price_ns: //@price (no element restriction) covers price
        // attributes of namespaced lineitems.
        let q = "declare default element namespace \"http://ournamespaces.com/order\"; //lineitem/@price";
        assert!(contained(q, "//@price"));
        // li_price (no-ns lineitem) does NOT cover it.
        assert!(!contained(q, "//lineitem/@price"));
    }

    #[test]
    fn text_step_alignment_section_38() {
        // query //price/text() ⊄ index //price (elements ≠ text nodes)...
        assert!(!contained("//price/text()", "//price"));
        // ...and query //price ⊄ index //price/text().
        assert!(!contained("//price", "//price/text()"));
        // Aligned: fine.
        assert!(contained("//lineitem/price/text()", "//price/text()"));
    }

    #[test]
    fn attribute_axis_vs_child_axis_section_39() {
        // //node() (child steps) contains no attributes: @price ⊄ //node().
        assert!(!contained("//lineitem/@price", "//node()"));
        assert!(contained("//lineitem/@price", "//@*"));
        assert!(contained(
            "//lineitem/@price",
            "/descendant-or-self::node()/attribute::*"
        ));
    }

    #[test]
    fn descendant_axis_equivalences() {
        assert!(contained("/descendant::lineitem/@price", "//lineitem/@price"));
        assert!(contained("//lineitem/@price", "/descendant-or-self::node()/lineitem/@price"));
    }

    #[test]
    fn double_slash_mid_path() {
        assert!(contained("/a//b/c", "//c"));
        assert!(contained("/a//b/c", "//b/c"));
        assert!(!contained("/a//c", "//b/c"));
        assert!(contained("/a/b//c", "/a//c"));
        assert!(!contained("/a//c", "/a/b//c"));
    }

    #[test]
    fn self_steps() {
        assert!(contained("//price/self::node()", "//price"));
        assert!(contained("//price", "//price/self::node()"));
        assert!(contained("//price/self::price", "//price"));
    }

    #[test]
    fn kind_test_containment() {
        assert!(contained("//text()", "//node()"));
        assert!(!contained("//node()", "//text()"));
        assert!(contained("//comment()", "//node()"));
        assert!(contained("//processing-instruction(abc)", "//processing-instruction()"));
        assert!(!contained("//processing-instruction()", "//processing-instruction(abc)"));
    }

    #[test]
    fn nested_repeats() {
        // Tricky NFA cases with repeated labels.
        assert!(contained("//x/x", "//x"));
        assert!(contained("//x/x/x", "//x/x"));
        assert!(!contained("//x/x", "//x/x/x"));
        assert!(contained("/x//x", "//x"));
    }

    #[test]
    fn ns_wildcard_vs_concrete() {
        assert!(contained(
            "declare namespace o=\"http://o\"; //o:*/@price",
            "//*/@price"
        ));
        assert!(!contained(
            "//*/@price",
            "declare namespace o=\"http://o\"; //o:*/@price"
        ));
    }
}
