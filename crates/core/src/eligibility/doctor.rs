//! The query doctor: maps eligibility failures to the paper's Tips.
//!
//! The eligibility analysis (Definition 1) already records *that* a
//! candidate predicate found no serving index, and the extractor records
//! *that* a predicate sat in a non-filtering position. The doctor closes the
//! loop with the paper's usability catalogue: every rejection and note is
//! classified as a [`Pitfall`] carrying the Tip number and rule name from
//! Sections 3.1–3.9, so `EXPLAIN ANALYZE` and traces can print a one-line
//! "index `idx` not used: <Tip N reason>" diagnosis instead of leaving the
//! user to intuit why a full scan happened.
//!
//! Containment failures are refined by *re-running* the Definition 1 check
//! on relaxed inputs: if the query path fits the pattern once namespaces
//! are wildcarded, the pitfall is namespace misalignment (Tip 10); if both
//! sides agree after aligning the final `text()` step, it is text-step
//! misalignment (Tip 11); an attribute-axis disagreement on the final step
//! is Tip 12. Only when no relaxation helps does the generic Definition 1
//! diagnosis remain.

use std::fmt;

use xqdb_xquery::ast::{Axis, KindTest, NameTest, NodeTest, NsTest};
use xqdb_xquery::PatternStep;

use super::candidates::Note;
use super::containment::path_contained_in;

/// A classified eligibility pitfall, keyed to the paper's Tips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pitfall {
    /// Section 3.1 — the comparison's dynamic type does not match the index
    /// type (e.g. a numeric predicate against a `varchar` index).
    TypeMismatch,
    /// Section 3.2 — an indexable predicate sits in the XMLQUERY select
    /// list, where emptiness cannot eliminate rows.
    SelectListPredicate,
    /// Section 3.2 — the XMLEXISTS argument returns a boolean, which is
    /// never empty, so XMLEXISTS is constant-true.
    BooleanXmlExists,
    /// Section 3.2 — a predicate sits in an XMLTABLE column expression
    /// instead of the row-producing expression.
    XmlTableColumnPredicate,
    /// Sections 3.4/3.6 — the predicate is guarded by a node constructor
    /// (or an unconsumed `let`), so empty results survive construction.
    ConstructionBarrier,
    /// Section 3.7 — the query path and the XMLPATTERN disagree only on
    /// namespaces.
    NamespaceMismatch,
    /// Section 3.8 — the query path and the XMLPATTERN disagree on the
    /// trailing `text()` step.
    TextStepMismatch,
    /// Section 3.9 — the query targets an attribute the pattern's final
    /// step does not index (or vice versa).
    AttributeAxisMismatch,
    /// Definition 1 — the query path is simply not contained in the
    /// XMLPATTERN (no specific tip applies).
    PathNotContained,
    /// A `!=` predicate: its matches are a range complement, which one
    /// B+Tree scan cannot produce.
    NotEqualsPredicate,
    /// No XML index exists on the source at all.
    NoIndex,
    /// An indexable predicate in some other non-filtering position.
    NonFilteringContext,
    /// The cost model's cardinality estimate was >4× off the actual row
    /// count — the synopsis statistics no longer describe the data.
    Misestimate,
}

impl Pitfall {
    /// The paper Tip this pitfall corresponds to, if one does.
    pub fn tip(self) -> Option<u8> {
        match self {
            Pitfall::TypeMismatch => Some(1),
            Pitfall::SelectListPredicate => Some(2),
            Pitfall::BooleanXmlExists => Some(3),
            Pitfall::XmlTableColumnPredicate => Some(4),
            Pitfall::ConstructionBarrier => Some(9),
            Pitfall::NamespaceMismatch => Some(10),
            Pitfall::TextStepMismatch => Some(11),
            Pitfall::AttributeAxisMismatch => Some(12),
            Pitfall::PathNotContained
            | Pitfall::NotEqualsPredicate
            | Pitfall::NoIndex
            | Pitfall::NonFilteringContext
            | Pitfall::Misestimate => None,
        }
    }

    /// Stable rule name (used in traces and the DESIGN.md doctor table).
    pub fn rule_name(self) -> &'static str {
        match self {
            Pitfall::TypeMismatch => "type-mismatch",
            Pitfall::SelectListPredicate => "select-list-predicate",
            Pitfall::BooleanXmlExists => "boolean-xmlexists",
            Pitfall::XmlTableColumnPredicate => "xmltable-column-predicate",
            Pitfall::ConstructionBarrier => "construction-barrier",
            Pitfall::NamespaceMismatch => "namespace-mismatch",
            Pitfall::TextStepMismatch => "text-step-mismatch",
            Pitfall::AttributeAxisMismatch => "attribute-axis-mismatch",
            Pitfall::PathNotContained => "path-not-contained",
            Pitfall::NotEqualsPredicate => "not-equals-predicate",
            Pitfall::NoIndex => "no-index",
            Pitfall::NonFilteringContext => "non-filtering-context",
            Pitfall::Misestimate => "cost-misestimate",
        }
    }

    /// The paper's advice, one line.
    pub fn advice(self) -> &'static str {
        match self {
            Pitfall::TypeMismatch => {
                "match the comparison type to the index type, e.g. via an explicit cast (Tip 1, Section 3.1)"
            }
            Pitfall::SelectListPredicate => {
                "move the predicate out of the select list; filter in XMLEXISTS or use standalone XQuery (Tip 2, Section 3.2)"
            }
            Pitfall::BooleanXmlExists => {
                "XMLEXISTS needs a node sequence, not a boolean; drop the comparison into a path predicate (Tip 3, Section 3.2)"
            }
            Pitfall::XmlTableColumnPredicate => {
                "put the predicate in the XMLTABLE row-producing expression, not a column expression (Tip 4, Section 3.2)"
            }
            Pitfall::ConstructionBarrier => {
                "apply predicates before constructing new nodes (Tip 9, Section 3.6; see also Tip 7, Section 3.4)"
            }
            Pitfall::NamespaceMismatch => {
                "align the query's namespaces with the XMLPATTERN's (Tip 10, Section 3.7)"
            }
            Pitfall::TextStepMismatch => {
                "use the same text() step in the query and the XMLPATTERN (Tip 11, Section 3.8)"
            }
            Pitfall::AttributeAxisMismatch => {
                "index attributes with an attribute-axis XMLPATTERN such as //@* (Tip 12, Section 3.9)"
            }
            Pitfall::PathNotContained => {
                "the index would miss nodes the query can reach; create an index whose XMLPATTERN contains the query path (Definition 1)"
            }
            Pitfall::NotEqualsPredicate => {
                "a != predicate selects a range complement; no single index range scan answers it"
            }
            Pitfall::NoIndex => "create an XML index on this column to pre-filter the collection",
            Pitfall::NonFilteringContext => {
                "move the predicate into a position where an empty result removes the document (Sections 3.2-3.6)"
            }
            Pitfall::Misestimate => {
                "the cardinality estimate is >4x off; statistics may be stale — heavy churn re-costs cached plans automatically"
            }
        }
    }

    /// The `Tip N`/rule label used in one-line diagnoses.
    pub fn label(self) -> String {
        match self.tip() {
            Some(n) => format!("Tip {n}"),
            None => format!("rule {}", self.rule_name()),
        }
    }
}

/// One structured rejection reason: the classified pitfall plus the
/// human-readable detail the eligibility check produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectReason {
    /// The classified pitfall.
    pub pitfall: Pitfall,
    /// The index that could not serve the predicate (`None` when no index
    /// exists on the source at all).
    pub index: Option<String>,
    /// Human-readable detail (index name prefix included, as EXPLAIN
    /// renders reasons verbatim).
    pub detail: String,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.detail)
    }
}

/// One doctor diagnosis, printable as
/// `index `idx` not used: <Tip N reason>`.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The classified pitfall.
    pub pitfall: Pitfall,
    /// The index that was not used, when one was considered.
    pub index: Option<String>,
    /// The predicate or candidate the diagnosis is about.
    pub subject: String,
}

impl Diagnosis {
    /// Render the one-line diagnosis.
    pub fn render(&self) -> String {
        let head = match &self.index {
            Some(idx) => format!("index `{idx}` not used"),
            None => "no index used".to_string(),
        };
        format!(
            "{head}: {} ({}) on {} — {}",
            self.pitfall.label(),
            self.pitfall.rule_name(),
            self.subject,
            self.pitfall.advice()
        )
    }
}

/// Classify a Definition 1 containment failure by re-checking relaxed
/// variants of the query path against the pattern.
pub fn classify_containment_failure(
    query: &[PatternStep],
    pattern: &[PatternStep],
) -> Pitfall {
    // Tip 12: the final steps disagree on the attribute axis — the pattern
    // indexes no attributes (or only attributes) while the query targets
    // the other kind.
    if targets_attribute(query) != targets_attribute(pattern) {
        return Pitfall::AttributeAxisMismatch;
    }
    // Tip 11: stripping a trailing text() step from whichever side has one
    // makes containment hold.
    let q_text = ends_with_text(query);
    let p_text = ends_with_text(pattern);
    if q_text != p_text {
        let q_stripped = strip_trailing_text(query);
        let p_stripped = strip_trailing_text(pattern);
        if path_contained_in(&q_stripped, &p_stripped) {
            return Pitfall::TextStepMismatch;
        }
    }
    // Tip 10: wildcarding every namespace constraint on both sides makes
    // containment hold — the paths agree except for namespaces.
    let q_nons = wildcard_namespaces(query);
    let p_nons = wildcard_namespaces(pattern);
    if path_contained_in(&q_nons, &p_nons) {
        return Pitfall::NamespaceMismatch;
    }
    Pitfall::PathNotContained
}

/// Classify an analyzer [`Note`] (non-filtering diagnostics).
pub fn classify_note(note: &Note) -> Pitfall {
    match note {
        Note::BooleanXmlExists => Pitfall::BooleanXmlExists,
        Note::ConstructionBarrier { .. } => Pitfall::ConstructionBarrier,
        Note::NonFilteringContext { place, .. } => match *place {
            "XMLQUERY select list" => Pitfall::SelectListPredicate,
            "XMLTABLE column expression" => Pitfall::XmlTableColumnPredicate,
            _ => Pitfall::NonFilteringContext,
        },
    }
}

/// The subject string of a note (what the diagnosis is about).
pub fn note_subject(note: &Note) -> String {
    match note {
        Note::BooleanXmlExists => "the XMLEXISTS argument".to_string(),
        Note::ConstructionBarrier { detail } => detail.clone(),
        Note::NonFilteringContext { detail, .. } => detail.clone(),
    }
}

fn is_attribute_step(step: &PatternStep) -> bool {
    step.axis == Axis::Attribute
        || matches!(step.test, NodeTest::Kind(KindTest::Attribute(_)))
}

fn targets_attribute(steps: &[PatternStep]) -> bool {
    steps.last().is_some_and(is_attribute_step)
}

fn ends_with_text(steps: &[PatternStep]) -> bool {
    matches!(steps.last().map(|s| &s.test), Some(NodeTest::Kind(KindTest::Text)))
}

fn strip_trailing_text(steps: &[PatternStep]) -> Vec<PatternStep> {
    let mut out = steps.to_vec();
    if ends_with_text(&out) {
        out.pop();
    }
    out
}

fn wildcard_namespaces(steps: &[PatternStep]) -> Vec<PatternStep> {
    steps
        .iter()
        .map(|s| {
            let test = match &s.test {
                NodeTest::Name(nt) => {
                    NodeTest::Name(NameTest { ns: NsTest::Any, local: nt.local.clone() })
                }
                NodeTest::Kind(KindTest::Element(Some(nt))) => NodeTest::Kind(
                    KindTest::Element(Some(NameTest { ns: NsTest::Any, local: nt.local.clone() })),
                ),
                NodeTest::Kind(KindTest::Attribute(Some(nt))) => NodeTest::Kind(
                    KindTest::Attribute(Some(NameTest {
                        ns: NsTest::Any,
                        local: nt.local.clone(),
                    })),
                ),
                other => other.clone(),
            };
            PatternStep { axis: s.axis, test }
        })
        .collect()
}

/// Flag a costed plan whose estimate diverged >4× from the actual row
/// count in either direction. Tiny absolute gaps (both sides < 8 rows) are
/// noise from histogram granularity, not staleness, and stay silent.
pub fn diagnose_misestimate(est: u64, actual: u64) -> Option<Diagnosis> {
    let hi = est.max(actual);
    let lo = est.min(actual);
    if hi < 8 || hi <= lo.saturating_mul(4) {
        return None;
    }
    Some(Diagnosis {
        pitfall: Pitfall::Misestimate,
        index: None,
        subject: format!("cost estimate {est} row(s) vs actual {actual}"),
    })
}

/// All diagnoses for a planned query: one per rejection reason, one per
/// non-filtering note.
pub fn diagnose(rejections: &[super::Rejection], notes: &[Note]) -> Vec<Diagnosis> {
    let mut out = Vec::new();
    for r in rejections {
        for reason in &r.reasons {
            out.push(Diagnosis {
                pitfall: reason.pitfall,
                index: reason.index.clone(),
                subject: r.candidate.clone(),
            });
        }
    }
    for n in notes {
        out.push(Diagnosis { pitfall: classify_note(n), index: None, subject: note_subject(n) });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqdb_xquery::parse_pattern;

    fn steps(p: &str) -> Vec<PatternStep> {
        parse_pattern(p).expect("test pattern parses").steps
    }

    #[test]
    fn tips_map_to_expected_numbers() {
        assert_eq!(Pitfall::TypeMismatch.tip(), Some(1));
        assert_eq!(Pitfall::SelectListPredicate.tip(), Some(2));
        assert_eq!(Pitfall::BooleanXmlExists.tip(), Some(3));
        assert_eq!(Pitfall::XmlTableColumnPredicate.tip(), Some(4));
        assert_eq!(Pitfall::ConstructionBarrier.tip(), Some(9));
        assert_eq!(Pitfall::NamespaceMismatch.tip(), Some(10));
        assert_eq!(Pitfall::TextStepMismatch.tip(), Some(11));
        assert_eq!(Pitfall::AttributeAxisMismatch.tip(), Some(12));
        assert_eq!(Pitfall::NoIndex.tip(), None);
    }

    #[test]
    fn text_step_mismatch_is_tip_11() {
        // Query compares //comment/text(), pattern indexes //comment.
        let q = steps("//comment/text()");
        let p = steps("//comment");
        assert!(!path_contained_in(&q, &p));
        assert_eq!(classify_containment_failure(&q, &p), Pitfall::TextStepMismatch);
        // And the other orientation.
        let q = steps("//comment");
        let p = steps("//comment/text()");
        assert_eq!(classify_containment_failure(&q, &p), Pitfall::TextStepMismatch);
    }

    #[test]
    fn attribute_axis_mismatch_is_tip_12() {
        let q = steps("//lineitem/@price");
        let p = steps("//lineitem/price");
        assert_eq!(classify_containment_failure(&q, &p), Pitfall::AttributeAxisMismatch);
    }

    #[test]
    fn unrelated_paths_stay_generic() {
        let q = steps("//customer/name");
        let p = steps("//order/id");
        assert_eq!(classify_containment_failure(&q, &p), Pitfall::PathNotContained);
    }

    #[test]
    fn diagnosis_renders_one_line() {
        let d = Diagnosis {
            pitfall: Pitfall::TypeMismatch,
            index: Some("li_price".to_string()),
            subject: "//lineitem/@price > 100".to_string(),
        };
        let line = d.render();
        assert!(line.starts_with("index `li_price` not used: Tip 1 (type-mismatch)"));
        assert!(line.contains("Section 3.1"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn note_classification() {
        assert_eq!(classify_note(&Note::BooleanXmlExists), Pitfall::BooleanXmlExists);
        assert_eq!(
            classify_note(&Note::ConstructionBarrier { detail: "x".into() }),
            Pitfall::ConstructionBarrier
        );
        assert_eq!(
            classify_note(&Note::NonFilteringContext {
                place: "XMLQUERY select list",
                detail: "x".into()
            }),
            Pitfall::SelectListPredicate
        );
        assert_eq!(
            classify_note(&Note::NonFilteringContext {
                place: "XMLTABLE column expression",
                detail: "x".into()
            }),
            Pitfall::XmlTableColumnPredicate
        );
    }
}
