//! Eligibility-analyzer tests: one block per paper section, asserting both
//! the *decision* (which index, or why not) and — where cheap — the
//! *result equivalence* Q(D) = Q(I(P,D)) of Definition 1.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xqdb_core::engine::{execute_plan, plan_query};
use xqdb_core::{AnalysisEnv, Catalog, Note};
use xqdb_xqeval::DynamicContext;
use xqdb_storage::{Column, SqlType, SqlValue, Table};

fn catalog_with_orders(docs: &[&str]) -> Catalog {
    let mut c = Catalog::new();
    c.create_table(Table::new(
        "orders",
        vec![Column::new("ordid", SqlType::Integer), Column::new("orddoc", SqlType::Xml)],
    ))
    .unwrap();
    c.create_table(Table::new(
        "customer",
        vec![Column::new("cid", SqlType::Integer), Column::new("cdoc", SqlType::Xml)],
    ))
    .unwrap();
    for (i, d) in docs.iter().enumerate() {
        let doc = xqdb_xmlparse::parse_document(d).unwrap();
        c.insert("orders", vec![SqlValue::Integer(i as i64), SqlValue::Xml(doc.root())])
            .unwrap();
    }
    c
}

/// Plan a query and return (used_index_names, explain_text).
fn plan_info(c: &Catalog, query: &str) -> (Vec<String>, String) {
    let q = xqdb_xquery::parse_query(query).unwrap();
    let plan = plan_query(c, q, &AnalysisEnv::new());
    let explain = xqdb_core::explain(&plan);
    let mut used = Vec::new();
    for a in &plan.accesses {
        if let Some(ic) = &a.access {
            collect_probe_names(ic, &mut used);
        }
    }
    used.sort();
    used.dedup();
    (used, explain)
}

fn collect_probe_names(ic: &xqdb_core::IndexCond, out: &mut Vec<String>) {
    match ic {
        xqdb_core::IndexCond::Probe { index, .. } => out.push(index.clone()),
        xqdb_core::IndexCond::And(cs) | xqdb_core::IndexCond::Or(cs) => {
            for c in cs {
                collect_probe_names(c, out);
            }
        }
    }
}

/// Assert the planned and unplanned executions agree (Definition 1), and
/// return (result_len, docs_evaluated, docs_total) for the orders source.
fn check_equivalence(c: &Catalog, query: &str) -> (usize, usize, usize) {
    let q = xqdb_xquery::parse_query(query).unwrap();
    let plan = plan_query(c, q.clone(), &AnalysisEnv::new());
    let with_index = execute_plan(c, &plan, &DynamicContext::new()).unwrap();
    // Reference: evaluate without any index use.
    let reference = xqdb_xqeval::eval_query(&q, &c.db, &DynamicContext::new()).unwrap();
    let a = xqdb_xmlparse::serialize_sequence(&with_index.sequence);
    let b = xqdb_xmlparse::serialize_sequence(&reference);
    assert_eq!(a, b, "Definition 1 violated for {query}");
    let evaluated = with_index
        .stats
        .docs_evaluated
        .get("ORDERS.ORDDOC")
        .copied()
        .unwrap_or(0);
    let total = with_index.stats.docs_total.get("ORDERS.ORDDOC").copied().unwrap_or(0);
    (with_index.sequence.len(), evaluated, total)
}

const DOCS: &[&str] = &[
    r#"<order id="1"><lineitem price="99.50"><product><id>17</id></product></lineitem></order>"#,
    r#"<order id="2"><lineitem price="250.00"><product><id>18</id></product></lineitem><lineitem price="50.00"><product><id>19</id></product></lineitem></order>"#,
    r#"<order id="3"><date>January 1, 2001</date><lineitem><product><id>20</id></product></lineitem></order>"#,
    r#"<order id="4"><lineitem price="150.00"><product><id>21</id></product></lineitem></order>"#,
];

// ------------------------------------------------ Section 2.2: Queries 1–2

#[test]
fn query_1_uses_li_price() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price>100] return $i";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE"], "{explain}");
    let (results, evaluated, total) = check_equivalence(&c, q);
    assert_eq!(results, 2); // orders 2 and 4
    assert_eq!(total, 4);
    assert_eq!(evaluated, 2, "index pre-filtered to exactly the matches");
}

#[test]
fn query_2_wildcard_attribute_cannot_use_li_price() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@*>100] return $i";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    assert!(explain.contains("not contained"), "{explain}");
    // A broad //@* index fixes it.
    c.create_index("all_attrs", "orders", "orddoc", "//@*", "double").unwrap();
    let (used, _) = plan_info(&c, q);
    assert_eq!(used, vec!["ALL_ATTRS"]);
}

// ------------------------------------------------ Section 3.1: types

#[test]
fn query_3_string_literal_needs_varchar_index() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    // Query 3: "100" in quotes — a string comparison; the double index is
    // NOT eligible.
    let q = "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > \"100\"] return $i";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    assert!(explain.contains("cannot serve a varchar comparison"), "{explain}");
    // A varchar index IS eligible for the string predicate.
    c.create_index("li_price_s", "orders", "orddoc", "//lineitem/@price", "varchar")
        .unwrap();
    let (used, _) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE_S"]);
    let (results, _, _) = check_equivalence(&c, q);
    // String comparison: "99.50" > "100", "250.00" > "100", "50.00" > "100",
    // "150.00" > "100" — stringly "99.50" > "100" is true ('9' > '1'), etc.
    assert_eq!(results, 3);
}

#[test]
fn numeric_predicate_not_served_by_varchar_index() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price_s", "orders", "orddoc", "//lineitem/@price", "varchar")
        .unwrap();
    // Even though the varchar index contains all values, it cannot enforce
    // numeric comparison rules (1E3 = 1000) — Section 3.1.
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 100]";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    assert!(explain.contains("cannot serve a double comparison"), "{explain}");
}

#[test]
fn tip_1_cast_join_makes_double_indexes_eligible() {
    let mut c = catalog_with_orders(&[r#"<order><custid>7</custid></order>"#]);
    let cust = xqdb_xmlparse::parse_document(r#"<customer><id>7</id></customer>"#).unwrap();
    c.insert("customer", vec![SqlValue::Integer(0), SqlValue::Xml(cust.root())])
        .unwrap();
    c.create_index("o_custid", "orders", "orddoc", "//custid", "double").unwrap();
    c.create_index("c_custid", "customer", "cdoc", "/customer/id", "double").unwrap();
    // Query 4's join with casts: both sides resolvable; our doc-filter
    // analysis treats the join predicate as non-constant, so no index probe
    // is emitted (join support is equality-to-constant only), but no WRONG
    // probe may appear either, and execution must stay correct.
    let q = "for $i in db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")/order \
             for $j in db2-fn:xmlcolumn(\"CUSTOMER.CDOC\")/customer \
             where $i/custid/xs:double(.) = $j/id/xs:double(.) \
             return $i";
    let (results, _, _) = check_equivalence(&c, q);
    assert_eq!(results, 1);
    // With a cast against a constant the double index IS used.
    let q2 = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[custid/xs:double(.) = 7]";
    let (used, explain) = plan_info(&c, q2);
    assert_eq!(used, vec!["O_CUSTID"], "{explain}");
}

#[test]
fn date_predicates_use_date_indexes() {
    let mut c = catalog_with_orders(&[
        r#"<order><shipdate>2001-06-01</shipdate></order>"#,
        r#"<order><shipdate>2003-06-01</shipdate></order>"#,
    ]);
    c.create_index("o_date", "orders", "orddoc", "//shipdate", "date").unwrap();
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[shipdate > xs:date('2002-01-01')]";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["O_DATE"], "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 1);
    assert_eq!(evaluated, 1);
}

// ------------------------------------------------ Section 3.4: let vs for

#[test]
fn query_17_for_clause_is_index_eligible() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
             for $item in $doc//lineitem[@price > 100] \
             return <result>{$item}</result>";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE"], "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 2);
    assert_eq!(evaluated, 2);
}

#[test]
fn query_18_let_clause_is_not() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "for $doc in db2-fn:xmlcolumn('ORDERS.ORDDOC') \
             let $item := $doc//lineitem[@price > 100] \
             return <result>{$item}</result>";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    let (results, evaluated, total) = check_equivalence(&c, q);
    assert_eq!(results, 4); // one <result> per document
    assert_eq!(evaluated, total); // full scan
}

#[test]
fn query_19_constructor_in_return_blocks_index() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order \
             return <result>{$ord/lineitem[@price > 100]}</result>";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    // ...and EXPLAIN should say why.
    assert!(
        explain.contains("constructor"),
        "construction barrier note expected in: {explain}"
    );
    check_equivalence(&c, q);
}

#[test]
fn query_20_21_where_clause_restores_eligibility() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q20 = "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order \
               where $ord/lineitem/@price > 100 \
               return <result>{$ord/lineitem}</result>";
    let (used, explain) = plan_info(&c, q20);
    assert_eq!(used, vec!["LI_PRICE"], "{explain}");
    let q21 = "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order \
               let $price := $ord/lineitem/@price \
               where $price > 100 \
               return <result>{$ord/lineitem}</result>";
    let (used, explain) = plan_info(&c, q21);
    assert_eq!(used, vec!["LI_PRICE"], "{explain}");
    // Results agree between the equivalent formulations.
    let (r20, e20, _) = check_equivalence(&c, q20);
    let (r21, e21, _) = check_equivalence(&c, q21);
    assert_eq!(r20, r21);
    assert_eq!(e20, e21);
    assert_eq!(e20, 2);
}

#[test]
fn query_22_bind_out_is_index_eligible() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order \
             return $ord/lineitem[@price > 100]";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE"], "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 2);
    assert_eq!(evaluated, 2);
}

// ------------------------------------------------ Section 3.7: namespaces

const NS_ORDER_DOCS: &[&str] = &[
    r#"<order xmlns="http://ournamespaces.com/order"><custid>1</custid><lineitem price="2000"/></order>"#,
    r#"<order xmlns="http://ournamespaces.com/order"><custid>2</custid><lineitem price="10"/></order>"#,
];

#[test]
fn query_28_namespace_mismatch_makes_indexes_ineligible() {
    let mut c = catalog_with_orders(NS_ORDER_DOCS);
    // li_price (no namespaces) restricts to empty-namespace lineitems.
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "declare default element namespace \"http://ournamespaces.com/order\"; \
             db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[lineitem/@price > 1000]";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    assert!(explain.contains("not contained"), "{explain}");
    // The paper's three fixes:
    c.create_index(
        "li_price_ns1",
        "orders",
        "orddoc",
        "declare default element namespace \"http://ournamespaces.com/order\"; //lineitem/@price",
        "double",
    )
    .unwrap();
    let (used, _) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE_NS1"]);
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 1);
    assert_eq!(evaluated, 1);
}

#[test]
fn query_28_attribute_only_index_is_eligible() {
    let mut c = catalog_with_orders(NS_ORDER_DOCS);
    // li_price_ns from the paper: //@price has no element-name restriction,
    // and default namespaces do not apply to attributes.
    c.create_index("li_price_ns", "orders", "orddoc", "//@price", "double").unwrap();
    let q = "declare default element namespace \"http://ournamespaces.com/order\"; \
             db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[lineitem/@price > 1000]";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE_NS"], "{explain}");
}

#[test]
fn wildcard_namespace_index_is_eligible() {
    let mut c = catalog_with_orders(&[
        r#"<c:customer xmlns:c="http://ournamespaces.com/customer"><c:nation>1</c:nation></c:customer>"#,
    ]);
    c.create_index("c_nation_ns2", "orders", "orddoc", "//*:nation", "double")
        .unwrap();
    let q = "declare namespace c=\"http://ournamespaces.com/customer\"; \
             db2-fn:xmlcolumn('ORDERS.ORDDOC')//c:customer[c:nation = 1]";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["C_NATION_NS2"], "{explain}");
    let (results, _, _) = check_equivalence(&c, q);
    assert_eq!(results, 1);
}

// ------------------------------------------------ Section 3.8: text()

#[test]
fn query_29_text_step_must_align() {
    let mut c = catalog_with_orders(&[
        r#"<order><lineitem><price>99.50</price></lineitem></order>"#,
        r#"<order><date>January 1, 2003</date><lineitem><price>99.50<currency>USD</currency></price></lineitem></order>"#,
    ]);
    // PRICE_TEXT from the paper: element values, NOT text nodes.
    c.create_index("price_text", "orders", "orddoc", "//price", "varchar").unwrap();
    let q = "for $ord in db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")/order[lineitem/price/text() = \"99.50\"] return $ord";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    // Both documents match (each price has a "99.50" text node) even though
    // the second's element value is "99.50USD" — using the element index
    // would have missed it.
    let (results, _, _) = check_equivalence(&c, q);
    assert_eq!(results, 2);
    // An aligned //price/text() index IS eligible.
    c.create_index("price_text2", "orders", "orddoc", "//price/text()", "varchar")
        .unwrap();
    let (used, _) = plan_info(&c, q);
    assert_eq!(used, vec!["PRICE_TEXT2"]);
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 2);
    assert_eq!(evaluated, 2);
}

#[test]
fn element_value_query_uses_element_index() {
    let mut c = catalog_with_orders(&[
        r#"<order><lineitem><price>99.50</price></lineitem></order>"#,
        r#"<order><lineitem><price>99.50<currency>USD</currency></price></lineitem></order>"#,
    ]);
    c.create_index("price_text", "orders", "orddoc", "//price", "varchar").unwrap();
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')/order[lineitem/price = \"99.50\"]";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["PRICE_TEXT"], "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 1); // the mixed-content element's value is 99.50USD
    assert_eq!(evaluated, 1);
}

// ------------------------------------------------ Section 3.10: between

#[test]
fn query_30_attribute_between_merges_to_one_scan() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "for $i in db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem[@price>100 and @price<200]] return $i";
    let q2 = xqdb_xquery::parse_query(q).unwrap();
    let plan = plan_query(&c, q2, &AnalysisEnv::new());
    let explain = xqdb_core::explain(&plan);
    assert!(explain.contains("between-range"), "single range scan expected: {explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 1); // only the 150.00 order
    assert_eq!(evaluated, 1);
}

#[test]
fn element_between_does_not_merge() {
    let docs = &[
        r#"<order><lineitem><price>250</price><price>50</price></lineitem></order>"#,
        r#"<order><lineitem><price>150</price></lineitem></order>"#,
        r#"<order><lineitem><price>10</price></lineitem></order>"#,
    ];
    let mut c = catalog_with_orders(docs);
    c.create_index("e_price", "orders", "orddoc", "//price", "double").unwrap();
    // General comparisons on multi-valued price: NOT a between; must be
    // answered by two scans ANDed, and the {250,50} order must survive.
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[price > 100 and price < 200]";
    let q2 = xqdb_xquery::parse_query(q).unwrap();
    let plan = plan_query(&c, q2, &AnalysisEnv::new());
    let explain = xqdb_core::explain(&plan);
    assert!(
        !explain.contains("between-range"),
        "must NOT merge into a single range: {explain}"
    );
    assert!(explain.contains("AND("), "two-scan intersection expected: {explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 2, "the existential {{250,50}} lineitem qualifies");
    assert_eq!(evaluated, 2);
}

#[test]
fn self_axis_between_merges() {
    let docs = &[
        r#"<order><lineitem><price>250</price><price>50</price></lineitem></order>"#,
        r#"<order><lineitem><price>150</price></lineitem></order>"#,
    ];
    let mut c = catalog_with_orders(docs);
    c.create_index("e_price", "orders", "orddoc", "//price", "double").unwrap();
    // The self-axis form compares the SAME value on both sides: a true
    // between, single scan, and the {250,50} order does NOT qualify.
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem/price/data()[. > 100 and . < 200]";
    let q2 = xqdb_xquery::parse_query(q).unwrap();
    let plan = plan_query(&c, q2, &AnalysisEnv::new());
    let explain = xqdb_core::explain(&plan);
    assert!(explain.contains("between-range"), "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 1);
    assert_eq!(evaluated, 1);
}

// ------------------------------------------------ structural predicates

#[test]
fn structural_predicate_uses_varchar_index() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price_s", "orders", "orddoc", "//lineitem/@price", "varchar")
        .unwrap();
    // Pure existence check: answered by a (-inf, +inf) scan of the varchar
    // index (Section 2.2).
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price]";
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE_S"], "{explain}");
    assert!(explain.contains("structural"), "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 3); // order 3 has no @price
    assert_eq!(evaluated, 3);
}

#[test]
fn structural_predicate_cannot_use_double_index() {
    let mut c = catalog_with_orders(&[
        // "20 USD" never enters the double index; a structural scan of it
        // would wrongly drop this order.
        r#"<order><lineitem price="20 USD"/></order>"#,
        r#"<order><lineitem price="30"/></order>"#,
        r#"<order><note/></order>"#,
    ]);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price]";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    let (results, _, _) = check_equivalence(&c, q);
    assert_eq!(results, 2);
}

// ------------------------------------------------ disjunctions

#[test]
fn or_requires_all_branches_indexed() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    // One branch indexable, the other not: no pre-filtering.
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 100 or date = \"January 1, 2001\"]";
    let (used, explain) = plan_info(&c, q);
    assert!(used.is_empty(), "{explain}");
    // With both branches indexed: OR of probes.
    c.create_index("o_date_s", "orders", "orddoc", "//date", "varchar").unwrap();
    let (used, explain) = plan_info(&c, q);
    assert_eq!(used, vec!["LI_PRICE", "O_DATE_S"], "{explain}");
    assert!(explain.contains("OR("), "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    assert_eq!(results, 3); // orders 2, 3, 4
    assert_eq!(evaluated, 3);
}

// ------------------------------------------------ tolerant-indexing safety

#[test]
fn numeric_predicate_over_polluted_data_errors_consistently_without_index() {
    // A document whose price is "20 USD" makes the numeric predicate raise
    // a cast error during the full scan. With the double index, the
    // polluted document is pre-filtered away and the query succeeds — the
    // documented DB2-style divergence for *erroring* documents.
    let mut c = catalog_with_orders(&[
        r#"<order><lineitem price="20 USD"/></order>"#,
        r#"<order><lineitem price="250"/></order>"#,
    ]);
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//order[lineitem/@price > 100]";
    // Unindexed: error.
    let parsed = xqdb_xquery::parse_query(q).unwrap();
    assert!(xqdb_xqeval::eval_query(&parsed, &c.db, &DynamicContext::new()).is_err());
    // Indexed: the polluted doc is skipped, result is the valid one.
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    let out = xqdb_core::run_xquery(&c, q).unwrap();
    assert_eq!(out.sequence.len(), 1);
}

// ------------------------------------------------ notes & diagnostics

#[test]
fn explain_names_the_pitfall() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    // Query 19's constructor barrier appears as a note.
    let q = "for $ord in db2-fn:xmlcolumn('ORDERS.ORDDOC')/order \
             return <result>{$ord/lineitem[@price > 100]}</result>";
    let parsed = xqdb_xquery::parse_query(q).unwrap();
    let plan = plan_query(&c, parsed, &AnalysisEnv::new());
    assert!(
        plan.notes.iter().any(|n| matches!(n, Note::ConstructionBarrier { .. })),
        "{:?}",
        plan.notes
    );
}

// ------------------------------------------------ aggregates

#[test]
fn aggregates_over_filtered_paths_use_indexes() {
    let mut c = catalog_with_orders(DOCS);
    c.create_index("li_price", "orders", "orddoc", "//lineitem/@price", "double")
        .unwrap();
    for q in [
        "count(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100])",
        "avg(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100]/@price/xs:double(.))",
        "sum(db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100]/@price/xs:double(.)) + 1",
    ] {
        let (used, explain) = plan_info(&c, q);
        assert_eq!(used, vec!["LI_PRICE"], "{q}\n{explain}");
        check_equivalence(&c, q);
    }
}

// ------------------------------------------------ db2-fn:between extension

#[test]
fn explicit_between_function_merges_to_single_scan() {
    // Section 4 of the paper: "adding an explicit 'between' function would
    // solve the issue of Section 3.10". Our vendor extension does: both
    // bounds test the SAME item, so one range scan answers it even over
    // multi-valued element prices.
    let docs = &[
        r#"<order><lineitem><price>250</price><price>50</price></lineitem></order>"#,
        r#"<order><lineitem><price>150</price></lineitem></order>"#,
    ];
    let mut c = catalog_with_orders(docs);
    c.create_index("e_price", "orders", "orddoc", "//price", "double").unwrap();
    let q = "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[db2-fn:between(price, 100, 200)]";
    let q2 = xqdb_xquery::parse_query(q).unwrap();
    let plan = plan_query(&c, q2, &AnalysisEnv::new());
    let explain = xqdb_core::explain(&plan);
    assert!(explain.contains("between-range"), "{explain}");
    let (results, evaluated, _) = check_equivalence(&c, q);
    // Per-item semantics: the {250, 50} lineitem does NOT qualify.
    assert_eq!(results, 1);
    assert_eq!(evaluated, 1);
}

#[test]
fn between_function_bounds_are_inclusive() {
    let docs = &[r#"<order><lineitem><price>100</price></lineitem></order>"#];
    let mut c = catalog_with_orders(docs);
    c.create_index("e_price", "orders", "orddoc", "//price", "double").unwrap();
    let (results, _, _) = check_equivalence(
        &c,
        "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[db2-fn:between(price, 100, 200)]",
    );
    assert_eq!(results, 1);
    let (results, _, _) = check_equivalence(
        &c,
        "db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[db2-fn:between(price, 100.01, 200)]",
    );
    assert_eq!(results, 0);
}
