//! Metamorphic consistency tests between the three implementations of path
//! semantics in the engine:
//!
//! 1. the **index matcher** (NFA tree-walk over XMLPATTERNs) must select
//!    exactly the nodes the **evaluator** selects for the same path run as
//!    an XQuery — otherwise index contents and query answers disagree;
//! 2. the **containment checker** must be sound against real documents:
//!    whenever it claims `P ⊆ Q`, every node matched by `P` in any
//!    generated document must be matched by `Q`.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use xqdb_core::eligibility::path_contained_in;
use xqdb_workload::{OrderGenerator, OrderParams};
use xqdb_xdm::{Item, NodeHandle};
use xqdb_xmlindex::match_document;
use xqdb_xqeval::{eval_expr, DynamicContext, EmptyProvider};
use xqdb_xquery::{parse_pattern, parse_query};

/// Patterns that are ALSO valid XQuery path expressions (every XMLPATTERN
/// is), used for both roles.
const PATTERNS: &[&str] = &[
    "/order",
    "/order/lineitem",
    "/order/lineitem/@price",
    "//lineitem/@price",
    "//@price",
    "//@*",
    "//lineitem",
    "//price",
    "//price/text()",
    "//product/id",
    "//*",
    "//node()",
    "/order/*/product",
    "/descendant::lineitem",
    "/descendant-or-self::node()/attribute::*",
    "//lineitem/self::node()/@quantity",
    "//*:lineitem/@price",
    "/order//id",
    "//text()",
    "//custid",
];

fn generated_doc(seed: u64, element_prices: bool, ns: bool) -> NodeHandle {
    let mut g = OrderGenerator::new(OrderParams {
        seed,
        min_lineitems: 0,
        max_lineitems: 4,
        element_prices,
        multi_price_fraction: 0.3,
        mixed_content_fraction: 0.3,
        namespace: ns.then(|| "http://ournamespaces.com/order".to_string()),
        ..Default::default()
    });
    let xml = g.next_order();
    xqdb_xmlparse::parse_document(&xml).expect("generated XML parses").root()
}

/// Evaluate a pattern as an XQuery path against a document node.
fn eval_as_path(pattern_src: &str, doc: &NodeHandle) -> Vec<NodeHandle> {
    let q = parse_query(pattern_src).expect("pattern parses as XQuery");
    let ctx = DynamicContext::new().with_focus(Item::Node(doc.clone()), 1, 1);
    let out = eval_expr(&q.body, &EmptyProvider, &ctx).expect("path evaluates");
    out.into_iter()
        .map(|i| match i {
            Item::Node(n) => n,
            Item::Atomic(a) => panic!("path produced atomic {a:?}"),
        })
        .collect()
}

#[test]
fn matcher_agrees_with_evaluator() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let seed = rng.random_range(0..500u64);
        let element_prices = rng.random_bool(0.5);
        let ns = rng.random_bool(0.5);
        let src = PATTERNS[rng.random_range(0..PATTERNS.len())];
        let doc = generated_doc(seed, element_prices, ns);
        let pattern = parse_pattern(src).expect("pattern parses");
        let mut matched = match_document(&pattern, &doc);
        matched.sort();
        let mut evaluated = eval_as_path(src, &doc);
        evaluated.sort();
        assert_eq!(
            matched, evaluated,
            "matcher and evaluator disagree on {src} (doc seed {seed})"
        );
    }
}

#[test]
fn containment_sound_on_documents() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xC0_0000 + case);
        let seed = rng.random_range(0..500u64);
        let element_prices = rng.random_bool(0.5);
        let ns = rng.random_bool(0.5);
        let p_idx = rng.random_range(0..PATTERNS.len());
        let q_idx = rng.random_range(0..PATTERNS.len());
        let p = parse_pattern(PATTERNS[p_idx]).expect("parses");
        let q = parse_pattern(PATTERNS[q_idx]).expect("parses");
        if path_contained_in(&p.steps, &q.steps) {
            let doc = generated_doc(seed, element_prices, ns);
            let matched_p = match_document(&p, &doc);
            let matched_q = match_document(&q, &doc);
            for node in &matched_p {
                assert!(
                    matched_q.contains(node),
                    "containment claims {} ⊆ {} but a node matched only the former",
                    PATTERNS[p_idx],
                    PATTERNS[q_idx]
                );
            }
        }
    }
}

#[test]
fn containment_is_reflexive_and_transitive_on_pool() {
    let parsed: Vec<_> = PATTERNS.iter().map(|s| parse_pattern(s).unwrap()).collect();
    for p in &parsed {
        assert!(path_contained_in(&p.steps, &p.steps), "{} not ⊆ itself", p);
    }
    for a in &parsed {
        for b in &parsed {
            for c in &parsed {
                if path_contained_in(&a.steps, &b.steps)
                    && path_contained_in(&b.steps, &c.steps)
                {
                    assert!(
                        path_contained_in(&a.steps, &c.steps),
                        "transitivity violated: {} ⊆ {} ⊆ {}",
                        a,
                        b,
                        c
                    );
                }
            }
        }
    }
}
