//! SQL/XML end-to-end tests reproducing Queries 5–16 of the paper
//! (Sections 3.2 and 3.3): result shapes, NULL/empty behavior, XMLCAST
//! failure modes, and index-eligibility decisions per formulation.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use xqdb_core::sqlxml::{Scalar, SqlSession};
use xqdb_xdm::ErrorCode;

fn session_with_paper_schema() -> SqlSession {
    let mut s = SqlSession::new();
    s.execute("create table customer (cid integer, cdoc XML)").unwrap();
    s.execute("create table orders (ordid integer, orddoc XML)").unwrap();
    s.execute("create table products (id varchar(13), name varchar(32))").unwrap();
    s
}

fn load_orders(s: &mut SqlSession, docs: &[&str]) {
    for (i, d) in docs.iter().enumerate() {
        s.execute(&format!("INSERT INTO orders VALUES ({}, '{}')", i + 1, d.replace('\'', "''")))
            .unwrap();
    }
}

const DOCS: &[&str] = &[
    r#"<order><custid>7</custid><lineitem price="99.50"><product><id>p1</id></product></lineitem></order>"#,
    r#"<order><custid>8</custid><lineitem price="250.00"><product><id>p2</id></product></lineitem><lineitem price="150.00"><product><id>p3</id></product></lineitem></order>"#,
    r#"<order><custid>9</custid><lineitem price="50.00"><product><id>p4</id></product></lineitem></order>"#,
];

// -------------------------------------------------- Section 3.2

#[test]
fn query_5_xmlquery_in_select_returns_all_rows() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    let r = s
        .execute(
            "SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as \"order\") FROM orders",
        )
        .unwrap();
    // One row per orders row; non-qualifying rows carry an empty sequence.
    assert_eq!(r.rows.len(), 3);
    let rendered: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
    assert_eq!(rendered[0], "()");
    assert!(rendered[1].contains("250.00") && rendered[1].contains("150.00"));
    assert_eq!(rendered[2], "()");
}

#[test]
fn query_5_index_not_eligible_but_query_8_is() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute(
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
    )
    .unwrap();
    // Query 5: select-list XMLQUERY — no probe, and a note explains why.
    let r = s
        .execute(
            "EXPLAIN SELECT XMLQuery('$order//lineitem[@price > 100]' passing orddoc as \"order\") FROM orders",
        )
        .unwrap();
    let plan = r.message.unwrap();
    assert!(plan.contains("TABLE SCAN"), "{plan}");
    assert!(plan.contains("non-filtering"), "{plan}");
    // Query 8: XMLEXISTS — probe.
    let r = s
        .execute(
            "EXPLAIN SELECT ordid, orddoc FROM orders \
             WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as \"order\")",
        )
        .unwrap();
    let plan = r.message.unwrap();
    assert!(plan.contains("PROBE LI_PRICE"), "{plan}");
}

#[test]
fn query_8_returns_qualifying_rows() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute(
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
    )
    .unwrap();
    let r = s
        .execute(
            "SELECT ordid, orddoc FROM orders \
             WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as \"order\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(matches!(r.rows[0][0], Scalar::Integer(2)));
    // The index actually pre-filtered the scan.
    assert_eq!(r.stats.docs_evaluated.get("ORDERS"), Some(&1));
    assert!(r.stats.index_entries_scanned > 0);
}

#[test]
fn query_9_boolean_xmlexists_returns_every_row() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    // The pitfall: a boolean-valued XQuery is never empty, so XMLEXISTS is
    // constant-true and ALL rows come back.
    let r = s
        .execute(
            "SELECT ordid, orddoc FROM orders \
             WHERE XMLExists('$order//lineitem/@price > 100' passing orddoc as \"order\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3, "Query 9 must not eliminate any rows");
    // EXPLAIN carries the warning.
    let r = s
        .execute(
            "EXPLAIN SELECT ordid, orddoc FROM orders \
             WHERE XMLExists('$order//lineitem/@price > 100' passing orddoc as \"order\")",
        )
        .unwrap();
    let plan = r.message.unwrap();
    assert!(plan.contains("boolean"), "{plan}");
}

#[test]
fn query_6_values_returns_single_row() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    let r = s
        .execute(
            "VALUES (XMLQuery('db2-fn:xmlcolumn(\"ORDERS.ORDDOC\")//lineitem[@price > 100]'))",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    let xml = r.rows[0][0].render();
    assert!(xml.contains("250.00") && xml.contains("150.00"));
}

#[test]
fn query_10_xmlquery_plus_xmlexists() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    let r = s
        .execute(
            "SELECT ordid, XMLQuery('$order//lineitem[@price > 100]' passing orddoc as \"order\") \
             FROM orders \
             WHERE XMLExists('$order//lineitem[@price > 100]' passing orddoc as \"order\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0][1].render().contains("250.00"));
}

#[test]
fn query_11_xmltable_returns_one_row_per_lineitem() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute(
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
    )
    .unwrap();
    let r = s
        .execute(
            "SELECT o.ordid, t.lineitem \
             FROM orders o, XMLTable('$order//lineitem[@price > 100]' \
                passing o.orddoc as \"order\" \
                COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)",
        )
        .unwrap();
    // Two qualifying lineitems, both in order 2.
    assert_eq!(r.rows.len(), 2);
    assert!(matches!(r.rows[0][0], Scalar::Integer(2)));
    assert!(matches!(r.rows[1][0], Scalar::Integer(2)));
    // Row-producer predicates are index-eligible.
    let r = s
        .execute(
            "EXPLAIN SELECT o.ordid, t.lineitem \
             FROM orders o, XMLTable('$order//lineitem[@price > 100]' \
                passing o.orddoc as \"order\" \
                COLUMNS \"lineitem\" XML BY REF PATH '.') as t(lineitem)",
        )
        .unwrap();
    let plan = r.message.unwrap();
    assert!(plan.contains("PROBE LI_PRICE"), "{plan}");
}

#[test]
fn query_12_column_predicates_null_and_no_index() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute(
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
    )
    .unwrap();
    let r = s
        .execute(
            "SELECT o.ordid, t.lineitem, t.price \
             FROM orders o, XMLTable('$order//lineitem' passing o.orddoc as \"order\" \
                COLUMNS \"lineitem\" XML BY REF PATH '.', \
                        \"price\" DECIMAL(6,3) PATH '@price[. > 100]') as t(lineitem, price)",
        )
        .unwrap();
    // One row per lineitem (4 lineitems total); non-qualifying prices NULL.
    assert_eq!(r.rows.len(), 4);
    let prices: Vec<String> = r.rows.iter().map(|row| row[2].render()).collect();
    assert_eq!(prices, vec!["NULL", "250", "150", "NULL"]);
    // Column-expression predicate is NOT index eligible; note explains.
    let r = s
        .execute(
            "EXPLAIN SELECT o.ordid, t.price \
             FROM orders o, XMLTable('$order//lineitem' passing o.orddoc as \"order\" \
                COLUMNS \"price\" DECIMAL(6,3) PATH '@price[. > 100]') as t(price)",
        )
        .unwrap();
    let plan = r.message.unwrap();
    assert!(plan.contains("TABLE SCAN"), "{plan}");
    assert!(plan.contains("XMLTABLE column expression"), "{plan}");
}

// -------------------------------------------------- Section 3.3: joins

fn load_products(s: &mut SqlSession) {
    s.execute("INSERT INTO products VALUES ('p1', 'widget')").unwrap();
    s.execute("INSERT INTO products VALUES ('p2', 'gadget')").unwrap();
    s.execute("INSERT INTO products VALUES ('p3', 'gizmo')").unwrap();
}

#[test]
fn query_13_xquery_side_join() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    load_products(&mut s);
    let r = s
        .execute(
            "SELECT p.name, XMLQuery('$order//lineitem' passing o.orddoc as \"order\") \
             FROM products p, orders o \
             WHERE XMLExists('$order//lineitem/product[id eq $pid]' \
                passing o.orddoc as \"order\", p.id as \"pid\")",
        )
        .unwrap();
    // p1 ⋈ order1, p2 ⋈ order2, p3 ⋈ order2.
    assert_eq!(r.rows.len(), 3);
    let names: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
    assert_eq!(names, vec!["widget", "gadget", "gizmo"]);
}

#[test]
fn query_14_xmlcast_singleton_failure() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    load_products(&mut s);
    // Order 2 has two lineitem product ids: XMLCAST raises a cardinality
    // error where Query 13 succeeded.
    let err = s
        .execute(
            "SELECT p.name FROM products p, orders o \
             WHERE p.id = XMLCast(XMLQuery('$order//lineitem/product/id' \
                passing o.orddoc as \"order\") as VARCHAR(13))",
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::SqlCardinality);
}

#[test]
fn query_14_xmlcast_length_failure() {
    let mut s = session_with_paper_schema();
    load_orders(
        &mut s,
        &[r#"<order><lineitem><product><id>a-very-long-product-id</id></product></lineitem></order>"#],
    );
    load_products(&mut s);
    let err = s
        .execute(
            "SELECT p.name FROM products p, orders o \
             WHERE p.id = XMLCast(XMLQuery('$order//lineitem/product/id' \
                passing o.orddoc as \"order\") as VARCHAR(13))",
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::SqlLength);
}

#[test]
fn query_14_works_on_singletons() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, &[DOCS[0], DOCS[2]]); // single-lineitem orders only
    load_products(&mut s);
    let r = s
        .execute(
            "SELECT p.name FROM products p, orders o \
             WHERE p.id = XMLCast(XMLQuery('$order//lineitem/product/id' \
                passing o.orddoc as \"order\") as VARCHAR(13))",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1); // p1 ⋈ order 1 (p4 is not in products)
    assert_eq!(r.rows[0][0].render(), "widget");
}

#[test]
fn sql_trailing_blank_semantics_vs_xquery() {
    let mut s = session_with_paper_schema();
    // SQL comparison pads: 'p1' = 'p1   ' is TRUE.
    s.execute("INSERT INTO products VALUES ('p1', 'widget')").unwrap();
    load_orders(
        &mut s,
        &[r#"<order><lineitem><product><id>p1   </id></product></lineitem></order>"#],
    );
    let r = s
        .execute(
            "SELECT p.name FROM products p, orders o \
             WHERE p.id = XMLCast(XMLQuery('$order//lineitem/product/id' \
                passing o.orddoc as \"order\") as VARCHAR(13))",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "SQL ignores trailing blanks");
    // The XQuery-side join is exact: no match.
    let r = s
        .execute(
            "SELECT p.name FROM products p, orders o \
             WHERE XMLExists('$order//lineitem/product[id eq $pid]' \
                passing o.orddoc as \"order\", p.id as \"pid\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 0, "XQuery comparison is blank-sensitive");
}

#[test]
fn query_15_sql_side_xml_join_errors_without_cast() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    let cust = r#"<customer><id>7</id><name>ACME</name></customer>"#;
    s.execute(&format!("INSERT INTO customer VALUES (1, '{cust}')")).unwrap();
    // Comparing raw XML values with SQL `=` is a type error (Tip 6 area).
    let err = s
        .execute(
            "SELECT c.cid FROM orders o, customer c WHERE o.orddoc = c.cdoc",
        )
        .unwrap_err();
    assert_eq!(err.code, ErrorCode::SqlType);
    // Query 15's XMLCAST form works.
    let r = s
        .execute(
            "SELECT c.cid, XMLQuery('$order//lineitem' passing o.orddoc as \"order\") \
             FROM orders o, customer c \
             WHERE XMLCast(XMLQuery('$order/order/custid' passing o.orddoc as \"order\") as DOUBLE) \
                 = XMLCast(XMLQuery('$cust/customer/id' passing c.cdoc as \"cust\") as DOUBLE)",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn query_16_xquery_side_join_between_xml_columns() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    for (i, cust) in [
        r#"<customer><id>7</id><name>ACME</name></customer>"#,
        r#"<customer><id>8</id><name>Globex</name></customer>"#,
    ]
    .iter()
    .enumerate()
    {
        s.execute(&format!("INSERT INTO customer VALUES ({}, '{cust}')", i + 1)).unwrap();
    }
    let r = s
        .execute(
            "SELECT c.cid, XMLQuery('$order//lineitem' passing o.orddoc as \"order\") \
             FROM orders o, customer c \
             WHERE XMLExists('$order/order[custid/xs:double(.) = $cust/customer/id/xs:double(.)]' \
                passing o.orddoc as \"order\", c.cdoc as \"cust\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

// -------------------------------------------------- misc SQL machinery

#[test]
fn select_star_and_projection() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, &[DOCS[0]]);
    let r = s.execute("SELECT * FROM orders").unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].len(), 2);
    let r = s.execute("SELECT ordid FROM orders WHERE ordid = 1").unwrap();
    assert_eq!(r.columns, vec!["ORDID"]);
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn null_semantics_in_where() {
    let mut s = session_with_paper_schema();
    s.execute("INSERT INTO orders VALUES (1, NULL)").unwrap();
    // NULL comparisons are UNKNOWN → row filtered.
    let r = s.execute("SELECT ordid FROM orders WHERE ordid = 1").unwrap();
    assert_eq!(r.rows.len(), 1);
    let r = s
        .execute("SELECT ordid FROM orders WHERE XMLCast(XMLQuery('1+1') as INTEGER) = 3")
        .unwrap();
    assert_eq!(r.rows.len(), 0);
}

#[test]
fn xmlexists_over_null_document() {
    let mut s = session_with_paper_schema();
    s.execute("INSERT INTO orders VALUES (1, NULL)").unwrap();
    let r = s
        .execute(
            "SELECT ordid FROM orders \
             WHERE XMLExists('$order/order' passing orddoc as \"order\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 0);
}

#[test]
fn insert_parses_xml_strings() {
    let mut s = session_with_paper_schema();
    assert!(s.execute("INSERT INTO orders VALUES (1, '<order/>')").is_ok());
    let err = s.execute("INSERT INTO orders VALUES (2, '<order')").unwrap_err();
    assert_eq!(err.code, ErrorCode::XPST0003);
}

#[test]
fn explain_renders_rejections() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute(
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
    )
    .unwrap();
    // String predicate: the double index is rejected with a reason.
    let r = s
        .execute(
            "EXPLAIN SELECT ordid FROM orders \
             WHERE XMLExists('$o//lineitem[@price > \"100\"]' passing orddoc as \"o\")",
        )
        .unwrap();
    let plan = r.message.unwrap();
    assert!(plan.contains("rejected candidates"), "{plan}");
    assert!(plan.contains("cannot serve a varchar comparison"), "{plan}");
}

#[test]
fn xmltable_lateral_over_join() {
    // XMLTABLE may reference any earlier FROM item (implied lateral join).
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    let r = s
        .execute(
            "SELECT o.ordid, c.cid, t.pid \
             FROM orders o, customer c, \
                  XMLTable('$o//product/id' passing o.orddoc as \"o\" \
                    COLUMNS \"pid\" VARCHAR(13) PATH '.') as t(pid) \
             WHERE c.cid = 1",
        );
    // No customers loaded: zero rows but a valid plan.
    assert_eq!(r.unwrap().rows.len(), 0);
    s.execute("INSERT INTO customer VALUES (1, '<customer><id>9</id></customer>')")
        .unwrap();
    let r = s
        .execute(
            "SELECT o.ordid, c.cid, t.pid \
             FROM orders o, customer c, \
                  XMLTable('$o//product/id' passing o.orddoc as \"o\" \
                    COLUMNS \"pid\" VARCHAR(13) PATH '.') as t(pid) \
             WHERE c.cid = 1",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 4, "one row per product id across all orders");
}

#[test]
fn between_function_explains_in_sql() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute(
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
    )
    .unwrap();
    let plan = s
        .execute(
            "EXPLAIN SELECT ordid FROM orders \
             WHERE XMLExists('$o//lineitem[db2-fn:between(@price, 100, 200)]' passing orddoc as \"o\")",
        )
        .unwrap()
        .message
        .unwrap();
    assert!(plan.contains("between-range"), "{plan}");
    let r = s
        .execute(
            "SELECT ordid FROM orders \
             WHERE XMLExists('$o//lineitem[db2-fn:between(@price, 100, 200)]' passing orddoc as \"o\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1); // the 150.00 lineitem in order 2
}

#[test]
fn xmlexists_join_predicate_does_not_probe_wrongly() {
    // Passing variables from TWO tables: the analyzer must not emit a
    // bogus single-table probe for the join predicate.
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute("INSERT INTO customer VALUES (1, '<customer><id>7</id></customer>')")
        .unwrap();
    s.execute(
        "CREATE INDEX o_custid ON orders(orddoc) USING XMLPATTERN '//custid' AS double",
    )
    .unwrap();
    let r = s
        .execute(
            "SELECT c.cid FROM orders o, customer c \
             WHERE XMLExists('$o/order[custid/xs:double(.) = $c/customer/id/xs:double(.)]' \
                passing o.orddoc as \"o\", c.cdoc as \"c\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1, "order with custid 7 joins the customer");
}

#[test]
fn select_aliases_and_rendering() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, &[DOCS[0]]);
    let r = s
        .execute("SELECT ordid AS id, XMLQuery('1+1') AS two FROM orders")
        .unwrap();
    assert_eq!(r.columns, vec!["ID", "TWO"]);
    let rendered = r.render();
    assert!(rendered.contains("row 1: 1 | 2"), "{rendered}");
}

#[test]
fn multiple_xml_predicates_intersect() {
    let mut s = session_with_paper_schema();
    load_orders(&mut s, DOCS);
    s.execute(
        "CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double",
    )
    .unwrap();
    s.execute("CREATE INDEX o_custid ON orders(orddoc) USING XMLPATTERN '//custid' AS double")
        .unwrap();
    // Two XMLEXISTS conjuncts on the same table: both probed, intersected.
    let plan = s
        .execute(
            "EXPLAIN SELECT ordid FROM orders \
             WHERE XMLExists('$o//lineitem[@price > 100]' passing orddoc as \"o\") \
               AND XMLExists('$o/order[custid = 8]' passing orddoc as \"o\")",
        )
        .unwrap()
        .message
        .unwrap();
    assert!(plan.contains("AND("), "{plan}");
    assert!(plan.contains("LI_PRICE") && plan.contains("O_CUSTID"), "{plan}");
    let r = s
        .execute(
            "SELECT ordid FROM orders \
             WHERE XMLExists('$o//lineitem[@price > 100]' passing orddoc as \"o\") \
               AND XMLExists('$o/order[custid = 8]' passing orddoc as \"o\")",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert!(matches!(r.rows[0][0], Scalar::Integer(2)));
}
