//! The wire protocol: length-prefixed, CRC-framed request/response.
//!
//! Every message travels in one frame, mirroring the WAL's on-disk format
//! (and reusing its CRC-32): `[u32 payload_len LE][u32 crc32(payload) LE]
//! [payload]`. A frame is validated *before* it is interpreted — a length
//! beyond [`MAX_FRAME`] is rejected without allocating it, a CRC mismatch
//! is rejected without decoding — so a malformed or corrupted frame can
//! produce a typed [`Response::Protocol`] error but never a panic or an
//! unbounded allocation.
//!
//! Decoding is pure slicing over a bounds-checked cursor: the fuzz suite
//! (`frame_roundtrip.rs`) feeds seeded garbage, truncations, and bit flips
//! through [`Request::decode`]/[`Response::decode`] and asserts typed
//! errors only.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use xqdb_wal::crc32;

/// Protocol version carried as the first payload byte of every message.
pub const PROTOCOL_VERSION: u8 = 1;

/// Maximum frame payload accepted (4 MiB — far above any paper query or
/// rendered result, far below an allocation-of-death).
pub const MAX_FRAME: usize = 4 * 1024 * 1024;

/// Frame header bytes: payload length + CRC-32, both little-endian u32.
pub const FRAME_HEADER: usize = 8;

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered with `Ok("pong")` without admission.
    Ping,
    /// One statement in the shell grammar (SQL, `xquery ...`,
    /// `explain [analyze] xquery ...`).
    Statement(String),
}

const KIND_PING: u8 = 0;
const KIND_STATEMENT: u8 = 1;

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The statement ran; `body` is its rendered result.
    Ok {
        /// Rendered result text (rows, report, or confirmation).
        body: String,
    },
    /// The statement ran and failed with a typed engine error.
    Error {
        /// The engine error code's display form (e.g. `xqdb:RESOURCE`).
        code: String,
        /// Human-readable context.
        message: String,
    },
    /// Admission control shed the request: the server is at capacity and
    /// the queue was full or the queue deadline passed. The connection
    /// stays open; retry after the hinted delay.
    Busy {
        /// Client back-off hint in milliseconds.
        retry_after_ms: u32,
    },
    /// The frame or its payload was malformed. Sent once, then the server
    /// closes the connection (the stream may be desynchronized).
    Protocol {
        /// What was wrong with the frame.
        reason: ProtocolReason,
        /// Human-readable context.
        message: String,
    },
}

const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;
const STATUS_BUSY: u8 = 2;
const STATUS_PROTOCOL: u8 = 3;

/// Why a frame was rejected at the protocol layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolReason {
    /// The payload CRC did not match the header.
    CrcMismatch,
    /// The header claimed a payload beyond [`MAX_FRAME`].
    Oversized,
    /// The payload did not decode (bad version/kind/UTF-8/truncation).
    Malformed,
    /// The frame did not arrive within the read deadline (slow client).
    ReadTimeout,
}

impl ProtocolReason {
    fn to_byte(self) -> u8 {
        match self {
            ProtocolReason::CrcMismatch => 0,
            ProtocolReason::Oversized => 1,
            ProtocolReason::Malformed => 2,
            ProtocolReason::ReadTimeout => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self, DecodeError> {
        Ok(match b {
            0 => ProtocolReason::CrcMismatch,
            1 => ProtocolReason::Oversized,
            2 => ProtocolReason::Malformed,
            3 => ProtocolReason::ReadTimeout,
            _ => return Err(DecodeError::Malformed("unknown protocol reason")),
        })
    }
}

/// A typed decode failure. Never a panic: every variant is produced by a
/// bounds-checked read over the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// First payload byte is not [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// Unknown request kind / response status byte.
    BadKind(u8),
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// The payload ended before a declared field.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::BadKind(k) => write!(f, "unknown message kind {k}"),
            DecodeError::BadUtf8 => f.write_str("string field is not valid UTF-8"),
            DecodeError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

/// Bounds-checked forward-only reader over a payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Malformed(what))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let end = self.pos.checked_add(4).ok_or(DecodeError::Malformed(what))?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Malformed(what))?;
        self.pos = end;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Ok(u32::from_le_bytes(arr))
    }

    fn str(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let len = self.u32(what)? as usize;
        let end = self.pos.checked_add(len).ok_or(DecodeError::Malformed(what))?;
        let bytes = self.buf.get(self.pos..end).ok_or(DecodeError::Malformed(what))?;
        self.pos = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn finish(&self, what: &'static str) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(DecodeError::Malformed(what))
        }
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Encode to a frame payload (version + kind + fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![PROTOCOL_VERSION];
        match self {
            Request::Ping => out.push(KIND_PING),
            Request::Statement(text) => {
                out.push(KIND_STATEMENT);
                push_str(&mut out, text);
            }
        }
        out
    }

    /// Decode from a frame payload. Typed errors, never a panic.
    pub fn decode(payload: &[u8]) -> Result<Request, DecodeError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8("missing version byte")?;
        if version != PROTOCOL_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let kind = cur.u8("missing kind byte")?;
        let req = match kind {
            KIND_PING => Request::Ping,
            KIND_STATEMENT => Request::Statement(cur.str("statement text")?),
            other => return Err(DecodeError::BadKind(other)),
        };
        cur.finish("trailing bytes after request")?;
        Ok(req)
    }
}

impl Response {
    /// Encode to a frame payload (version + status + fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![PROTOCOL_VERSION];
        match self {
            Response::Ok { body } => {
                out.push(STATUS_OK);
                push_str(&mut out, body);
            }
            Response::Error { code, message } => {
                out.push(STATUS_ERROR);
                push_str(&mut out, code);
                push_str(&mut out, message);
            }
            Response::Busy { retry_after_ms } => {
                out.push(STATUS_BUSY);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Response::Protocol { reason, message } => {
                out.push(STATUS_PROTOCOL);
                out.push(reason.to_byte());
                push_str(&mut out, message);
            }
        }
        out
    }

    /// Decode from a frame payload. Typed errors, never a panic.
    pub fn decode(payload: &[u8]) -> Result<Response, DecodeError> {
        let mut cur = Cursor::new(payload);
        let version = cur.u8("missing version byte")?;
        if version != PROTOCOL_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let status = cur.u8("missing status byte")?;
        let resp = match status {
            STATUS_OK => Response::Ok { body: cur.str("response body")? },
            STATUS_ERROR => Response::Error {
                code: cur.str("error code")?,
                message: cur.str("error message")?,
            },
            STATUS_BUSY => Response::Busy { retry_after_ms: cur.u32("retry_after_ms")? },
            STATUS_PROTOCOL => Response::Protocol {
                reason: ProtocolReason::from_byte(cur.u8("protocol reason")?)?,
                message: cur.str("protocol message")?,
            },
            other => return Err(DecodeError::BadKind(other)),
        };
        cur.finish("trailing bytes after response")?;
        Ok(resp)
    }
}

/// Wrap a payload in a frame: `[len][crc][payload]`.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a frame could not be read from a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameReadError {
    /// The peer closed cleanly at a frame boundary (normal end).
    Closed,
    /// The peer disconnected mid-frame.
    Truncated,
    /// The header claimed a payload beyond [`MAX_FRAME`]; the claimed
    /// length is reported without having been allocated.
    Oversized(u32),
    /// The payload CRC did not match the header.
    CrcMismatch,
    /// The frame did not complete within the read deadline (slow-loris
    /// defense: the clock starts at the frame's first byte).
    Deadline,
    /// The caller's stop check fired while idle between frames.
    Shutdown,
    /// Any other I/O failure.
    Io(std::io::ErrorKind),
}

/// Read one frame. While *idle* (no byte of a new frame yet) the stream is
/// polled in `idle_poll` slices and `should_stop` is consulted, so a drain
/// wakes idle connections promptly; once the first byte arrives the whole
/// frame must complete within `frame_deadline`.
pub fn read_frame(
    stream: &mut TcpStream,
    idle_poll: Duration,
    frame_deadline: Duration,
    should_stop: &dyn Fn() -> bool,
) -> Result<Vec<u8>, FrameReadError> {
    let mut header = [0u8; FRAME_HEADER];
    // Idle phase: wait for the first byte, polling the stop flag.
    let mut filled = 0usize;
    if stream.set_read_timeout(Some(idle_poll)).is_err() {
        return Err(FrameReadError::Io(std::io::ErrorKind::Other));
    }
    while filled == 0 {
        match stream.read(&mut header) {
            Ok(0) => return Err(FrameReadError::Closed),
            Ok(n) => filled = n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if should_stop() {
                    return Err(FrameReadError::Shutdown);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e.kind())),
        }
    }
    // Framed phase: the clock is running.
    let started = Instant::now();
    read_remaining(stream, &mut header, filled, started, frame_deadline)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len as usize > MAX_FRAME {
        return Err(FrameReadError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_remaining(stream, &mut payload, 0, started, frame_deadline)?;
    if crc32(&payload) != crc {
        return Err(FrameReadError::CrcMismatch);
    }
    Ok(payload)
}

/// Fill `buf[filled..]` before `started + deadline`, polling in short
/// slices so a dribbling writer cannot stall past the deadline.
fn read_remaining(
    stream: &mut TcpStream,
    buf: &mut [u8],
    mut filled: usize,
    started: Instant,
    deadline: Duration,
) -> Result<(), FrameReadError> {
    while filled < buf.len() {
        let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
            return Err(FrameReadError::Deadline);
        };
        // Cap each wait so the deadline is re-checked even if the peer
        // trickles a byte right before every timeout.
        let slice = remaining.min(Duration::from_millis(20)).max(Duration::from_millis(1));
        if stream.set_read_timeout(Some(slice)).is_err() {
            return Err(FrameReadError::Io(std::io::ErrorKind::Other));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(FrameReadError::Truncated),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameReadError::Io(e.kind())),
        }
    }
    Ok(())
}

/// Write one frame under a write deadline. A stalled reader (full socket
/// buffer) turns into a typed error instead of a wedged handler thread.
pub fn write_frame(
    stream: &mut TcpStream,
    payload: &[u8],
    write_timeout: Duration,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(write_timeout))?;
    stream.write_all(&encode_frame(payload))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        for req in [Request::Ping, Request::Statement("SELECT 1 FROM t".into())] {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn response_roundtrip() {
        let cases = [
            Response::Ok { body: "row 1: x\n".into() },
            Response::Error { code: "xqdb:RESOURCE".into(), message: "deadline".into() },
            Response::Busy { retry_after_ms: 75 },
            Response::Protocol {
                reason: ProtocolReason::CrcMismatch,
                message: "crc mismatch".into(),
            },
        ];
        for resp in cases {
            assert_eq!(Response::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn truncated_payload_is_typed_not_panic() {
        let full = Request::Statement("SELECT 1".into()).encode();
        for cut in 0..full.len() {
            let r = Request::decode(&full[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn bad_version_and_kind_are_typed() {
        assert_eq!(Request::decode(&[9, KIND_PING]), Err(DecodeError::BadVersion(9)));
        assert_eq!(
            Request::decode(&[PROTOCOL_VERSION, 77]),
            Err(DecodeError::BadKind(77))
        );
    }

    #[test]
    fn frame_encoding_matches_wal_layout() {
        let payload = b"hello";
        let frame = encode_frame(payload);
        assert_eq!(frame.len(), FRAME_HEADER + payload.len());
        assert_eq!(u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]), 5);
        assert_eq!(
            u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]),
            crc32(payload)
        );
        assert_eq!(&frame[FRAME_HEADER..], payload);
    }
}
