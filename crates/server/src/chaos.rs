//! Wire-level clients for tests and benches: a well-behaved [`Client`]
//! plus a [`ChaosClient`] that injects connection-level faults through an
//! [`xqdb_xdm::FaultInjector`].
//!
//! The chaos client is the offensive half of the chaos matrix: each
//! [`ConnectionFault`] variant misbehaves on the wire in a specific way
//! (vanishing mid-frame, trickling bytes, flipping bits, lying about
//! frame sizes) and reports what it did, so the test can assert the
//! server's response — a typed protocol error or a clean close, never a
//! panic, hang, or leaked session.

use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use xqdb_xdm::{ConnectionFault, FaultInjector};

use crate::protocol::{
    self, FrameReadError, Request, Response, FRAME_HEADER, MAX_FRAME,
};

/// A well-behaved wire client: one framed request, one framed response.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

/// Client-side failure modes for a request.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or writing failed.
    Io(std::io::Error),
    /// The server closed or the response frame was unreadable.
    Frame(FrameReadError),
    /// The response frame decoded to garbage.
    Decode(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e:?}"),
            ClientError::Decode(e) => write!(f, "decode: {e}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl Client {
    /// Connect to a server address (e.g. from `ServerHandle::local_addr`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        Ok(Client { stream: TcpStream::connect(addr)? })
    }

    /// Send one statement and wait for the server's typed response.
    pub fn statement(&mut self, text: &str) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Statement(text.to_string()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Response, ClientError> {
        self.roundtrip(&Request::Ping)
    }

    /// Write a statement frame without waiting for the reply. Paired with
    /// [`Client::read_reply`], this lets tests act (e.g. signal the server)
    /// while the request is in flight.
    pub fn send_statement(&mut self, text: &str) -> Result<(), ClientError> {
        let req = Request::Statement(text.to_string());
        protocol::write_frame(&mut self.stream, &req.encode(), Duration::from_secs(10))?;
        Ok(())
    }

    /// Read the reply to a previously sent statement.
    pub fn read_reply(&mut self) -> Result<Response, ClientError> {
        read_response(&mut self.stream)
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, &req.encode(), Duration::from_secs(10))?;
        read_response(&mut self.stream)
    }
}

/// Read and decode one response frame with a generous client-side deadline.
pub fn read_response(stream: &mut TcpStream) -> Result<Response, ClientError> {
    let payload =
        protocol::read_frame(stream, Duration::from_millis(50), Duration::from_secs(10), &|| {
            false
        })
        .map_err(ClientError::Frame)?;
    Response::decode(&payload).map_err(|e| ClientError::Decode(e.to_string()))
}

/// What one chaos request did.
#[derive(Debug)]
pub enum ChaosOutcome {
    /// The injector let the request through; here is the server's answer.
    Response(Response),
    /// The injector fired: the client misbehaved as `ConnectionFault`
    /// describes. If the server sent a typed protocol error before the
    /// connection died, it is included.
    FaultInjected(ConnectionFault, Option<Response>),
}

/// A client that misbehaves on the wire per its configured fault whenever
/// the shared injector fires, reconnecting as needed afterwards.
#[derive(Debug)]
pub struct ChaosClient {
    addr: String,
    fault: ConnectionFault,
    injector: Arc<FaultInjector>,
    stream: Option<TcpStream>,
}

impl ChaosClient {
    /// A chaos client for `addr` injecting `fault` whenever `injector`
    /// fires. Connects lazily.
    pub fn new(addr: &str, fault: ConnectionFault, injector: Arc<FaultInjector>) -> Self {
        ChaosClient { addr: addr.to_string(), fault, injector, stream: None }
    }

    fn stream(&mut self) -> std::io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            self.stream = Some(TcpStream::connect(&self.addr)?);
        }
        match self.stream.as_mut() {
            Some(s) => Ok(s),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "chaos client stream missing after connect",
            )),
        }
    }

    /// Send `text` as a statement — faithfully, or corrupted per the
    /// configured fault when the injector fires.
    pub fn statement(&mut self, text: &str) -> Result<ChaosOutcome, ClientError> {
        if !self.injector.should_fail() {
            let stream = self.stream()?;
            let req = Request::Statement(text.to_string());
            protocol::write_frame(stream, &req.encode(), Duration::from_secs(10))?;
            return match read_response(stream) {
                Ok(resp) => Ok(ChaosOutcome::Response(resp)),
                Err(e) => {
                    // The server may close after a protocol error on a
                    // previous exchange; drop the stream so the next call
                    // reconnects, and surface the error.
                    self.stream = None;
                    Err(e)
                }
            };
        }
        let fault = self.fault;
        let outcome = self.inject(text, fault);
        // Every fault leaves the stream in an unknown state; reconnect
        // next time.
        self.stream = None;
        outcome.map(|resp| ChaosOutcome::FaultInjected(fault, resp))
    }

    /// Misbehave per `fault`; returns the server's typed protocol error if
    /// one arrived before the connection died.
    fn inject(
        &mut self,
        text: &str,
        fault: ConnectionFault,
    ) -> Result<Option<Response>, ClientError> {
        let frame = protocol::encode_frame(&Request::Statement(text.to_string()).encode());
        match fault {
            ConnectionFault::DisconnectMidFrame => {
                let stream = self.stream()?;
                // Send the header plus half the payload, then vanish.
                let cut = FRAME_HEADER + (frame.len() - FRAME_HEADER) / 2;
                stream.write_all(&frame[..cut])?;
                stream.flush()?;
                let _ = stream.shutdown(Shutdown::Both);
                Ok(None)
            }
            ConnectionFault::SlowLoris => {
                // Trickle the frame one byte at a time, slower than the
                // server's whole-frame deadline allows; expect a typed
                // ReadTimeout (or a close once the server gives up).
                let stream = self.stream()?;
                for chunk in frame.chunks(1).take(64) {
                    // Writes start failing once the server gives up and
                    // closes — stop trickling and read its parting word.
                    if stream.write_all(chunk).is_err() || stream.flush().is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(40));
                }
                Ok(read_response(stream).ok())
            }
            ConnectionFault::CorruptFrame => {
                let mut bad = frame.clone();
                // Flip one payload bit; the header CRC no longer matches.
                let idx = FRAME_HEADER + (text.len() % (bad.len() - FRAME_HEADER));
                bad[idx] ^= 0x40;
                let stream = self.stream()?;
                stream.write_all(&bad)?;
                stream.flush()?;
                Ok(read_response(stream).ok())
            }
            ConnectionFault::OversizedFrame => {
                // A header claiming a frame the server must refuse.
                let claimed = (MAX_FRAME as u32) + 1;
                let mut header = Vec::with_capacity(FRAME_HEADER);
                header.extend_from_slice(&claimed.to_le_bytes());
                header.extend_from_slice(&0u32.to_le_bytes());
                let stream = self.stream()?;
                stream.write_all(&header)?;
                stream.flush()?;
                Ok(read_response(stream).ok())
            }
            ConnectionFault::Burst => {
                // Fire several back-to-back requests on one connection
                // without waiting; drain whatever responses come back.
                let stream = self.stream()?;
                for _ in 0..4 {
                    protocol::write_frame(
                        stream,
                        &Request::Statement(text.to_string()).encode(),
                        Duration::from_secs(10),
                    )?;
                }
                let mut last = None;
                for _ in 0..4 {
                    match read_response(stream) {
                        Ok(resp) => last = Some(resp),
                        Err(_) => break,
                    }
                }
                Ok(last)
            }
        }
    }
}
