//! `xqdb` — an interactive SQL/XML + XQuery shell over the engine.
//!
//! ```console
//! $ cargo run -p xqdb-server --bin xqdb
//! xqdb> create table orders (ordid integer, orddoc XML);
//! xqdb> CREATE INDEX li_price ON orders(orddoc) USING XMLPATTERN '//lineitem/@price' AS double;
//! xqdb> INSERT INTO orders VALUES (1, '<order><lineitem price="250"/></order>');
//! xqdb> SELECT ordid FROM orders WHERE XMLExists('$o//lineitem[@price > 100]' passing orddoc as "o");
//! xqdb> xquery db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem;
//! xqdb> explain xquery db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100];
//! xqdb> .tables
//! xqdb> .indexes
//! ```
//!
//! Statements end with `;`. Lines starting with `.` are shell commands.
//! Prefix `xquery` runs the standalone XQuery interface;
//! `explain xquery` plans without executing. Everything else is SQL.
//!
//! Resource-governor flags (applied to every statement in the session):
//!
//! - `--timeout-ms N`    abort any query running longer than N milliseconds
//! - `--max-steps N`     abort any query after N evaluation steps
//! - `--max-doc-bytes N` reject XMLPARSE input larger than N bytes
//! - `--threads N`       evaluate partitionable scans on N worker threads
//!   (`--threads 1`, the default, is the exact legacy serial path)
//!
//! Observability flags:
//!
//! - `--trace`             record per-query span traces and print the span
//!   tree after every statement
//! - `--metrics-json PATH` keep session metrics and rewrite a JSON snapshot
//!   of the registry to PATH after every statement
//!
//! Durability flags and commands:
//!
//! - `--data-dir PATH`  back the session with a write-ahead log in PATH:
//!   existing state is recovered on startup, every mutation is logged
//! - `--fsync MODE`     `always` | `batch` (default) | `off` — when
//!   acknowledged records reach the disk
//! - `--buffer-pages N` cap every buffer pool (the shared page file and
//!   each index's node pool) at N 8 KiB frames; pages beyond that spill to
//!   disk and fault back in on demand (also settable via
//!   `XQDB_BUFFER_PAGES`)
//! - `xqdb recover PATH` replay a data directory, print the recovery
//!   report (manifest loaded, WAL suffix replayed, torn tails healed) and
//!   exit
//! - `xqdb pages PATH`  print page-file statistics (page counts by kind,
//!   fill factor, per-table extents) for a data directory or `.xqp` file
//! - `xqdb stats PATH TABLE` print a table's per-path synopsis statistics
//!   (doc counts, value-histogram buckets, distinct estimates) — the
//!   inputs of the cost-based planner
//! - `.checkpoint`       flush dirty pages, write the manifest and prune
//!   the covered log
//!
//! `explain analyze xquery <expr>;` and `EXPLAIN ANALYZE SELECT ...;` execute
//! the statement and print the plan with actual timings, counters and the
//! query doctor's index-eligibility diagnoses.
//!
//! Server mode:
//!
//! - `xqdb serve [--addr HOST:PORT] [--max-sessions N] [--session-budget N]
//!   [--queue-depth N] [--queue-timeout-ms N] [--request-timeout-ms N]
//!   [--threads N] [--data-dir PATH] [--fsync MODE] [--metrics-json PATH]`
//!   runs the concurrent TCP front end (see `xqdb-server`); `SIGTERM`
//!   triggers a graceful drain (stop accepting, finish in-flight requests,
//!   checkpoint, exit 0).

use std::io::{self, BufRead, Write};

use xqdb_core::sqlxml::SqlSession;
use xqdb_core::{AnalysisEnv, Obs, ObsConfig};
use xqdb_xdm::{ErrorCode, Limits, XdmError};

/// Session-wide resource limits and observability options parsed from the
/// command line.
#[derive(Clone, Default)]
struct CliLimits {
    timeout_ms: Option<u64>,
    max_steps: Option<u64>,
    max_doc_bytes: Option<usize>,
    threads: Option<usize>,
    trace: bool,
    metrics_json: Option<String>,
    data_dir: Option<String>,
    fsync: Option<xqdb_core::FsyncMode>,
    no_prefilter: bool,
    no_twig: bool,
    no_cost: bool,
    buffer_pages: Option<usize>,
}

impl CliLimits {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = CliLimits::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| -> Result<u64, String> {
                it.next()
                    .ok_or_else(|| format!("{flag} requires a value"))?
                    .parse::<u64>()
                    .map_err(|_| format!("{flag} requires a non-negative integer"))
            };
            match arg.as_str() {
                "--timeout-ms" => out.timeout_ms = Some(value("--timeout-ms")?),
                "--max-steps" => out.max_steps = Some(value("--max-steps")?),
                "--max-doc-bytes" => {
                    out.max_doc_bytes = Some(value("--max-doc-bytes")? as usize)
                }
                "--threads" => out.threads = Some(value("--threads")? as usize),
                "--buffer-pages" => {
                    out.buffer_pages = Some(value("--buffer-pages")? as usize)
                }
                "--trace" => out.trace = true,
                "--no-prefilter" => out.no_prefilter = true,
                "--no-twig" => out.no_twig = true,
                "--no-cost" => out.no_cost = true,
                "--metrics-json" => {
                    out.metrics_json = Some(
                        it.next()
                            .ok_or_else(|| "--metrics-json requires a path".to_string())?
                            .clone(),
                    )
                }
                "--data-dir" => {
                    out.data_dir = Some(
                        it.next()
                            .ok_or_else(|| "--data-dir requires a path".to_string())?
                            .clone(),
                    )
                }
                "--fsync" => {
                    let mode = it
                        .next()
                        .ok_or_else(|| "--fsync requires a mode".to_string())?;
                    out.fsync = Some(xqdb_core::FsyncMode::parse(mode).ok_or_else(|| {
                        format!("--fsync must be always, batch or off (got {mode:?})")
                    })?)
                }
                "--help" | "-h" => {
                    return Err("usage: xqdb [recover PATH] [pages PATH] [verify PATH] [labels PATH TABLE] [stats PATH TABLE] [--timeout-ms N] [--max-steps N] [--max-doc-bytes N] [--threads N] [--buffer-pages N] [--no-prefilter] [--no-twig] [--no-cost] [--trace] [--metrics-json PATH] [--data-dir PATH] [--fsync always|batch|off]"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other}; try --help")),
            }
        }
        Ok(out)
    }

    fn query_limits(&self) -> Limits {
        let mut l = Limits::unlimited();
        if let Some(ms) = self.timeout_ms {
            l = l.with_timeout(std::time::Duration::from_millis(ms));
        }
        if let Some(steps) = self.max_steps {
            l = l.with_max_steps(steps);
        }
        if let Some(bytes) = self.max_doc_bytes {
            l = l.with_max_doc_bytes(bytes);
        }
        l
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `xqdb recover PATH` — replay a data directory, report, exit.
    if args.first().map(String::as_str) == Some("recover") {
        let Some(dir) = args.get(1) else {
            eprintln!("usage: xqdb recover PATH");
            std::process::exit(2);
        };
        std::process::exit(run_recover(dir));
    }
    // `xqdb pages PATH` — print page-file statistics, exit.
    if args.first().map(String::as_str) == Some("pages") {
        let Some(path) = args.get(1) else {
            eprintln!("usage: xqdb pages PATH (a data directory or a .xqp page file)");
            std::process::exit(2);
        };
        std::process::exit(run_pages(path));
    }
    // `xqdb verify PATH` — offline scrub: CRC-check every page, recover,
    // run the rebuild oracle, print per-table verdicts, exit.
    if args.first().map(String::as_str) == Some("verify") {
        let Some(dir) = args.get(1) else {
            eprintln!("usage: xqdb verify PATH (a data directory)");
            std::process::exit(2);
        };
        std::process::exit(run_verify(dir));
    }
    // `xqdb labels PATH TABLE` — dump a table's label-stream cardinalities.
    if args.first().map(String::as_str) == Some("labels") {
        let (Some(dir), Some(table)) = (args.get(1), args.get(2)) else {
            eprintln!("usage: xqdb labels PATH TABLE (PATH is a data directory)");
            std::process::exit(2);
        };
        std::process::exit(run_labels(dir, table));
    }
    // `xqdb stats PATH TABLE` — dump a table's synopsis statistics.
    if args.first().map(String::as_str) == Some("stats") {
        let (Some(dir), Some(table)) = (args.get(1), args.get(2)) else {
            eprintln!("usage: xqdb stats PATH TABLE (PATH is a data directory)");
            std::process::exit(2);
        };
        std::process::exit(run_stats(dir, table));
    }
    // `xqdb serve ...` — run the concurrent TCP front end until SIGTERM.
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(run_serve(&args[1..]));
    }
    let limits = match CliLimits::parse(&args) {
        Ok(l) => l,
        Err(msg) => {
            // --help lands here too; only real flag errors are failures.
            if msg.starts_with("usage:") {
                println!("{msg}");
                std::process::exit(0);
            }
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    // The flag is just a spelling of the env knob; every pool created from
    // here on (row store, recovery, index node pools) reads it. Set before
    // any session exists, while the process is still single-threaded.
    if let Some(n) = limits.buffer_pages {
        std::env::set_var("XQDB_BUFFER_PAGES", n.to_string());
    }
    let mut session = match &limits.data_dir {
        None => SqlSession::new(),
        Some(dir) => {
            let config = xqdb_core::WalConfig {
                fsync: limits.fsync.unwrap_or_default(),
                ..Default::default()
            };
            match SqlSession::open_durable(std::path::Path::new(dir), config) {
                Ok((session, report)) => {
                    print!("{}", report.render());
                    session
                }
                Err(e) => {
                    eprintln!("error: could not open data directory {dir}: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    if let Some(bytes) = limits.max_doc_bytes {
        session.parse_limits = session.parse_limits.with_max_doc_bytes(bytes);
    }
    // One knob configures every parallel phase: XQuery scans, the SQL WHERE
    // phase, and index back-fills all read the catalog's runtime config.
    session.catalog.runtime =
        xqdb_runtime::RuntimeConfig::with_threads(limits.threads.unwrap_or(1));
    // Metrics live for the whole session; traces are per-statement.
    let obs = Obs::new(ObsConfig {
        metrics: limits.metrics_json.is_some(),
        tracing: limits.trace,
    });
    session.set_obs(obs.clone());
    obs.set_gauge(
        xqdb_obs::Gauge::BufferPoolPages,
        session.catalog.db.pager().capacity() as u64,
    );
    session.prefilter = !limits.no_prefilter;
    session.twig = !limits.no_twig;
    session.cost = !limits.no_cost;
    let stdin = io::stdin();
    let mut buffer = String::new();
    print!("xqdb — XML database shell (statements end with ';', '.help' for help)\nxqdb> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !dot_command(&mut session, trimmed) {
                break;
            }
            print!("xqdb> ");
            io::stdout().flush().ok();
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if !trimmed.ends_with(';') {
            print!("   -> ");
            io::stdout().flush().ok();
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if !stmt.is_empty() {
            run_statement(&mut session, &stmt, &limits);
            write_metrics(&obs, &limits);
        }
        print!("xqdb> ");
        io::stdout().flush().ok();
    }
    write_metrics(&obs, &limits);
}

/// `xqdb recover PATH`: replay the directory with tracing on, print the
/// recovery report and span tree. Exit code 0 on success, 1 when the log
/// is unrecoverable (e.g. a quarantined segment).
fn run_recover(dir: &str) -> i32 {
    let trace = xqdb_obs::Trace::recording();
    match xqdb_core::recover_catalog(
        std::path::Path::new(dir),
        xqdb_runtime::RuntimeConfig::default(),
        &trace,
        &Obs::disabled(),
    ) {
        Ok((catalog, report)) => {
            print!("{}", report.render());
            for name in catalog.db.table_names() {
                let Some(t) = catalog.db.table(name) else { continue };
                println!("  table {name}: {} row(s)", t.len());
            }
            for idx in catalog.all_indexes() {
                println!("  index {}: {} entries", idx.name, idx.len());
            }
            print!("{}", trace.render());
            0
        }
        Err(e) => {
            report_error(&e);
            1
        }
    }
}

/// `xqdb pages PATH`: open a page file (PATH is a data directory holding
/// `pages.xqp`, or the `.xqp` file itself) and print its statistics —
/// page counts by kind, fill factor, and per-table extents. A torn
/// trailing page (a crashed partial write) is reported; opening trims it,
/// exactly as recovery would before replaying the WAL suffix.
fn run_pages(arg: &str) -> i32 {
    let p = std::path::Path::new(arg);
    let file = if p.is_dir() { p.join(xqdb_core::PAGES_FILE) } else { p.to_path_buf() };
    if !file.exists() {
        eprintln!("error: no page file at {}", file.display());
        return 2;
    }
    let (pager, torn) =
        match xqdb_pager::Pager::open_file(&file, xqdb_pager::DEFAULT_BUFFER_PAGES, 0) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("error: could not open {}: {e}", file.display());
                return 1;
            }
        };
    let pager = std::sync::Arc::new(pager);
    let stats = match xqdb_pager::file_stats(&pager) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not scan {}: {e}", file.display());
            return 1;
        }
    };
    println!(
        "page file {} — {} page(s), {} KiB",
        file.display(),
        stats.pages,
        stats.pages * xqdb_pager::PAGE_SIZE as u64 / 1024
    );
    println!(
        "  heap: {}  chain: {}  free: {}  meta: 1",
        stats.heap_pages, stats.chain_pages, stats.free_pages
    );
    println!(
        "  used: {} byte(s), fill factor {:.2}",
        stats.used_bytes, stats.fill_factor
    );
    if torn {
        println!("  torn trailing page trimmed (recovery replays the WAL suffix to heal it)");
    }
    for (table_id, pages, records, bytes) in &stats.tables {
        println!(
            "  table {table_id}: {pages} page(s), {records} record(s), {bytes} byte(s)"
        );
    }
    0
}

/// `xqdb verify PATH`: offline scrub of a data directory. Three passes:
///
/// 1. **Page CRCs** — every full 8 KiB page of `pages.xqp` is checked
///    (magic, version, CRC, self-identification) by reading the raw file,
///    not the buffer pool, so a latent corruption on a never-fetched page
///    is found too. A damaged *trailing* page is reported but tolerated:
///    that is the torn-write shape recovery trims and heals from the WAL.
/// 2. **Recovery** — the directory is recovered exactly as a session
///    would (manifest adoption + WAL suffix replay). Failures are typed
///    errors, never panics, whatever garbage the directory holds.
/// 3. **Rebuild oracle** — `verify_derived_state` compares every derived
///    structure (index keys, synopsis, signatures, label streams) against
///    a from-scratch rebuild over the live rows; one verdict per table.
///
/// Exit 0 only when all three pass.
fn run_verify(dir: &str) -> i32 {
    let p = std::path::Path::new(dir);
    if !p.is_dir() {
        eprintln!("error: {dir} is not a data directory");
        return 2;
    }
    let mut failed = false;
    let pages_file = p.join(xqdb_core::PAGES_FILE);
    if pages_file.exists() {
        match std::fs::read(&pages_file) {
            Ok(bytes) => {
                let n = bytes.len() / xqdb_pager::PAGE_SIZE;
                let torn_tail = bytes.len() % xqdb_pager::PAGE_SIZE != 0;
                let mut bad: Vec<String> = Vec::new();
                for i in 0..n {
                    let start = i * xqdb_pager::PAGE_SIZE;
                    let buf: &[u8; xqdb_pager::PAGE_SIZE] =
                        match bytes[start..start + xqdb_pager::PAGE_SIZE].try_into() {
                            Ok(b) => b,
                            Err(_) => break, // unreachable: slice is exact
                        };
                    if let Err(reason) = xqdb_pager::verify_page(buf, i as u64) {
                        // A damaged final page is the torn-write shape;
                        // anything earlier is real corruption.
                        if i + 1 == n {
                            println!(
                                "page file: trailing page damaged ({reason}); \
                                 recovery trims it and replays the WAL suffix"
                            );
                        } else {
                            bad.push(reason);
                        }
                    }
                }
                if torn_tail {
                    println!(
                        "page file: {} trailing byte(s) of a partial page write; \
                         recovery trims them",
                        bytes.len() % xqdb_pager::PAGE_SIZE
                    );
                }
                if bad.is_empty() {
                    println!("page file: {n} page(s) scanned, all CRCs valid");
                } else {
                    failed = true;
                    println!("page file: {n} page(s) scanned, {} corrupt:", bad.len());
                    for reason in &bad {
                        println!("  - {reason}");
                    }
                }
            }
            Err(e) => {
                eprintln!("error: could not read {}: {e}", pages_file.display());
                return 1;
            }
        }
    } else {
        println!("page file: none (no checkpoint has run; recovery replays the WAL only)");
    }
    let catalog = match xqdb_core::recover_catalog(
        p,
        xqdb_runtime::RuntimeConfig::default(),
        &xqdb_obs::Trace::disabled(),
        &Obs::disabled(),
    ) {
        Ok((catalog, report)) => {
            print!("{}", report.render());
            catalog
        }
        Err(e) => {
            report_error(&e);
            println!("verdict: FAILED (unrecoverable)");
            return 1;
        }
    };
    match xqdb_core::verify_derived_state(&catalog) {
        Ok(report) => {
            print!("{}", report.render());
            if !report.is_clean() {
                failed = true;
            }
        }
        Err(e) => {
            report_error(&e);
            failed = true;
        }
    }
    if failed {
        println!("verdict: FAILED");
        1
    } else {
        println!("verdict: OK");
        0
    }
}

/// `xqdb labels PATH TABLE`: recover the data directory (offline, no
/// server needed) and print the table's structural-label streams — one
/// line per synopsis path with its label cardinality. Labels are derived
/// state rebuilt through the ordinary insert path, so a directory whose
/// rows were adopted from a page snapshot (not re-parsed) honestly
/// reports its store as incomplete: the twig join declines such tables.
fn run_labels(dir: &str, table: &str) -> i32 {
    let catalog = match xqdb_core::recover_catalog(
        std::path::Path::new(dir),
        xqdb_runtime::RuntimeConfig::default(),
        &xqdb_obs::Trace::disabled(),
        &Obs::disabled(),
    ) {
        Ok((catalog, _report)) => catalog,
        Err(e) => {
            report_error(&e);
            return 1;
        }
    };
    let Some(t) = catalog.db.table(table) else {
        eprintln!("error: unknown table {table:?}");
        return 2;
    };
    let labels = t.labels();
    println!(
        "table {} — {} row(s), {} labeled, store {}",
        t.name,
        t.len(),
        labels.labeled_rows(),
        if labels.is_complete_for(t.len() as u64) {
            "complete (twig join eligible)"
        } else {
            "incomplete (twig join declines; navigation answers instead)"
        }
    );
    // Label streams are keyed by path hash; render them through the
    // synopsis, which knows every path the labeler has ever seen.
    let mut rendered: std::collections::HashMap<u64, &str> = std::collections::HashMap::new();
    for (path, _rows) in t.synopsis().paths() {
        rendered.insert(xqdb_core::hash_rendered_path(path), path);
    }
    let mut streams: Vec<(String, usize)> = labels
        .streams()
        .map(|(hash, entries)| {
            let name = rendered
                .get(&hash)
                .map(|p| (*p).to_string())
                .unwrap_or_else(|| format!("<path #{hash:016x}>"));
            (name, entries.len())
        })
        .collect();
    streams.sort();
    for (path, n) in &streams {
        println!("  {path}: {n} label(s)");
    }
    println!("-- {} stream(s)", streams.len());
    0
}

/// `xqdb stats PATH TABLE`: recover the data directory (offline, no
/// server needed) and print the table's per-path synopsis statistics —
/// document counts, value-histogram buckets and distinct-value estimates
/// — exactly the inputs the cost-based planner scores index candidates
/// with. Statistics are derived state rebuilt through the ordinary insert
/// path; a store whose rows were adopted from a page snapshot (not
/// re-parsed) honestly reports them incomplete, and the planner falls
/// back to taking the first eligible index for that table.
fn run_stats(dir: &str, table: &str) -> i32 {
    let catalog = match xqdb_core::recover_catalog(
        std::path::Path::new(dir),
        xqdb_runtime::RuntimeConfig::default(),
        &xqdb_obs::Trace::disabled(),
        &Obs::disabled(),
    ) {
        Ok((catalog, _report)) => catalog,
        Err(e) => {
            report_error(&e);
            return 1;
        }
    };
    let Some(t) = catalog.db.table(table) else {
        eprintln!("error: unknown table {table:?}");
        return 2;
    };
    let synopsis = t.synopsis();
    let entries = synopsis.stats_entries();
    println!(
        "table {} — {} row(s), {} path(s), statistics {}",
        t.name,
        t.len(),
        entries.len(),
        if synopsis.stats_complete() {
            "complete (cost-based planning eligible)"
        } else {
            "incomplete (planner takes the first eligible index instead)"
        }
    );
    for (path, docs, stats) in &entries {
        match stats {
            None => println!("  {path}: {docs} doc(s), no value statistics"),
            Some(s) => {
                println!(
                    "  {path}: {docs} doc(s), {} value(s) ({} numeric), ~{:.0} distinct",
                    s.total(),
                    s.numeric(),
                    s.distinct_estimate()
                );
                let mut buckets: Vec<(i16, u64)> = s.buckets().collect();
                buckets.sort_unstable();
                for (b, n) in buckets {
                    let (lo, hi) = xqdb_core::bucket_bounds(b);
                    println!("      bucket {b} [{lo}, {hi}): {n} value(s)");
                }
            }
        }
    }
    println!("-- {} path(s)", entries.len());
    0
}

/// Graceful-shutdown signals, std-only: a raw `signal(2)` registration
/// that flips an atomic the serve loop polls. `SIGINT` is included so an
/// interactive ^C drains the same way `SIGTERM` does.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_term as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn requested() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn requested() -> bool {
        false
    }
}

/// Server-mode flags.
struct ServeOpts {
    addr: String,
    cfg: xqdb_server::ServerConfig,
    threads: Option<usize>,
    data_dir: Option<String>,
    fsync: Option<xqdb_core::FsyncMode>,
    metrics_json: Option<String>,
    buffer_pages: Option<usize>,
}

impl ServeOpts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = ServeOpts {
            addr: "127.0.0.1:0".to_string(),
            cfg: xqdb_server::ServerConfig::default(),
            threads: None,
            data_dir: None,
            fsync: None,
            metrics_json: None,
            buffer_pages: None,
        };
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut text = |flag: &str| -> Result<String, String> {
                it.next().cloned().ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--addr" => out.addr = text("--addr")?,
                "--max-sessions" => {
                    out.cfg.max_sessions = parse_num(&text("--max-sessions")?, "--max-sessions")?
                }
                "--session-budget" => {
                    out.cfg.session_budget =
                        Some(parse_num(&text("--session-budget")?, "--session-budget")?)
                }
                "--queue-depth" => {
                    out.cfg.queue_depth = parse_num(&text("--queue-depth")?, "--queue-depth")?
                }
                "--queue-timeout-ms" => {
                    out.cfg.queue_timeout = std::time::Duration::from_millis(parse_num(
                        &text("--queue-timeout-ms")?,
                        "--queue-timeout-ms",
                    )?)
                }
                "--request-timeout-ms" => {
                    out.cfg.request_timeout = Some(std::time::Duration::from_millis(
                        parse_num(&text("--request-timeout-ms")?, "--request-timeout-ms")?,
                    ))
                }
                "--threads" => out.threads = Some(parse_num(&text("--threads")?, "--threads")?),
                "--buffer-pages" => {
                    out.buffer_pages =
                        Some(parse_num(&text("--buffer-pages")?, "--buffer-pages")?)
                }
                "--data-dir" => out.data_dir = Some(text("--data-dir")?),
                "--fsync" => {
                    let mode = text("--fsync")?;
                    out.fsync = Some(xqdb_core::FsyncMode::parse(&mode).ok_or_else(|| {
                        format!("--fsync must be always, batch or off (got {mode:?})")
                    })?)
                }
                "--metrics-json" => out.metrics_json = Some(text("--metrics-json")?),
                "--help" | "-h" => {
                    return Err("usage: xqdb serve [--addr HOST:PORT] [--max-sessions N] [--session-budget N] [--queue-depth N] [--queue-timeout-ms N] [--request-timeout-ms N] [--threads N] [--buffer-pages N] [--data-dir PATH] [--fsync always|batch|off] [--metrics-json PATH]"
                        .to_string())
                }
                other => return Err(format!("unknown serve flag {other}; try --help")),
            }
        }
        Ok(out)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse::<T>().map_err(|_| format!("{flag} requires a non-negative integer"))
}

/// `xqdb serve`: run the TCP front end until SIGTERM/SIGINT, then drain.
fn run_serve(args: &[String]) -> i32 {
    let opts = match ServeOpts::parse(args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.starts_with("usage:") {
                println!("{msg}");
                return 0;
            }
            eprintln!("{msg}");
            return 2;
        }
    };
    // Same spelling-of-the-env-knob rule as the shell path: set before the
    // session (and its pools) exist, while still single-threaded.
    if let Some(n) = opts.buffer_pages {
        std::env::set_var("XQDB_BUFFER_PAGES", n.to_string());
    }
    let mut session = match &opts.data_dir {
        None => SqlSession::new(),
        Some(dir) => {
            let config = xqdb_core::WalConfig {
                fsync: opts.fsync.unwrap_or_default(),
                ..Default::default()
            };
            match SqlSession::open_durable(std::path::Path::new(dir), config) {
                Ok((session, report)) => {
                    print!("{}", report.render());
                    session
                }
                Err(e) => {
                    eprintln!("error: could not open data directory {dir}: {e}");
                    return 2;
                }
            }
        }
    };
    session.catalog.runtime =
        xqdb_runtime::RuntimeConfig::with_threads(opts.threads.unwrap_or(1));
    let obs = Obs::new(ObsConfig { metrics: true, tracing: false });
    session.set_obs(obs.clone());
    obs.set_gauge(
        xqdb_obs::Gauge::BufferPoolPages,
        session.catalog.db.pager().capacity() as u64,
    );
    sig::install();
    let handle = match xqdb_server::Server::start(&opts.addr, opts.cfg.clone(), session) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: could not bind {}: {e}", opts.addr);
            return 2;
        }
    };
    // The harness (and scripts) read this line to learn the bound port.
    println!("listening on {}", handle.local_addr());
    io::stdout().flush().ok();
    while !sig::requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("draining: accepting no new connections, finishing in-flight requests");
    let report = handle.shutdown();
    println!(
        "drained: {} connection(s) served, {} handler panic(s)",
        report.connections_served, report.connection_panics
    );
    match (&report.checkpoint_seq, &report.checkpoint_error) {
        (Some(seq), _) => println!("checkpoint written: manifest covers sequence {seq}"),
        (None, Some(e)) => eprintln!("warning: shutdown checkpoint failed: {e}"),
        (None, None) => {}
    }
    if let Some(path) = &opts.metrics_json {
        if let Some(snap) = obs.metrics_snapshot() {
            if let Err(e) = std::fs::write(path, snap.to_json()) {
                eprintln!("warning: could not write metrics to {path}: {e}");
            }
        }
    }
    if report.accept_panicked || report.connection_panics > 0 {
        return 1;
    }
    0
}

/// Rewrite the metrics-JSON snapshot, if the session asked for one.
fn write_metrics(obs: &Obs, limits: &CliLimits) {
    let (Some(path), Some(snap)) = (&limits.metrics_json, obs.metrics_snapshot()) else {
        return;
    };
    if let Err(e) = std::fs::write(path, snap.to_json()) {
        eprintln!("warning: could not write metrics to {path}: {e}");
    }
}

/// Render an engine error with a friendly hint for the governed classes.
fn report_error(e: &XdmError) {
    match e.code {
        ErrorCode::ResourceExhausted => {
            println!("error: {e}");
            println!("hint: the query hit a session resource limit; raise --timeout-ms/--max-steps or simplify the query");
        }
        ErrorCode::Cancelled => {
            println!("error: {e} (query was cancelled)");
        }
        ErrorCode::StorageFault => {
            println!("error: {e}");
            println!("hint: a document could not be fetched from storage; the result would be incomplete, so none was returned");
        }
        ErrorCode::ParseLimit => {
            println!("error: {e}");
            println!("hint: the document exceeds a session parse limit; see --max-doc-bytes");
        }
        _ => println!("error: {e}"),
    }
}

/// Print post-execution warnings recorded in the stats.
fn report_degradation(stats: &xqdb_core::ExecStats) {
    if !stats.degraded_sources.is_empty() {
        println!(
            "warning: {} index fault(s); fell back to full collection scan on: {}",
            stats.index_faults,
            stats.degraded_sources.join(", ")
        );
    }
}

/// Print the recorded span tree, when tracing was on for the statement.
fn report_trace(trace: &xqdb_obs::Trace) {
    if trace.enabled() {
        print!("{}", trace.render());
    }
}

fn run_statement(session: &mut SqlSession, stmt: &str, limits: &CliLimits) {
    let lower = stmt.to_ascii_lowercase();
    if let Some(rest) = lower
        .strip_prefix("explain analyze xquery")
        .map(|_| stmt["explain analyze xquery".len()..].trim())
    {
        let opts = xqdb_core::ExecOptions {
            limits: limits.query_limits(),
            threads: session.catalog.runtime.effective_threads(),
            obs: session.obs.clone(),
            prefilter: !limits.no_prefilter,
            twig: !limits.no_twig,
            cost: !limits.no_cost,
        };
        match xqdb_core::explain_analyze_xquery(&session.catalog, rest, &opts) {
            Ok((report, out)) => {
                print!("{report}");
                report_degradation(&out.stats);
            }
            Err(e) => report_error(&e),
        }
        return;
    }
    if let Some(rest) = lower
        .strip_prefix("explain xquery")
        .map(|_| stmt["explain xquery".len()..].trim())
    {
        match xqdb_xquery::parse_query(rest) {
            Ok(q) => {
                let plan = xqdb_core::plan_query(&session.catalog, q, &AnalysisEnv::new());
                print!(
                    "{}",
                    xqdb_core::explain_with_threads(
                        &plan,
                        session.catalog.runtime.effective_threads()
                    )
                );
            }
            Err(e) => println!("error: {e}"),
        }
        return;
    }
    if let Some(rest) = lower.strip_prefix("xquery").map(|_| stmt["xquery".len()..].trim()) {
        let opts = xqdb_core::ExecOptions {
            limits: limits.query_limits(),
            threads: session.catalog.runtime.effective_threads(),
            obs: session.obs.clone(),
            prefilter: !limits.no_prefilter,
            twig: !limits.no_twig,
            cost: !limits.no_cost,
        };
        match xqdb_core::run_xquery_with_options(&session.catalog, rest, &opts) {
            Ok(out) => {
                for (i, item) in out.sequence.iter().enumerate() {
                    println!(
                        "row {}: {}",
                        i + 1,
                        xqdb_xmlparse::serialize_sequence(std::slice::from_ref(item))
                    );
                }
                let evaluated: usize = out.stats.docs_evaluated.values().sum();
                let total: usize = out.stats.docs_total.values().sum();
                println!(
                    "-- {} item(s); {evaluated}/{total} documents evaluated, {} index entries{}",
                    out.sequence.len(),
                    out.stats.index_entries_scanned,
                    if out.stats.parallel_workers > 1 {
                        format!(
                            "; {} workers x {} shards",
                            out.stats.parallel_workers, out.stats.parallel_shards
                        )
                    } else {
                        String::new()
                    }
                );
                report_degradation(&out.stats);
                report_trace(&out.trace);
            }
            Err(e) => report_error(&e),
        }
        return;
    }
    match session.execute(stmt) {
        Ok(result) => {
            print!("{}", result.render());
            if !result.rows.is_empty() {
                println!("-- {} row(s)", result.rows.len());
            }
            report_degradation(&result.stats);
            report_trace(&result.trace);
        }
        Err(e) => report_error(&e),
    }
}

/// Returns false to exit the shell.
fn dot_command(session: &mut SqlSession, cmd: &str) -> bool {
    match cmd {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                "statements end with ';'\n\
                 SQL:          CREATE TABLE/INDEX, INSERT, SELECT (XMLQUERY/XMLEXISTS/XMLTABLE/XMLCAST), EXPLAIN [ANALYZE] SELECT, VALUES\n\
                 XQuery:       xquery <expr>;        explain xquery <expr>;        explain analyze xquery <expr>;\n\
                 shell:        .tables  .indexes  .checkpoint  .help  .quit\n\
                 flags:        --timeout-ms N  --max-steps N  --max-doc-bytes N  --threads N  --buffer-pages N  --no-prefilter  --no-twig  --no-cost  --trace  --metrics-json PATH\n\
                 prefilter:    structural pre-filter is on by default; disable with --no-prefilter or XQDB_PREFILTER=off\n\
                 twig:         holistic twig join is on by default; disable with --no-twig or XQDB_TWIG=off; xqdb labels PATH TABLE dumps label streams\n\
                 cost:         cost-based index choice is on by default; disable with --no-cost or XQDB_COST=off; xqdb stats PATH TABLE dumps synopsis statistics\n\
                 storage:      --buffer-pages N (or XQDB_BUFFER_PAGES) caps every buffer pool; xqdb pages PATH prints page-file stats\n\
                 durability:   --data-dir PATH  --fsync always|batch|off  (xqdb recover PATH replays and reports)"
            );
        }
        ".checkpoint" => match session.checkpoint() {
            Ok(Some(covers)) => println!("checkpoint written: manifest covers sequence {covers}"),
            Ok(None) => println!("session is in-memory; start with --data-dir to checkpoint"),
            Err(e) => report_error(&e),
        },
        ".tables" => {
            for name in session.catalog.db.table_names() {
                // `table_names` and `table` read the same map; a miss here
                // would be a storage bug, and listing should not abort on it.
                let Some(t) = session.catalog.db.table(name) else { continue };
                let cols: Vec<String> =
                    t.columns.iter().map(|c| format!("{} {}", c.name, c.ty)).collect();
                println!("{name} ({}) — {} rows", cols.join(", "), t.len());
            }
        }
        ".indexes" => {
            for idx in session.catalog.all_indexes() {
                println!(
                    "{} ON {}({}) USING XMLPATTERN '{}' AS {} — {} entries ({} skipped)",
                    idx.name, idx.table, idx.column, idx.pattern, idx.ty,
                    idx.len(), idx.skipped_nodes
                );
            }
        }
        other => println!("unknown command {other}; try .help"),
    }
    true
}
