//! Admission control: the global resource budget split into per-request
//! leases.
//!
//! The server is willing to run at most `max_sessions` statements at once
//! (each under its own per-request [`xqdb_xdm::Limits`], so the worst-case
//! concurrent work is `max_sessions × session_budget`). Requests beyond
//! capacity wait in a bounded queue with a deadline; a full queue or an
//! expired deadline sheds the request with a typed [`Shed`] — the caller
//! turns that into a `ServerBusy{retry_after_ms}` response and the
//! connection stays open. Shedding is load control, not failure: the
//! client is told exactly when to come back.
//!
//! The implementation is a counting semaphore over `Mutex` + `Condvar`
//! (std-only, no async runtime): a [`Lease`] releases its slot and wakes
//! one waiter on drop, so a panicking handler can never strand capacity.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a request was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// All execution slots busy and the wait queue at `queue_depth`.
    QueueFull,
    /// Queued, but no slot freed before the queue deadline.
    QueueTimeout,
}

/// A typed shed decision, carrying the client back-off hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// Why the request was not admitted.
    pub reason: ShedReason,
    /// Hint for the client's retry delay in milliseconds.
    pub retry_after_ms: u32,
}

#[derive(Debug, Default)]
struct State {
    /// Leases currently held.
    active: usize,
    /// Requests currently blocked in [`Admission::admit`].
    waiting: usize,
}

/// The admission gate. Shared by every connection handler of a server.
#[derive(Debug)]
pub struct Admission {
    max_sessions: usize,
    queue_depth: usize,
    queue_timeout: Duration,
    retry_after_ms: u32,
    state: Mutex<State>,
    freed: Condvar,
}

impl Admission {
    /// A gate admitting `max_sessions` concurrent requests, queueing up to
    /// `queue_depth` more for at most `queue_timeout` each.
    pub fn new(
        max_sessions: usize,
        queue_depth: usize,
        queue_timeout: Duration,
        retry_after_ms: u32,
    ) -> Self {
        Admission {
            max_sessions: max_sessions.max(1),
            queue_depth,
            queue_timeout,
            retry_after_ms,
            state: Mutex::new(State::default()),
            freed: Condvar::new(),
        }
    }

    /// Try to acquire an execution lease, queueing up to the deadline.
    pub fn admit(&self) -> Result<Lease<'_>, Shed> {
        let shed = |reason| Shed { reason, retry_after_ms: self.retry_after_ms };
        // A poisoned lock means a handler panicked while holding it; shed
        // rather than propagate the panic into every future request.
        let Ok(mut st) = self.state.lock() else {
            return Err(shed(ShedReason::QueueFull));
        };
        if st.active < self.max_sessions {
            st.active += 1;
            return Ok(Lease { gate: self });
        }
        if st.waiting >= self.queue_depth {
            return Err(shed(ShedReason::QueueFull));
        }
        st.waiting += 1;
        let deadline = Instant::now() + self.queue_timeout;
        loop {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                st.waiting -= 1;
                return Err(shed(ShedReason::QueueTimeout));
            };
            let Ok((guard, _)) = self.freed.wait_timeout(st, remaining) else {
                return Err(shed(ShedReason::QueueFull));
            };
            st = guard;
            if st.active < self.max_sessions {
                st.waiting -= 1;
                st.active += 1;
                return Ok(Lease { gate: self });
            }
            if Instant::now() >= deadline {
                st.waiting -= 1;
                return Err(shed(ShedReason::QueueTimeout));
            }
        }
    }

    /// Leases currently held (for tests and the drain report).
    pub fn active(&self) -> usize {
        self.state.lock().map(|s| s.active).unwrap_or(0)
    }

    /// Requests currently queued.
    pub fn waiting(&self) -> usize {
        self.state.lock().map(|s| s.waiting).unwrap_or(0)
    }

    fn release(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.active = st.active.saturating_sub(1);
        }
        self.freed.notify_one();
    }
}

/// One admitted request's slot. Dropping it (normally or during a panic
/// unwind) releases the slot and wakes one queued waiter.
#[derive(Debug)]
pub struct Lease<'a> {
    gate: &'a Admission,
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(max: usize, depth: usize, timeout_ms: u64) -> Admission {
        Admission::new(max, depth, Duration::from_millis(timeout_ms), 50)
    }

    #[test]
    fn admits_up_to_capacity_then_sheds_on_full_queue() {
        let g = gate(2, 0, 10);
        let a = g.admit().expect("slot 1");
        let _b = g.admit().expect("slot 2");
        let shed = g.admit().expect_err("queue depth 0 sheds immediately");
        assert_eq!(shed.reason, ShedReason::QueueFull);
        assert_eq!(shed.retry_after_ms, 50);
        drop(a);
        assert!(g.admit().is_ok(), "released slot is reusable");
    }

    #[test]
    fn queue_timeout_sheds_with_deadline_reason() {
        let g = gate(1, 4, 30);
        let _held = g.admit().expect("slot");
        let t0 = Instant::now();
        let shed = g.admit().expect_err("no slot ever frees");
        assert_eq!(shed.reason, ShedReason::QueueTimeout);
        assert!(t0.elapsed() >= Duration::from_millis(25), "waited for the deadline");
        assert_eq!(g.waiting(), 0, "the waiter deregistered itself");
    }

    #[test]
    fn lease_drop_releases_even_across_threads() {
        use std::sync::Arc;
        let g = Arc::new(gate(1, 8, 2_000));
        let held = g.admit().expect("slot");
        let g2 = Arc::clone(&g);
        let waiter = xqdb_runtime::spawn_service("admit-test", move || g2.admit().is_ok())
            .expect("spawn");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(g.waiting(), 1);
        drop(held);
        assert_eq!(waiter.join(), Some(true), "queued waiter got the freed slot");
        assert_eq!(g.active(), 0, "lease dropped inside the thread released too");
    }
}
