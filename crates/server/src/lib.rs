//! `xqdb-server`: a concurrent multi-session TCP front end over one shared
//! durable catalog.
//!
//! Architecture (DESIGN.md §12 has the full picture):
//!
//! * **Framing** — every request/response travels in one CRC-framed
//!   message ([`protocol`]), validated before it is interpreted.
//! * **Threading** — one accept loop plus one handler per connection, all
//!   spawned through [`xqdb_runtime::spawn_service`] (thread creation
//!   stays in the runtime crate).
//! * **Sessions** — every connection is a session over *one* shared
//!   [`SqlSession`] behind an `RwLock`: read statements (the SELECT family
//!   and all XQuery forms) run concurrently under the read lock against
//!   the catalog state frozen for the statement; writes (`CREATE`,
//!   `INSERT`) take the write lock and serialize through the WAL hook, so
//!   every admitted statement sees a consistent epoch.
//! * **Admission** — the [`admission::Admission`] gate turns the resource
//!   governor into a global budget split into per-request leases; excess
//!   requests queue with a deadline and are shed with a typed
//!   `Busy{retry_after_ms}` response, never a dropped connection.
//! * **Degradation** — per-request `Limits` (deadline + step cap) cancel
//!   runaway statements via the budget's cancellation checkpoints; slow
//!   clients hit per-frame read deadlines; stalled readers hit write
//!   deadlines.
//! * **Drain** — [`ServerHandle::shutdown`] stops accepting, lets
//!   in-flight requests finish, joins every handler, checkpoints a
//!   durable session through the WAL path, and reports what happened.

pub mod admission;
pub mod chaos;
pub mod protocol;

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use xqdb_core::sqlxml::SqlSession;
use xqdb_core::ExecOptions;
use xqdb_obs::{Counter, Gauge, Obs};
use xqdb_runtime::{spawn_service, ServiceThread};
use xqdb_xdm::{ErrorCode, Limits, XdmError};

use admission::Admission;
use protocol::{FrameReadError, ProtocolReason, Request, Response};

/// Server tuning knobs. The defaults suit tests and small deployments;
/// `xqdb serve` exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Statements allowed to execute concurrently (admission leases).
    pub max_sessions: usize,
    /// Evaluation-step cap per admitted statement (`None` = unlimited).
    /// Together with `max_sessions` this bounds total concurrent work.
    pub session_budget: Option<u64>,
    /// Requests allowed to wait for a lease before shedding starts.
    pub queue_depth: usize,
    /// How long a queued request may wait before it is shed.
    pub queue_timeout: Duration,
    /// Wall-clock deadline per admitted statement (`None` = unlimited).
    pub request_timeout: Option<Duration>,
    /// Whole-frame read deadline once a request's first byte arrives
    /// (slow-loris defense).
    pub frame_read_timeout: Duration,
    /// Deadline for writing a response to a stalled client.
    pub write_timeout: Duration,
    /// Back-off hint carried by `Busy` responses, in milliseconds.
    pub retry_after_ms: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 8,
            session_budget: None,
            queue_depth: 16,
            queue_timeout: Duration::from_millis(500),
            request_timeout: None,
            frame_read_timeout: Duration::from_millis(2_000),
            write_timeout: Duration::from_millis(5_000),
            retry_after_ms: 50,
        }
    }
}

/// What a drain observed; returned by [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct DrainReport {
    /// Connections accepted over the server's lifetime.
    pub connections_served: u64,
    /// Handler threads that panicked (must be 0 — the chaos matrix
    /// asserts it).
    pub connection_panics: usize,
    /// Whether the accept loop itself panicked.
    pub accept_panicked: bool,
    /// WAL sequence covered by the shutdown checkpoint, for durable
    /// sessions that checkpointed cleanly.
    pub checkpoint_seq: Option<u64>,
    /// Error text if the shutdown checkpoint failed.
    pub checkpoint_error: Option<String>,
}

struct Shared {
    cfg: ServerConfig,
    session: RwLock<SqlSession>,
    admission: Admission,
    obs: Obs,
    stop: AtomicBool,
    open_connections: AtomicU64,
    connections_served: AtomicU64,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads running detached;
/// call `shutdown` for a graceful drain.
pub struct Server;

/// Handle to a started server: its bound address plus drain control.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: ServiceThread<Vec<ServiceThread<()>>>,
}

impl Server {
    /// Bind `addr` (use port 0 to let the OS pick) and serve `session`.
    /// The session's [`Obs`] handle is shared with the server's own
    /// admission metrics, so one registry tells the whole story.
    pub fn start(
        addr: &str,
        cfg: ServerConfig,
        session: SqlSession,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let obs = session.obs.clone();
        let admission = Admission::new(
            cfg.max_sessions,
            cfg.queue_depth,
            cfg.queue_timeout,
            cfg.retry_after_ms,
        );
        let shared = Arc::new(Shared {
            cfg,
            session: RwLock::new(session),
            admission,
            obs,
            stop: AtomicBool::new(false),
            open_connections: AtomicU64::new(0),
            connections_served: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = spawn_service("xqdb-accept", move || {
            accept_loop(&accept_shared, &listener)
        })?;
        Ok(ServerHandle { local_addr, shared, accept })
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently open (accepted and not yet closed).
    pub fn open_connections(&self) -> u64 {
        self.shared.open_connections.load(Ordering::SeqCst)
    }

    /// Graceful drain: stop accepting, let in-flight requests finish,
    /// join every handler thread, checkpoint a durable session, report.
    pub fn shutdown(self) -> DrainReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        let mut connection_panics = 0usize;
        let accept_panicked = match self.accept.join() {
            Some(handlers) => {
                for h in handlers {
                    if h.join().is_none() {
                        connection_panics += 1;
                    }
                }
                false
            }
            None => true,
        };
        let (checkpoint_seq, checkpoint_error) = match self.shared.session.write() {
            Ok(mut session) => match session.checkpoint() {
                Ok(seq) => (seq, None),
                Err(e) => (None, Some(e.to_string())),
            },
            Err(_) => (None, Some("session lock poisoned".to_string())),
        };
        DrainReport {
            connections_served: self.shared.connections_served.load(Ordering::SeqCst),
            connection_panics,
            accept_panicked,
            checkpoint_seq,
            checkpoint_error,
        }
    }
}

/// Accept until the stop flag flips; returns every handler thread so the
/// drain can join them (counting panics).
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) -> Vec<ServiceThread<()>> {
    let mut handlers: Vec<ServiceThread<()>> = Vec::new();
    let mut joined: Vec<ServiceThread<()>> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(shared);
                let id = shared.connections_served.fetch_add(1, Ordering::SeqCst);
                match spawn_service(&format!("xqdb-conn-{id}"), move || {
                    handle_connection(&conn_shared, stream)
                }) {
                    Ok(handle) => handlers.push(handle),
                    // The OS refused a thread (burst beyond its limits):
                    // the TcpStream drops here, which closes the
                    // connection — the client sees a clean close and
                    // retries; the server stays up.
                    Err(_) => shared.obs.incr(Counter::SessionsShed),
                }
                // Reap finished handlers so a long-lived server does not
                // accumulate one JoinHandle per historical connection.
                let mut i = 0;
                while i < handlers.len() {
                    if handlers[i].is_finished() {
                        joined.push(handlers.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    handlers.append(&mut joined);
    handlers
}

/// Decrements the connection accounting even if the handler unwinds.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.open_connections.fetch_sub(1, Ordering::SeqCst);
        self.0.obs.dec_gauge(Gauge::ActiveConnections);
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.open_connections.fetch_add(1, Ordering::SeqCst);
    shared.obs.inc_gauge(Gauge::ActiveConnections);
    let _guard = ConnGuard(shared);
    let idle_poll = Duration::from_millis(20);
    let stop = || shared.stop.load(Ordering::SeqCst);
    loop {
        let frame = protocol::read_frame(
            &mut stream,
            idle_poll,
            shared.cfg.frame_read_timeout,
            &stop,
        );
        let response = match frame {
            Ok(payload) => match Request::decode(&payload) {
                Ok(Request::Ping) => Response::Ok { body: "pong".into() },
                Ok(Request::Statement(text)) => serve_statement(shared, &text),
                Err(e) => {
                    // Typed reply, then close: the stream may be
                    // desynchronized after a malformed payload.
                    let resp = Response::Protocol {
                        reason: ProtocolReason::Malformed,
                        message: e.to_string(),
                    };
                    let _ = protocol::write_frame(
                        &mut stream,
                        &resp.encode(),
                        shared.cfg.write_timeout,
                    );
                    return;
                }
            },
            // Clean end of session, peer vanished mid-frame, or drain.
            Err(FrameReadError::Closed)
            | Err(FrameReadError::Truncated)
            | Err(FrameReadError::Shutdown)
            | Err(FrameReadError::Io(_)) => return,
            Err(FrameReadError::Deadline) => {
                let resp = Response::Protocol {
                    reason: ProtocolReason::ReadTimeout,
                    message: format!(
                        "frame not completed within {:?}",
                        shared.cfg.frame_read_timeout
                    ),
                };
                let _ = protocol::write_frame(
                    &mut stream,
                    &resp.encode(),
                    shared.cfg.write_timeout,
                );
                return;
            }
            Err(FrameReadError::Oversized(claimed)) => {
                let resp = Response::Protocol {
                    reason: ProtocolReason::Oversized,
                    message: format!(
                        "frame of {claimed} bytes exceeds the {} byte maximum",
                        protocol::MAX_FRAME
                    ),
                };
                let _ = protocol::write_frame(
                    &mut stream,
                    &resp.encode(),
                    shared.cfg.write_timeout,
                );
                return;
            }
            Err(FrameReadError::CrcMismatch) => {
                let resp = Response::Protocol {
                    reason: ProtocolReason::CrcMismatch,
                    message: "frame payload failed its CRC check".into(),
                };
                let _ = protocol::write_frame(
                    &mut stream,
                    &resp.encode(),
                    shared.cfg.write_timeout,
                );
                return;
            }
        };
        if protocol::write_frame(&mut stream, &response.encode(), shared.cfg.write_timeout)
            .is_err()
        {
            return;
        }
    }
}

/// Admission, execution, and typed error mapping for one statement.
fn serve_statement(shared: &Arc<Shared>, text: &str) -> Response {
    let lease = match shared.admission.admit() {
        Ok(lease) => lease,
        Err(shed) => {
            shared.obs.incr(Counter::SessionsShed);
            return Response::Busy { retry_after_ms: shed.retry_after_ms };
        }
    };
    shared.obs.incr(Counter::SessionsAdmitted);
    let limits = request_limits(&shared.cfg);
    let started = Instant::now();
    let result = if is_read_statement(text) {
        match shared.session.read() {
            Ok(session) => run_read_statement(&session, text, &limits),
            Err(_) => Err(XdmError::internal("session lock poisoned")),
        }
    } else {
        match shared.session.write() {
            Ok(mut session) => run_write_statement(&mut session, text, &limits),
            Err(_) => Err(XdmError::internal("session lock poisoned")),
        }
    };
    drop(lease);
    match result {
        Ok(body) => Response::Ok { body },
        Err(e) => {
            let timed_out = e.code == ErrorCode::Cancelled
                || (e.code == ErrorCode::ResourceExhausted
                    && shared
                        .cfg
                        .request_timeout
                        .is_some_and(|t| started.elapsed() >= t));
            if timed_out {
                shared.obs.incr(Counter::RequestsTimedOut);
            }
            Response::Error { code: e.code.to_string(), message: e.message }
        }
    }
}

/// Per-request limits derived from the server configuration.
pub fn request_limits(cfg: &ServerConfig) -> Limits {
    let mut l = Limits::unlimited();
    if let Some(steps) = cfg.session_budget {
        l = l.with_max_steps(steps);
    }
    if let Some(t) = cfg.request_timeout {
        l = l.with_timeout(t);
    }
    l
}

/// Statement classifier shared by the lock router and the test baselines:
/// the XQuery forms and the SQL SELECT family are reads; `CREATE`,
/// `INSERT`, `DELETE`, `UPDATE` — and `EXPLAIN ANALYZE` over DML, which
/// executes the statement it reports on — are writes and serialize under
/// the session's exclusive write lock.
pub fn is_read_statement(text: &str) -> bool {
    let lower = text.trim_start().to_ascii_lowercase();
    lower.starts_with("xquery") || !SqlSession::is_write_statement(text)
}

fn exec_options(session: &SqlSession, limits: &Limits) -> ExecOptions {
    ExecOptions {
        limits: limits.clone(),
        threads: session.catalog.runtime.effective_threads(),
        obs: session.obs.clone(),
        prefilter: session.prefilter,
        twig: session.twig,
        cost: session.cost,
    }
}

/// Run a read statement and render its result exactly as the wire protocol
/// ships it. Public so tests and the bench harness can compute the
/// single-session baseline through the *same* renderer the server uses —
/// byte-identity comparisons compare engine results, not formatting.
pub fn run_read_statement(
    session: &SqlSession,
    text: &str,
    limits: &Limits,
) -> Result<String, XdmError> {
    let stmt = text.trim();
    let lower = stmt.to_ascii_lowercase();
    if lower.starts_with("explain analyze xquery") {
        let rest = stmt["explain analyze xquery".len()..].trim();
        let opts = exec_options(session, limits);
        let (report, _out) = xqdb_core::explain_analyze_xquery(&session.catalog, rest, &opts)?;
        return Ok(report);
    }
    if lower.starts_with("explain xquery") {
        let rest = stmt["explain xquery".len()..].trim();
        let q = xqdb_xquery::parse_query(rest)
            .map_err(|e| XdmError::new(ErrorCode::XPST0003, e.to_string()))?;
        let plan = xqdb_core::plan_query(&session.catalog, q, &xqdb_core::AnalysisEnv::new());
        return Ok(xqdb_core::explain_with_threads(
            &plan,
            session.catalog.runtime.effective_threads(),
        ));
    }
    if lower.starts_with("xquery") {
        let rest = stmt["xquery".len()..].trim();
        let opts = exec_options(session, limits);
        let out = xqdb_core::run_xquery_with_options(&session.catalog, rest, &opts)?;
        let mut body = String::new();
        for (i, item) in out.sequence.iter().enumerate() {
            body.push_str(&format!(
                "row {}: {}\n",
                i + 1,
                xqdb_xmlparse::serialize_sequence(std::slice::from_ref(item))
            ));
        }
        body.push_str(&format!("-- {} item(s)\n", out.sequence.len()));
        return Ok(body);
    }
    let result = session.execute_read(stmt, limits)?;
    Ok(render_sql_result(&result))
}

/// Run a write statement (exclusive access) and render its confirmation.
pub fn run_write_statement(
    session: &mut SqlSession,
    text: &str,
    limits: &Limits,
) -> Result<String, XdmError> {
    let result = session.execute_with_limits(text.trim(), limits)?;
    Ok(render_sql_result(&result))
}

/// Route one statement through the same read/write split the server uses.
/// This is the single-session baseline the chaos matrix compares against.
pub fn run_statement(
    session: &mut SqlSession,
    text: &str,
    limits: &Limits,
) -> Result<String, XdmError> {
    if is_read_statement(text) {
        run_read_statement(session, text, limits)
    } else {
        run_write_statement(session, text, limits)
    }
}

fn render_sql_result(result: &xqdb_core::SqlResult) -> String {
    let mut body = result.render();
    if !result.rows.is_empty() {
        body.push_str(&format!("-- {} row(s)\n", result.rows.len()));
    }
    body
}
