//! Malformed-frame fuzz suite: seeded garbage, truncation, bit flips and
//! oversized length claims must all surface as *typed* errors — decode
//! failures or frame-read failures — and never as a panic, a hang, or an
//! unbounded allocation. Runs both at the payload layer (pure decode) and
//! the stream layer (a real loopback socket through `read_frame`).

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use rand::{rngs::StdRng, RngExt, SeedableRng};
use xqdb_server::protocol::{
    encode_frame, read_frame, FrameReadError, Request, Response, FRAME_HEADER, MAX_FRAME,
};
use xqdb_wal::crc32;

fn never_stop() -> bool {
    false
}

/// A loopback pair: the returned writer feeds the returned reader.
fn socket_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("addr");
    let writer = TcpStream::connect(addr).expect("connect");
    let (reader, _) = listener.accept().expect("accept");
    (writer, reader)
}

fn read_with_deadline(reader: &mut TcpStream) -> Result<Vec<u8>, FrameReadError> {
    read_frame(reader, Duration::from_millis(20), Duration::from_millis(500), &never_stop)
}

#[test]
fn seeded_garbage_decodes_to_typed_errors_only() {
    let mut rng = StdRng::seed_from_u64(0xF4A2);
    for _ in 0..2_000 {
        let len = rng.random_range(0usize..96);
        let payload: Vec<u8> = (0..len).map(|_| rng.random_range(0u8..=255)).collect();
        // Either a typed error or a valid message that reencodes exactly —
        // never a panic. (A random payload can be valid: version 1, kind 0.)
        if let Ok(req) = Request::decode(&payload) {
            assert_eq!(req.encode(), payload, "accepted request must reencode verbatim");
        }
        if let Ok(resp) = Response::decode(&payload) {
            assert_eq!(resp.encode(), payload, "accepted response must reencode verbatim");
        }
    }
}

#[test]
fn every_truncation_of_every_message_is_rejected() {
    let messages: Vec<Vec<u8>> = vec![
        Request::Ping.encode(),
        Request::Statement("SELECT ordid FROM orders".into()).encode(),
        Request::Statement("xquery db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem".into())
            .encode(),
        Response::Ok { body: "row 1: <a/>\n-- 1 item(s)\n".into() }.encode(),
        Response::Error { code: "xqdb:RESOURCE".into(), message: "deadline".into() }.encode(),
        Response::Busy { retry_after_ms: 50 }.encode(),
    ];
    for full in messages {
        for cut in 0..full.len() {
            assert!(
                Request::decode(&full[..cut]).is_err() || Response::decode(&full[..cut]).is_err(),
                "a strict prefix ({cut} of {} bytes) must not decode as both kinds",
                full.len()
            );
            // Neither decode may panic; reaching here proves both returned.
            let _ = Request::decode(&full[..cut]);
            let _ = Response::decode(&full[..cut]);
        }
    }
}

#[test]
fn single_bit_flips_never_panic_and_crc_catches_frame_corruption() {
    let payload = Request::Statement("SELECT ordid FROM orders WHERE ordid > 1".into()).encode();
    for byte in 0..payload.len() {
        for bit in 0..8 {
            let mut bad = payload.clone();
            bad[byte] ^= 1 << bit;
            let _ = Request::decode(&bad); // typed result either way, no panic
            // CRC-32 detects every single-bit error, so a corrupted frame
            // can never pass the header check.
            assert_ne!(
                crc32(&bad),
                crc32(&payload),
                "crc must differ after flipping bit {bit} of byte {byte}"
            );
        }
    }
}

#[test]
fn stream_bit_flip_is_a_typed_crc_mismatch() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..32 {
        let (mut writer, mut reader) = socket_pair();
        let payload = Request::Statement("xquery 1 + 1".into()).encode();
        let mut frame = encode_frame(&payload);
        let byte = rng.random_range(FRAME_HEADER..frame.len());
        let bit = rng.random_range(0u32..8);
        frame[byte] ^= 1 << bit;
        writer.write_all(&frame).expect("write corrupted frame");
        writer.flush().expect("flush");
        assert_eq!(
            read_with_deadline(&mut reader),
            Err(FrameReadError::CrcMismatch),
            "payload corruption at byte {byte} bit {bit} must be a typed CRC mismatch"
        );
    }
}

#[test]
fn oversized_length_claim_is_rejected_without_allocation() {
    for claimed in [MAX_FRAME as u32 + 1, u32::MAX / 2, u32::MAX] {
        let (mut writer, mut reader) = socket_pair();
        let mut header = Vec::with_capacity(FRAME_HEADER);
        header.extend_from_slice(&claimed.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        writer.write_all(&header).expect("write lying header");
        writer.flush().expect("flush");
        assert_eq!(
            read_with_deadline(&mut reader),
            Err(FrameReadError::Oversized(claimed)),
            "a {claimed}-byte claim must be refused before allocating"
        );
    }
}

#[test]
fn truncated_stream_and_slow_writer_are_typed() {
    // Disconnect mid-frame: Truncated.
    let (mut writer, mut reader) = socket_pair();
    let frame = encode_frame(&Request::Ping.encode());
    writer.write_all(&frame[..frame.len() - 1]).expect("write all but one byte");
    writer.flush().expect("flush");
    drop(writer);
    assert_eq!(read_with_deadline(&mut reader), Err(FrameReadError::Truncated));

    // A writer that stalls mid-frame: Deadline (slow-loris defense).
    let (mut writer, mut reader) = socket_pair();
    writer.write_all(&frame[..3]).expect("write a frame fragment");
    writer.flush().expect("flush");
    assert_eq!(
        read_frame(&mut reader, Duration::from_millis(10), Duration::from_millis(80), &never_stop),
        Err(FrameReadError::Deadline),
        "an incomplete frame must hit the whole-frame deadline"
    );
    drop(writer);

    // A clean close at a frame boundary: Closed (normal end of session).
    let (writer, mut reader) = socket_pair();
    drop(writer);
    assert_eq!(read_with_deadline(&mut reader), Err(FrameReadError::Closed));
}

#[test]
fn valid_frames_roundtrip_through_a_real_socket() {
    let mut rng = StdRng::seed_from_u64(99);
    let (mut writer, mut reader) = socket_pair();
    for i in 0..64 {
        let text: String = (0..rng.random_range(0usize..200))
            .map(|_| char::from(rng.random_range(b' '..=b'~')))
            .collect();
        let req = if i % 7 == 0 { Request::Ping } else { Request::Statement(text) };
        writer.write_all(&encode_frame(&req.encode())).expect("write frame");
        writer.flush().expect("flush");
        let payload = read_with_deadline(&mut reader).expect("frame arrives intact");
        assert_eq!(Request::decode(&payload), Ok(req), "roundtrip {i} is exact");
    }
}
