//! The paper's query suite, served: every numbered paper query (and the
//! SQL/XML setup that feeds it) runs through a loopback `xqdb-server` and
//! must return byte-identical results to direct in-process execution via
//! the same renderer. This is the wire-level counterpart of
//! `paper_queries.rs`: the protocol, admission and locking layers must be
//! invisible in the results.

// Test target: unwrap/expect are the assertion idiom here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

#[path = "../../../tests/common/mod.rs"]
mod common;

use xqdb_core::sqlxml::SqlSession;
use xqdb_server::chaos::Client;
use xqdb_server::protocol::Response;
use xqdb_server::{Server, ServerConfig};
use xqdb_xdm::Limits;

fn expect_ok(resp: Response, what: &str) -> String {
    match resp {
        Response::Ok { body } => body,
        other => panic!("{what}: expected Ok, got {other:?}"),
    }
}

#[test]
fn paper_suite_over_loopback_matches_direct_execution() {
    for indexed in [false, true] {
        // The server starts empty: the paper schema is created *over the
        // wire*, exercising the write path end to end.
        let handle = Server::start("127.0.0.1:0", ServerConfig::default(), SqlSession::new())
            .expect("server binds loopback");
        let addr = handle.local_addr().to_string();
        let mut client = Client::connect(&addr).expect("connect");
        assert_eq!(
            client.ping().expect("ping"),
            Response::Ok { body: "pong".into() },
            "liveness probe answers without admission"
        );
        let mut direct = SqlSession::new();
        for stmt in common::paper_setup_stmts(indexed) {
            let over_wire = expect_ok(client.statement(&stmt).expect("setup"), &stmt);
            let in_process =
                xqdb_server::run_statement(&mut direct, &stmt, &Limits::unlimited())
                    .expect("direct setup");
            assert_eq!(over_wire, in_process, "setup statement renders identically: {stmt}");
        }
        for (label, query) in common::PAPER_QUERIES {
            let stmt = format!("xquery {query}");
            let over_wire = expect_ok(
                client.statement(&stmt).expect("query gets a response"),
                label,
            );
            let in_process =
                xqdb_server::run_statement(&mut direct, &stmt, &Limits::unlimited())
                    .expect("direct query");
            assert_eq!(
                over_wire, in_process,
                "{label} (indexed={indexed}) must be byte-identical over the wire"
            );
            assert!(
                over_wire.ends_with("item(s)\n"),
                "{label}: the wire body carries the rendered summary"
            );
        }
        // EXPLAIN forms travel too (reports, not rows).
        let explain = "explain xquery db2-fn:xmlcolumn('ORDERS.ORDDOC')//lineitem[@price > 100]";
        let over_wire = expect_ok(client.statement(explain).expect("explain"), "explain");
        let in_process = xqdb_server::run_statement(&mut direct, explain, &Limits::unlimited())
            .expect("direct explain");
        assert_eq!(over_wire, in_process, "EXPLAIN output is byte-identical over the wire");

        drop(client);
        let report = handle.shutdown();
        assert_eq!(report.connection_panics, 0);
        assert!(!report.accept_panicked);
    }
}

#[test]
fn engine_errors_travel_as_typed_error_responses() {
    let handle = Server::start("127.0.0.1:0", ServerConfig::default(), SqlSession::new())
        .expect("server binds loopback");
    let mut client = Client::connect(&handle.local_addr().to_string()).expect("connect");
    // A parse error in XQuery surfaces with its W3C code, not a closed
    // connection.
    match client.statement("xquery for $x in (((").expect("typed response") {
        Response::Error { code, .. } => {
            assert_eq!(code, "err:XPST0003", "parse errors keep their typed code on the wire")
        }
        other => panic!("expected a typed error, got {other:?}"),
    }
    // The connection survives the error: the next statement still works.
    let resp = client.statement("VALUES (1)").expect("session continues");
    assert!(matches!(resp, Response::Ok { .. }), "connection survives an engine error");
    drop(client);
    assert_eq!(handle.shutdown().connection_panics, 0);
}
