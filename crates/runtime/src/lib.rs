//! `xqdb-runtime`: a std-only scoped worker pool for parallel query
//! execution.
//!
//! The engine shards work (surviving documents of a collection scan, rows of
//! a SQL WHERE phase, documents of an index back-fill) into chunks and runs
//! each chunk as one task on this pool. Design constraints, in order:
//!
//! 1. **Determinism** — results come back in task-index order, so callers
//!    can concatenate them and obtain output byte-identical to serial
//!    execution. Fallible runs report the error of the *lowest* task index,
//!    which is the error serial execution would have hit first.
//! 2. **Offline** — no dependencies beyond `std`; threads come from
//!    [`std::thread::scope`], so borrowed data needs no `'static` dance.
//! 3. **Exact legacy path** — a pool of one thread (or a single task) runs
//!    inline on the caller's thread: no thread is spawned, no ordering
//!    changes, nothing to reason about.
//!
//! Work distribution is per-worker queues plus stealing: task indexes are
//! dealt round-robin into one `Mutex<VecDeque>` per worker; a worker drains
//! its own queue from the front and, when empty, steals from the *back* of
//! its siblings' queues. With chunked tasks (a few per worker, see
//! [`chunk_ranges`]) this keeps workers busy even when chunk costs are
//! skewed, without a global queue bottleneck.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

/// What the pool observed about one finished task, reported to the
/// `observe` callback of [`WorkerPool::try_run_observed`]. The pool times
/// tasks itself so observability costs nothing when not requested.
#[derive(Debug, Clone, Copy)]
pub struct TaskObservation {
    /// Worker that ran the task (0-based; 0 on the inline serial path).
    pub worker: usize,
    /// Task index.
    pub task: usize,
    /// When the task started.
    pub started: Instant,
    /// Task wall-clock duration in nanoseconds.
    pub nanos: u64,
}

/// How many chunks each worker gets on average when a caller splits work
/// with [`WorkerPool::default_chunks`]. More than one, so stealing can
/// rebalance skew; small, so per-chunk overhead stays negligible.
pub const CHUNKS_PER_WORKER: usize = 4;

/// Configuration for parallel execution, carried by sessions and catalogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Worker threads for parallelizable phases. `0` and `1` both mean the
    /// serial legacy path.
    pub threads: usize,
}

impl RuntimeConfig {
    /// Serial configuration (the default).
    pub fn serial() -> Self {
        RuntimeConfig { threads: 1 }
    }

    /// Configuration with the given degree.
    pub fn with_threads(threads: usize) -> Self {
        RuntimeConfig { threads }
    }

    /// The effective parallelism degree (never 0).
    pub fn effective_threads(&self) -> usize {
        self.threads.max(1)
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig::serial()
    }
}

/// Parallelism degree requested by the test environment
/// (`XQDB_TEST_THREADS=N`), used by test suites to re-run under a pool.
pub fn test_threads_from_env() -> Option<usize> {
    std::env::var("XQDB_TEST_THREADS").ok()?.trim().parse().ok()
}

/// Split `len` items into at most `chunks` contiguous ranges of
/// near-equal size. Empty ranges are never produced; fewer ranges than
/// requested come back when `len < chunks`.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A detached, named service thread — the long-lived complement to the
/// scoped [`WorkerPool`]. The pool is for bounded fork/join phases inside a
/// query; a service thread is for components that outlive any one call
/// (the server's accept loop, one handler per client connection). Keeping
/// this constructor here keeps *all* thread creation in the runtime crate
/// (enforced by `scripts/lint.sh`).
#[derive(Debug)]
pub struct ServiceThread<T> {
    handle: std::thread::JoinHandle<T>,
}

impl<T> ServiceThread<T> {
    /// Wait for the service to finish and return its result, or `None` if
    /// the service thread panicked. Callers that must prove "never panics"
    /// (the server chaos matrix) assert `Some`.
    pub fn join(self) -> Option<T> {
        self.handle.join().ok()
    }

    /// Has the service finished (its closure returned or panicked)?
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }
}

/// Spawn a named detached service thread. Fails (rather than panicking)
/// when the OS refuses a thread — under a connection burst the server turns
/// that into a shed response instead of dying.
pub fn spawn_service<T, F>(name: &str, f: F) -> std::io::Result<ServiceThread<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let handle = std::thread::Builder::new().name(name.to_string()).spawn(f)?;
    Ok(ServiceThread { handle })
}

/// A scoped worker pool. Holds no threads while idle: each [`WorkerPool::run`]
/// call spawns scoped workers, joins them, and returns — queries are
/// long-lived relative to thread start-up, and a threadless idle state keeps
/// the engine's serial paths entirely free of synchronization.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Pool with the given number of workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool { threads: threads.max(1) }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The chunk count this pool wants for `len` items: enough for stealing
    /// to balance skew, never more than the items themselves.
    pub fn default_chunks(&self, len: usize) -> usize {
        (self.threads * CHUNKS_PER_WORKER).clamp(1, len.max(1))
    }

    /// Run `tasks` closures (`f(0) .. f(tasks-1)`) and return their results
    /// in task-index order. With one worker or one task this runs inline on
    /// the calling thread.
    pub fn run<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        // Infallible tasks: the error type is uninhabited in spirit; reuse
        // the fallible machinery with an impossible error.
        match self.try_run(tasks, |i| Ok::<R, Unreachable>(f(i))) {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// Run fallible tasks, returning results in task-index order, or the
    /// error of the lowest-indexed failing task.
    ///
    /// Every task runs to completion even when a sibling fails: serial
    /// execution surfaces the *first* error in task order, and the only way
    /// to know the first error deterministically is to let earlier tasks
    /// finish. Callers whose errors should stop the world quickly (budget
    /// exhaustion, cancellation) already share that state across tasks, so
    /// siblings fail fast on their own.
    pub fn try_run<R, E, F>(&self, tasks: usize, f: F) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
    {
        self.try_run_observed(tasks, f, |_| {})
    }

    /// [`WorkerPool::try_run`] that additionally reports a
    /// [`TaskObservation`] for every finished task — worker id, start time
    /// and duration — to `observe`, which tracing builds spans from. The
    /// callback fires on the worker thread right after its task completes
    /// (on the caller's thread on the inline serial path) and must be cheap.
    pub fn try_run_observed<R, E, F, O>(
        &self,
        tasks: usize,
        f: F,
        observe: O,
    ) -> Result<Vec<R>, E>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Sync,
        O: Fn(TaskObservation) + Sync,
    {
        if tasks == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(tasks);
        if workers == 1 {
            // Exact legacy path: no threads, strict task order.
            let mut out = Vec::with_capacity(tasks);
            for i in 0..tasks {
                let started = Instant::now();
                let r = f(i);
                observe(TaskObservation {
                    worker: 0,
                    task: i,
                    started,
                    nanos: elapsed_ns(started),
                });
                out.push(r?);
            }
            return Ok(out);
        }

        // Deal task indexes round-robin into per-worker queues.
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for i in 0..tasks {
            if let Ok(mut q) = queues[i % workers].lock() {
                q.push_back(i);
            }
        }
        let done = Mutex::new(Vec::<(usize, Result<R, E>)>::with_capacity(tasks));
        std::thread::scope(|scope| {
            for w in 0..workers {
                let queues = &queues;
                let done = &done;
                let f = &f;
                let observe = &observe;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                    while let Some(i) = next_task(queues, w) {
                        let started = Instant::now();
                        let r = f(i);
                        observe(TaskObservation {
                            worker: w,
                            task: i,
                            started,
                            nanos: elapsed_ns(started),
                        });
                        local.push((i, r));
                    }
                    if let Ok(mut d) = done.lock() {
                        d.extend(local);
                    }
                });
            }
        });
        let mut finished = match done.into_inner() {
            Ok(v) => v,
            // A worker panicked while holding the lock; scope has already
            // propagated the panic, so this arm is unreachable in practice.
            Err(poisoned) => poisoned.into_inner(),
        };
        finished.sort_by_key(|(i, _)| *i);
        let mut out = Vec::with_capacity(tasks);
        for (_, r) in finished {
            out.push(r?); // sorted: the first Err is the lowest task index
        }
        Ok(out)
    }
}

fn elapsed_ns(from: Instant) -> u64 {
    u64::try_from(from.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Pop the next task for worker `w`: own queue front first, then steal from
/// the back of sibling queues.
fn next_task(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Ok(mut q) = queues[w].lock() {
        if let Some(i) = q.pop_front() {
            return Some(i);
        }
    }
    for off in 1..queues.len() {
        let victim = (w + off) % queues.len();
        if let Ok(mut q) = queues[victim].lock() {
            if let Some(i) = q.pop_back() {
                return Some(i);
            }
        }
    }
    None
}

/// Uninhabited error for infallible runs.
enum Unreachable {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let got = pool.run(37, |i| i * i);
            let want: Vec<usize> = (0..37).map(|i| i * i).collect();
            assert_eq!(got, want, "order broke at {threads} threads");
        }
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let hits = AtomicUsize::new(0);
        let pool = WorkerPool::new(4);
        let out = pool.run(100, |_| hits.fetch_add(1, Ordering::Relaxed));
        assert_eq!(out.len(), 100);
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn lowest_index_error_wins() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let err = pool
                .try_run(20, |i| if i % 7 == 3 { Err(i) } else { Ok(i) })
                .expect_err("tasks 3, 10 and 17 fail");
            assert_eq!(err, 3, "must report the first error serial would hit");
        }
    }

    #[test]
    fn observed_run_reports_every_task_once() {
        for threads in [1, 4] {
            let pool = WorkerPool::new(threads);
            let seen = Mutex::new(Vec::new());
            let got = pool
                .try_run_observed(
                    23,
                    Ok::<usize, ()>,
                    |obs| {
                        assert!(obs.worker < threads);
                        if let Ok(mut s) = seen.lock() {
                            s.push(obs.task);
                        }
                    },
                )
                .unwrap_or_default();
            assert_eq!(got, (0..23).collect::<Vec<_>>());
            let mut tasks = seen.into_inner().unwrap_or_default();
            tasks.sort_unstable();
            assert_eq!(tasks, (0..23).collect::<Vec<_>>(), "{threads} threads");
        }
    }

    #[test]
    fn skewed_task_costs_are_stolen() {
        // One pathological task plus many cheap ones: with stealing every
        // task still runs and order still holds.
        let pool = WorkerPool::new(4);
        let got = pool.run(16, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_and_zero_threads_are_fine() {
        assert!(WorkerPool::new(0).run(0, |i| i).is_empty());
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(RuntimeConfig::with_threads(0).effective_threads(), 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 8, 2000] {
                let ranges = chunk_ranges(len, chunks);
                let covered: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(covered, len);
                assert!(ranges.iter().all(|r| !r.is_empty()));
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect, "ranges must be contiguous");
                    expect = r.end;
                }
                if len > 0 {
                    let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                    let (lo, hi) = (sizes.iter().min(), sizes.iter().max());
                    assert!(hi.unwrap_or(&0) - lo.unwrap_or(&0) <= 1, "near-equal sizes");
                }
            }
        }
    }

    #[test]
    fn shared_budget_is_enforced_globally_across_workers() {
        use xqdb_xdm::{Budget, ErrorCode, Limits};
        // 8 workers tick one shared budget; the cap must trip globally at
        // 1000 steps no matter how ticks interleave.
        let budget =
            std::sync::Arc::new(Budget::new(Limits::unlimited().with_max_steps(1000)));
        let pool = WorkerPool::new(8);
        let results = pool.run(8, |_| {
            let mut ticked = 0u64;
            loop {
                match budget.tick() {
                    Ok(()) => ticked += 1,
                    Err(e) => return (ticked, e.code),
                }
                if ticked > 10_000 {
                    return (ticked, ErrorCode::Internal);
                }
            }
        });
        let total: u64 = results.iter().map(|(t, _)| t).sum();
        assert!(results.iter().all(|(_, code)| *code == ErrorCode::ResourceExhausted));
        assert!(
            total <= 1000,
            "workers together must not tick past the shared cap (got {total})"
        );
    }

    #[test]
    fn service_thread_joins_with_result_and_reports_panics_as_none() {
        let ok = spawn_service("svc-test", || 41 + 1).unwrap();
        assert_eq!(ok.join(), Some(42));
        let boom = spawn_service("svc-panic", || -> u32 { panic!("boom") }).unwrap();
        assert_eq!(boom.join(), None, "a panicking service joins as None");
    }

    #[test]
    fn cancellation_token_stops_all_workers() {
        use xqdb_xdm::{Budget, ErrorCode, Limits};
        let budget = std::sync::Arc::new(Budget::new(Limits::unlimited()));
        budget.cancel();
        let pool = WorkerPool::new(4);
        let errs = pool.run(4, |_| loop {
            // Cancellation is observed at a checkpoint within CHECK_INTERVAL
            // ticks, on every worker.
            if let Err(e) = budget.tick() {
                return e.code;
            }
        });
        assert!(errs.iter().all(|c| *c == ErrorCode::Cancelled));
    }
}
